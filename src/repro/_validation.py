"""Internal validation helpers shared across the package.

These helpers centralize the small amount of defensive checking performed at
public API boundaries so that error messages stay consistent.  They are
internal: the public surface is the exception types in
:mod:`repro.exceptions`.
"""

from __future__ import annotations

import math
from typing import Iterable

from .exceptions import ThresholdError, ValidationError

#: Tolerance used when checking that per-position probabilities sum to one.
PROBABILITY_SUM_TOLERANCE = 1e-6

#: Smallest probability treated as non-zero.  Probabilities below this are
#: clamped to zero during normalization to avoid log-space overflow noise.
MIN_PROBABILITY = 1e-12


def check_probability(value: float, *, name: str = "probability") -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``.

    Parameters
    ----------
    value:
        The candidate probability.
    name:
        Name used in the error message.

    Returns
    -------
    float
        The validated probability as a ``float``.

    Raises
    ------
    ValidationError
        If the value is not a finite number in ``[0, 1]``.
    """
    try:
        probability = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number, got {value!r}") from exc
    if math.isnan(probability) or math.isinf(probability):
        raise ValidationError(f"{name} must be finite, got {probability!r}")
    if probability < 0.0 or probability > 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {probability!r}")
    return probability


def check_threshold(tau: float, *, tau_min: float | None = None) -> float:
    """Validate a query threshold ``tau``.

    Parameters
    ----------
    tau:
        Query-time probability threshold.
    tau_min:
        Construction-time lower bound, if the calling index has one.

    Returns
    -------
    float
        The validated threshold.

    Raises
    ------
    ThresholdError
        If ``tau`` is outside ``(0, 1]`` or below ``tau_min``.
    """
    try:
        threshold = float(tau)
    except (TypeError, ValueError) as exc:
        raise ThresholdError(f"threshold must be a number, got {tau!r}") from exc
    if math.isnan(threshold) or threshold <= 0.0 or threshold > 1.0:
        raise ThresholdError(f"threshold must lie in (0, 1], got {threshold!r}")
    if tau_min is not None and threshold < tau_min - PROBABILITY_SUM_TOLERANCE:
        raise ThresholdError(
            f"query threshold {threshold!r} is below the construction-time "
            f"threshold tau_min={tau_min!r}; rebuild the index with a smaller "
            "tau_min to support this query"
        )
    return threshold


def check_positive_int(value: int, *, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an int, got {value!r}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")
    return value


def check_nonempty_pattern(pattern: str) -> str:
    """Validate that a query pattern is a non-empty deterministic string."""
    if not isinstance(pattern, str):
        raise ValidationError(f"pattern must be a str, got {type(pattern).__name__}")
    if not pattern:
        raise ValidationError("pattern must be non-empty")
    return pattern


def check_probabilities_sum_to_one(probabilities: Iterable[float], *, position: int) -> None:
    """Check that a per-position distribution sums to (approximately) one."""
    total = float(sum(probabilities))
    if abs(total - 1.0) > PROBABILITY_SUM_TOLERANCE:
        raise ValidationError(
            f"probabilities at position {position} must sum to 1.0, got {total:.9f}"
        )


def log_probability(probability: float) -> float:
    """Return ``log(probability)`` with zero mapped to ``-inf``."""
    if probability <= 0.0:
        return float("-inf")
    return math.log(probability)
