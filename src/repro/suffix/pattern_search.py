"""Suffix-range lookup for deterministic patterns.

Given a suffix array of a text ``t`` and a pattern ``p``, the *suffix range*
``[sp, ep]`` is the maximal interval of lexicographic ranks whose suffixes
have ``p`` as a prefix (paper Section 3.4).  The paper obtains it through the
suffix tree in ``O(m)``; this module provides the equivalent binary-search
lookup over the suffix array in ``O(m log n)``, which is what the indexes use
by default (the suffix tree remains available for structural queries such as
locus partitions).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._validation import check_nonempty_pattern
from ..exceptions import ValidationError


def _as_index_array(suffix_array: np.ndarray) -> np.ndarray:
    """Pass prebuilt integer suffix arrays through without re-casting.

    Every index caches its suffix array as a contiguous integer numpy
    array at construction (see :class:`~repro.suffix.suffix_array.SuffixArray`)
    — int64 when built, possibly uint8/16/32 when restored from a
    dtype-minimized payload — so the common case is a no-op kind check
    instead of a per-query copy; lists and float inputs still convert.
    The binary searches below only ever read single elements through
    ``int(...)``, which is dtype-agnostic.
    """
    if isinstance(suffix_array, np.ndarray) and suffix_array.dtype.kind in ("i", "u"):
        return suffix_array
    return np.asarray(suffix_array, dtype=np.int64)


def suffix_range(text: str, suffix_array: np.ndarray, pattern: str) -> Optional[Tuple[int, int]]:
    """Return the inclusive suffix range of ``pattern`` or ``None`` if absent.

    Parameters
    ----------
    text:
        The indexed text.
    suffix_array:
        Suffix array of ``text``.
    pattern:
        Non-empty deterministic pattern.

    Returns
    -------
    tuple of (int, int) or None
        Inclusive interval ``(sp, ep)`` of lexicographic ranks, or ``None``
        when ``pattern`` does not occur in ``text``.

    Examples
    --------
    >>> from repro.suffix.suffix_array import build_suffix_array
    >>> text = "banana"
    >>> suffix_range(text, build_suffix_array(text), "ana")
    (1, 2)
    >>> suffix_range(text, build_suffix_array(text), "x") is None
    True
    """
    check_nonempty_pattern(pattern)
    if not text:
        raise ValidationError("cannot search in an empty text")
    suffix_array = _as_index_array(suffix_array)
    n = len(suffix_array)
    m = len(pattern)

    # Lower bound: first suffix >= pattern.
    low, high = 0, n
    while low < high:
        middle = (low + high) // 2
        start = int(suffix_array[middle])
        if text[start : start + m] < pattern:
            low = middle + 1
        else:
            high = middle
    start_rank = low

    # Upper bound: first suffix whose length-m prefix is > pattern.
    low, high = start_rank, n
    while low < high:
        middle = (low + high) // 2
        start = int(suffix_array[middle])
        if text[start : start + m] <= pattern:
            low = middle + 1
        else:
            high = middle
    end_rank = low - 1

    if start_rank > end_rank:
        return None
    first = int(suffix_array[start_rank])
    if text[first : first + m] != pattern:
        return None
    return start_rank, end_rank


def count_occurrences(text: str, suffix_array: np.ndarray, pattern: str) -> int:
    """Number of (deterministic) occurrences of ``pattern`` in ``text``."""
    interval = suffix_range(text, suffix_array, pattern)
    if interval is None:
        return 0
    return interval[1] - interval[0] + 1


def occurrence_positions(text: str, suffix_array: np.ndarray, pattern: str) -> np.ndarray:
    """Sorted text positions of all deterministic occurrences of ``pattern``."""
    interval = suffix_range(text, suffix_array, pattern)
    if interval is None:
        return np.empty(0, dtype=np.int64)
    sp, ep = interval
    positions = _as_index_array(suffix_array)[sp : ep + 1].copy()
    positions.sort()
    return positions
