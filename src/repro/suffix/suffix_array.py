"""Suffix array construction (deterministic-string indexing substrate).

The paper's indexes are all layered on top of a suffix array / suffix tree of
the deterministic text obtained from the (transformed) uncertain string.
This module provides an ``O(n log n)`` prefix-doubling construction
vectorized with numpy, the inverse (rank) array, and convenience accessors.

The implementation works directly on Python strings; internally characters
are mapped to their Unicode code points, so arbitrary sentinel characters
(``$``, ``\\x00`` ...) are supported as long as they are single characters.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ValidationError


def build_suffix_array(text: str) -> np.ndarray:
    """Return the suffix array of ``text``.

    The suffix array ``A`` lists the starting positions of the suffixes of
    ``text`` in lexicographic order: ``text[A[0]:] < text[A[1]:] < ...``.

    Parameters
    ----------
    text:
        Non-empty string to index.

    Returns
    -------
    numpy.ndarray
        Array of ``int64`` suffix start positions, length ``len(text)``.

    Examples
    --------
    >>> build_suffix_array("banana").tolist()
    [5, 3, 1, 0, 4, 2]
    """
    if not isinstance(text, str):
        raise ValidationError(f"text must be a str, got {type(text).__name__}")
    n = len(text)
    if n == 0:
        raise ValidationError("cannot build a suffix array over an empty text")
    if n == 1:
        return np.zeros(1, dtype=np.int64)

    # Initial ranks: character code points (dense ranking keeps values small).
    codes = np.frombuffer(text.encode("utf-32-le"), dtype=np.uint32).astype(np.int64)
    rank = np.unique(codes, return_inverse=True)[1].astype(np.int64)
    suffix_array = np.argsort(rank, kind="stable").astype(np.int64)

    k = 1
    temporary = np.empty(n, dtype=np.int64)
    while True:
        # Composite key for suffix i: (rank[i], rank[i + k]) with -1 padding.
        second = np.full(n, -1, dtype=np.int64)
        second[: n - k] = rank[k:]
        # Sort by (rank, second) using a stable two-pass argsort.
        order = np.argsort(second, kind="stable")
        order = order[np.argsort(rank[order], kind="stable")]
        suffix_array = order.astype(np.int64)

        # Re-rank: adjacent suffixes get the same rank iff both key parts match.
        first_keys = rank[suffix_array]
        second_keys = second[suffix_array]
        new_rank_boundaries = np.empty(n, dtype=np.int64)
        new_rank_boundaries[0] = 0
        changed = (first_keys[1:] != first_keys[:-1]) | (second_keys[1:] != second_keys[:-1])
        new_rank_boundaries[1:] = np.cumsum(changed)
        temporary[suffix_array] = new_rank_boundaries
        rank, temporary = temporary, rank

        if rank[suffix_array[-1]] == n - 1:
            break
        k *= 2
        if k >= n:
            break
    return suffix_array


def inverse_suffix_array(suffix_array: np.ndarray) -> np.ndarray:
    """Return the inverse permutation (``rank``) of a suffix array.

    ``rank[i]`` is the lexicographic rank of the suffix starting at ``i``.

    Integer dtypes pass through: a dtype-minimized (compacted) suffix
    array yields an equally narrow rank array — ranks and positions span
    the same ``[0, n)`` value range.
    """
    suffix_array = np.asarray(suffix_array)
    if suffix_array.dtype.kind not in ("i", "u"):
        suffix_array = np.asarray(suffix_array, dtype=np.int64)
    rank = np.empty_like(suffix_array)
    rank[suffix_array] = np.arange(len(suffix_array), dtype=np.int64)
    return rank


def naive_suffix_array(text: str) -> List[int]:
    """Quadratic reference construction used by the test suite."""
    if not text:
        raise ValidationError("cannot build a suffix array over an empty text")
    return sorted(range(len(text)), key=lambda i: text[i:])


class SuffixArray:
    """A suffix array bundled with its text and inverse array.

    Parameters
    ----------
    text:
        The text to index.
    array:
        Optional pre-computed suffix array (used when loading from disk or
        testing); validated for length only.

    Examples
    --------
    >>> sa = SuffixArray("banana")
    >>> sa.array.tolist()
    [5, 3, 1, 0, 4, 2]
    >>> sa.suffix(1)
    'anana'
    """

    def __init__(self, text: str, *, array: Optional[Sequence[int]] = None):
        if not text:
            raise ValidationError("cannot build a suffix array over an empty text")
        self._text = text
        if array is None:
            self._array = build_suffix_array(text)
        else:
            # Any integer dtype is kept as-is, zero-copy: compacted
            # payloads restore uint8/16/32 suffix arrays, and the query
            # paths widen lazily at the few arithmetic sites that need
            # int64.  Non-integer inputs (lists, floats) still cast once.
            candidate = np.asarray(array)
            if candidate.dtype.kind not in ("i", "u"):
                candidate = np.ascontiguousarray(candidate, dtype=np.int64)
            if len(candidate) != len(text):
                raise ValidationError(
                    f"suffix array length {len(candidate)} does not match text length {len(text)}"
                )
            self._array = candidate
        self._rank = inverse_suffix_array(self._array)

    # -- accessors ----------------------------------------------------------------
    @property
    def text(self) -> str:
        """The indexed text."""
        return self._text

    @property
    def array(self) -> np.ndarray:
        """The suffix array ``A`` (lexicographic rank -> text position)."""
        return self._array

    @property
    def rank(self) -> np.ndarray:
        """The inverse array (text position -> lexicographic rank)."""
        return self._rank

    def __len__(self) -> int:
        return len(self._array)

    def __getitem__(self, lexicographic_rank: int) -> int:
        return int(self._array[lexicographic_rank])

    def suffix(self, lexicographic_rank: int) -> str:
        """Return the suffix with the given lexicographic rank."""
        return self._text[int(self._array[lexicographic_rank]) :]

    def nbytes(self) -> int:
        """Approximate memory footprint of the numpy payload in bytes."""
        return int(self._array.nbytes + self._rank.nbytes)
