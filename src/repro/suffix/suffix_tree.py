"""Compact suffix tree derived from a suffix array and its LCP array.

The paper's indexes use the suffix tree for three things:

1. finding the *locus* node / suffix range of a pattern (Section 3.4),
2. enumerating the depth-``i`` locus partitions used for duplicate
   elimination (Sections 5.2 and 6), and
3. the marked-node / link framework of the approximate index (Section 7).

Rather than building the tree online (Ukkonen/McCreight), it is derived from
the suffix array plus LCP array with the classical stack-based lcp-interval
algorithm, which is linear time and considerably simpler.  Nodes are stored
in flat numpy arrays (structure-of-arrays) so trees over hundreds of
thousands of positions remain cheap in Python.

Every node exposes:

* ``depth``   — string depth (length of ``path(node)``),
* ``left``/``right`` — the inclusive range of leaf ranks (suffix-array
  positions) below it,
* ``parent``  — parent node id (``-1`` for the root).

Leaves are the nodes with ids ``0 .. n-1`` (leaf id == lexicographic rank);
internal nodes get ids ``n, n+1, ...`` with the root created first.

The text is indexed as-is, without appending a unique terminator.  When one
suffix is a prefix of another (e.g. ``"a"`` inside ``"banana"``), the shorter
suffix's leaf doubles as the implicit internal node covering the longer
suffixes — its range spans them while its string depth stays the suffix
length.  Every query in this package (locus lookup, depth partitions,
lowest-common-ancestor marking) is well defined under that convention.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from .._validation import check_nonempty_pattern
from ..exceptions import ValidationError
from .lcp import build_lcp_array
from .pattern_search import suffix_range
from .suffix_array import SuffixArray


class SuffixTree:
    """Compact suffix tree over a deterministic text.

    Parameters
    ----------
    suffix_array:
        A :class:`~repro.suffix.suffix_array.SuffixArray` for the text.
    lcp:
        Optional pre-computed LCP array (computed if omitted).

    Examples
    --------
    >>> tree = SuffixTree(SuffixArray("banana"))
    >>> tree.leaf_count
    6
    >>> sp, ep = tree.pattern_range("ana")
    >>> (sp, ep)
    (1, 2)
    >>> tree.node_depth(tree.locus("ana"))
    3
    """

    def __init__(self, suffix_array: SuffixArray, *, lcp: Optional[np.ndarray] = None):
        self._suffix_array = suffix_array
        text = suffix_array.text
        n = len(text)
        if lcp is None:
            lcp = build_lcp_array(text, suffix_array.array)
        else:
            lcp = np.asarray(lcp, dtype=np.int64)
            if len(lcp) != n:
                raise ValidationError(
                    f"LCP array length {len(lcp)} does not match text length {n}"
                )
        self._lcp = lcp

        # Structure-of-arrays node storage.  Leaves occupy ids [0, n); internal
        # nodes are appended afterwards (root is node id n).
        depth: List[int] = [0] * n
        left: List[int] = [0] * n
        right: List[int] = [0] * n
        parent: List[int] = [-1] * n
        sa = suffix_array.array
        for rank in range(n):
            depth[rank] = n - int(sa[rank])
            left[rank] = rank
            right[rank] = rank

        def new_internal(node_depth: int, node_left: int) -> int:
            depth.append(node_depth)
            left.append(node_left)
            right.append(-1)
            parent.append(-1)
            return len(depth) - 1

        root = new_internal(0, 0)
        stack: List[int] = [root]

        for rank in range(n):
            boundary = int(lcp[rank]) if rank > 0 else 0
            last_popped = -1
            while depth[stack[-1]] > boundary:
                popped = stack.pop()
                right[popped] = rank - 1
                parent[popped] = stack[-1]
                last_popped = popped
            if depth[stack[-1]] < boundary and last_popped != -1:
                intermediate = new_internal(boundary, left[last_popped])
                parent[last_popped] = intermediate
                stack.append(intermediate)
            leaf = rank
            stack.append(leaf)

        while len(stack) > 1:
            popped = stack.pop()
            right[popped] = n - 1
            parent[popped] = stack[-1]
        right[root] = n - 1

        self._depth = np.asarray(depth, dtype=np.int64)
        self._left = np.asarray(left, dtype=np.int64)
        self._right = np.asarray(right, dtype=np.int64)
        self._parent = np.asarray(parent, dtype=np.int64)
        self._root = root
        self._n = n

    # -- basic accessors -----------------------------------------------------------
    @property
    def suffix_array(self) -> SuffixArray:
        """The suffix array the tree was built from."""
        return self._suffix_array

    @property
    def text(self) -> str:
        """The indexed text."""
        return self._suffix_array.text

    @property
    def lcp(self) -> np.ndarray:
        """The LCP array used to build the tree."""
        return self._lcp

    @property
    def root(self) -> int:
        """Node id of the root."""
        return self._root

    @property
    def leaf_count(self) -> int:
        """Number of leaves (== length of the text)."""
        return self._n

    @property
    def node_count(self) -> int:
        """Total number of nodes (leaves + internal)."""
        return len(self._depth)

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` is a leaf (ids below ``leaf_count``)."""
        return node < self._n

    def node_depth(self, node: int) -> int:
        """String depth of ``node`` (length of its root-to-node label)."""
        return int(self._depth[node])

    def node_range(self, node: int) -> Tuple[int, int]:
        """Inclusive range of leaf ranks (suffix-array positions) under ``node``."""
        return int(self._left[node]), int(self._right[node])

    def node_parent(self, node: int) -> int:
        """Parent node id (``-1`` for the root)."""
        return int(self._parent[node])

    def subtree_size(self, node: int) -> int:
        """Number of leaves below ``node``."""
        return int(self._right[node] - self._left[node] + 1)

    def path_label(self, node: int) -> str:
        """The string labeling the root-to-``node`` path."""
        start = int(self._suffix_array.array[self._left[node]])
        return self.text[start : start + self.node_depth(node)]

    def leaves(self, node: int) -> Iterator[int]:
        """Iterate over the leaf ranks below ``node``."""
        node_left, node_right = self.node_range(node)
        return iter(range(node_left, node_right + 1))

    def ancestors(self, node: int) -> Iterator[int]:
        """Iterate over the proper ancestors of ``node``, nearest first."""
        current = self.node_parent(node)
        while current != -1:
            yield current
            current = self.node_parent(current)

    def children(self) -> List[List[int]]:
        """Return a children adjacency list indexed by node id.

        Computed on demand (the core query paths never need it); mostly
        useful for debugging and tests.
        """
        adjacency: List[List[int]] = [[] for _ in range(self.node_count)]
        for node in range(self.node_count):
            parent = int(self._parent[node])
            if parent != -1:
                adjacency[parent].append(node)
        return adjacency

    # -- pattern queries -------------------------------------------------------------
    def pattern_range(self, pattern: str) -> Optional[Tuple[int, int]]:
        """Inclusive suffix range of ``pattern`` (``None`` when absent)."""
        return suffix_range(self.text, self._suffix_array.array, pattern)

    def locus(self, pattern: str) -> Optional[int]:
        """Locus node of ``pattern``: the highest node whose label has ``pattern`` as prefix.

        Returns ``None`` when the pattern does not occur.
        """
        check_nonempty_pattern(pattern)
        interval = self.pattern_range(pattern)
        if interval is None:
            return None
        sp, ep = interval
        m = len(pattern)
        # Walk up from the leftmost leaf: the locus is the last node on the
        # leaf-to-root path whose depth is still >= m (its range is then
        # exactly [sp, ep]).
        node = sp
        while True:
            parent = self.node_parent(node)
            if parent == -1 or self.node_depth(parent) < m:
                return node
            node = parent

    def lowest_common_ancestor(self, leaf_a: int, leaf_b: int) -> int:
        """Lowest common ancestor of two leaves (by rank).

        Linear in tree height; adequate for construction-time marking in the
        approximate index where it is called once per consecutive pair.
        """
        if leaf_a == leaf_b:
            return leaf_a
        low, high = min(leaf_a, leaf_b), max(leaf_a, leaf_b)
        node = low
        while True:
            node_left, node_right = self.node_range(node)
            if node_left <= low and high <= node_right:
                return node
            parent = self.node_parent(node)
            if parent == -1:
                return node
            node = parent

    # -- locus partitions (duplicate elimination, Sections 5.2 / 6) ---------------------
    def depth_partitions(self, prefix_length: int) -> List[Tuple[int, int]]:
        """Disjoint suffix ranges of the depth-``prefix_length`` locus nodes.

        Two adjacent leaves belong to the same partition exactly when the LCP
        between them is at least ``prefix_length``, so the partitions are the
        maximal runs of ranks ``j`` with ``lcp[j] >= prefix_length`` between
        neighbours.  This is the set ``L_i`` of the paper restated over the
        LCP array and is what the duplicate-elimination pass iterates over.
        """
        if prefix_length <= 0:
            raise ValidationError(f"prefix_length must be positive, got {prefix_length}")
        boundaries = np.flatnonzero(self._lcp[1:] < prefix_length) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries - 1, [self._n - 1]))
        return [(int(start), int(end)) for start, end in zip(starts, ends)]

    def nbytes(self) -> int:
        """Approximate memory footprint of the numpy payload in bytes."""
        return int(
            self._depth.nbytes
            + self._left.nbytes
            + self._right.nbytes
            + self._parent.nbytes
            + self._lcp.nbytes
        )
