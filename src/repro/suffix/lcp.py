"""Longest-common-prefix (LCP) arrays via Kasai's algorithm.

The LCP array is the bridge between the suffix array and the suffix tree:
``lcp[i]`` is the length of the longest common prefix of the suffixes with
lexicographic ranks ``i-1`` and ``i`` (``lcp[0] = 0`` by convention).  The
compact suffix tree in :mod:`repro.suffix.suffix_tree` is built from the
suffix array plus this array.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import ValidationError
from .suffix_array import SuffixArray, inverse_suffix_array


def build_lcp_array(text: str, suffix_array: np.ndarray) -> np.ndarray:
    """Return the LCP array of ``text`` given its suffix array.

    Kasai's algorithm, ``O(n)`` time.

    Parameters
    ----------
    text:
        The indexed text.
    suffix_array:
        Its suffix array.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of length ``len(text)`` with ``lcp[0] == 0``.

    Examples
    --------
    >>> from repro.suffix.suffix_array import build_suffix_array
    >>> text = "banana"
    >>> build_lcp_array(text, build_suffix_array(text)).tolist()
    [0, 1, 3, 0, 0, 2]
    """
    n = len(text)
    if n == 0:
        raise ValidationError("cannot build an LCP array over an empty text")
    suffix_array = np.asarray(suffix_array, dtype=np.int64)
    if len(suffix_array) != n:
        raise ValidationError(
            f"suffix array length {len(suffix_array)} does not match text length {n}"
        )
    rank = inverse_suffix_array(suffix_array)
    lcp = np.zeros(n, dtype=np.int64)
    matched = 0
    for position in range(n):
        r = rank[position]
        if r == 0:
            matched = 0
            continue
        previous = suffix_array[r - 1]
        while (
            position + matched < n
            and previous + matched < n
            and text[position + matched] == text[previous + matched]
        ):
            matched += 1
        lcp[r] = matched
        if matched > 0:
            matched -= 1
    return lcp


def naive_lcp_array(text: str, suffix_array: List[int]) -> List[int]:
    """Quadratic reference LCP construction used by the test suite."""
    lcp = [0] * len(suffix_array)
    for index in range(1, len(suffix_array)):
        a = text[suffix_array[index - 1] :]
        b = text[suffix_array[index] :]
        matched = 0
        while matched < min(len(a), len(b)) and a[matched] == b[matched]:
            matched += 1
        lcp[index] = matched
    return lcp


class LCPArray:
    """LCP array bundled with the suffix array it was derived from."""

    def __init__(self, suffix_array: SuffixArray):
        self._suffix_array = suffix_array
        self._lcp = build_lcp_array(suffix_array.text, suffix_array.array)

    @property
    def values(self) -> np.ndarray:
        """The raw LCP values."""
        return self._lcp

    @property
    def suffix_array(self) -> SuffixArray:
        """The suffix array this LCP array belongs to."""
        return self._suffix_array

    def __len__(self) -> int:
        return len(self._lcp)

    def __getitem__(self, index: int) -> int:
        return int(self._lcp[index])

    def nbytes(self) -> int:
        """Approximate memory footprint in bytes."""
        return int(self._lcp.nbytes)
