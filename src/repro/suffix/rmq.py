"""Range maximum / minimum query structures.

The efficient indexes of Sections 4.2, 5 and 6 answer threshold queries by
repeatedly extracting the maximum-probability element of a suffix range, so
an ``O(1)``-query RMQ structure is the core building block (paper Lemma 1).

Two interchangeable implementations are provided:

* :class:`SparseTableRMQ` — the classical ``O(n log n)``-space sparse table
  with true ``O(1)`` queries.  This is the default used by every index.
* :class:`BlockRMQ` — a Fischer–Heun-style block decomposition: the array is
  cut into blocks of ``~log n`` elements, a sparse table is kept over block
  maxima only, and in-block queries scan the block.  Queries are
  ``O(log n)`` worst case but the space drops to ``O(n)`` words with small
  constants — the practical trade-off the paper's space accounting (§8.7)
  alludes to.  The ablation benchmark compares the two.

Both classes answer *maximum* queries by default; pass ``mode="min"`` for
minimum queries.  Queries return the **position** of the optimum, matching
how the paper uses RMQ (the value is then validated against the cumulative
probability array).

Both implementations are pure functions of their value array, so they can
be **serialized** — :func:`serialize_rmq` extracts the preprocessed arrays
(the sparse table; the block-optimum positions plus the summary table) and
:func:`deserialize_rmq` restores the structure in O(1) work over the array
views, without re-running the O(n log n) preprocessing.  The payload layout
is versioned (:data:`RMQ_PAYLOAD_VERSION`) so the persistence layer can
evolve it without misreading old archives.  The restore path accepts
read-only (memory-mapped) arrays: queries never write.
"""

from __future__ import annotations

# repro-check: hot-path — query paths must stay vectorized; per-element
# Python work is only allowed in construction and the *_scalar references.

import math
from typing import Dict, Literal, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ValidationError
from ..payload import IndexPayload

Mode = Literal["max", "min"]

#: Version of the array payload produced by :func:`serialize_rmq`; bumped
#: whenever the set or meaning of the payload arrays changes.
RMQ_PAYLOAD_VERSION = 1

#: Payload schemas (:mod:`repro.payload`).  ``rmq/sparse`` and
#: ``rmq/block`` are the space-efficient Fischer–Heun-style payloads of
#: :meth:`SparseTableRMQ.to_payload` / :meth:`BlockRMQ.to_payload` — block
#: optimum positions only, O(n / block_size) words; the ``*-table``
#: schemas describe the legacy version-2 archive layout (full serialized
#: tables) so :func:`rmq_from_payload` can restore either.
RMQ_SCHEMA_SPARSE = "rmq/sparse"
RMQ_SCHEMA_BLOCK = "rmq/block"
RMQ_SCHEMA_SPARSE_TABLE = "rmq/sparse-table"
RMQ_SCHEMA_BLOCK_TABLE = "rmq/block-table"


def _prepare_values(values: Sequence[float], mode: Mode) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValidationError(f"RMQ input must be one-dimensional, got shape {array.shape}")
    if len(array) == 0:
        raise ValidationError("cannot build an RMQ structure over an empty array")
    if mode not in ("max", "min"):
        raise ValidationError(f"mode must be 'max' or 'min', got {mode!r}")
    return array


def _check_range(length: int, left: int, right: int) -> Tuple[int, int]:
    if left < 0 or right >= length or left > right:
        raise ValidationError(
            f"invalid RMQ range [{left}, {right}] for array of length {length}"
        )
    return left, right


def _check_batch(
    length: int, lefts: Sequence[int], rights: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    lefts = np.asarray(lefts, dtype=np.int64)
    rights = np.asarray(rights, dtype=np.int64)
    if lefts.shape != rights.shape or lefts.ndim != 1:
        raise ValidationError(
            f"query_batch expects two equal-length 1-d arrays, got shapes "
            f"{lefts.shape} and {rights.shape}"
        )
    if lefts.size and (
        int(lefts.min()) < 0 or int(rights.max()) >= length or bool((lefts > rights).any())
    ):
        bad = int(np.flatnonzero((lefts < 0) | (rights >= length) | (lefts > rights))[0])
        raise ValidationError(
            f"invalid RMQ range [{int(lefts[bad])}, {int(rights[bad])}] "
            f"for array of length {length}"
        )
    return lefts, rights


def _as_position_array(positions) -> np.ndarray:
    """Accept any integer position array as-is, zero-copy.

    Dtype-minimized payloads restore uint8/16/32 block positions; the
    query paths only gather through them (``values[positions]``) or read
    single elements with ``int(...)``, both dtype-agnostic, so no widening
    copy is needed.  Lists and float inputs still convert to int64.
    """
    array = np.asarray(positions)
    if array.dtype.kind in ("i", "u"):
        return array
    return np.asarray(array, dtype=np.int64)


def _floor_log2(spans: np.ndarray) -> np.ndarray:
    """Vectorized ``span.bit_length() - 1`` for positive int64 spans.

    ``np.frexp`` is exact for integers below 2**53: it returns the exponent
    ``e`` with ``2**(e-1) <= span < 2**e``, so ``e - 1`` is the floor log.
    """
    return (np.frexp(spans.astype(np.float64))[1] - 1).astype(np.int64)


def default_block_size(length: int) -> int:
    """The ``~log2 n`` block size the block decompositions default to."""
    return max(1, math.ceil(math.log2(length + 1)))


def _block_optimum_positions(
    values: np.ndarray, block_size: int, mode: Mode
) -> np.ndarray:
    """Leftmost-optimum position of every ``block_size``-wide block.

    Vectorized equivalent of ``start + argmax(values[start:end])`` per
    block: the array is padded to a whole number of blocks with the
    identity element of the comparison, reshaped, and reduced row-wise.
    ``argmax`` / ``argmin`` return the *first* optimum of a row, matching
    the scalar per-block scan exactly (padding sits at the tail of the
    last row only, and never beats a real entry — on an all-``fill`` row
    the first cell, a real entry, still wins the tie).
    """
    n = len(values)
    block_count = (n + block_size - 1) // block_size
    fill = -np.inf if mode == "max" else np.inf
    padded = np.full(block_count * block_size, fill, dtype=np.float64)
    padded[:n] = values
    grid = padded.reshape(block_count, block_size)
    reducer = np.argmax if mode == "max" else np.argmin
    offsets = reducer(grid, axis=1).astype(np.int64)
    return np.arange(block_count, dtype=np.int64) * block_size + offsets


def _prefer_current_batch(
    values: np.ndarray, mode: Mode, current: np.ndarray, candidate: np.ndarray
) -> np.ndarray:
    """Row-wise better of two candidate positions; ``current`` wins ties.

    The shared merge step of the batch block-decomposition paths: callers
    order their merges so that "``current`` wins ties" realizes their
    documented tie-break (position order for :class:`CompactRMQ`'s exact
    leftmost optimum; head → tail → middle for :class:`BlockRMQ`).
    """
    if mode == "max":
        keep = values[current] >= values[candidate]
    else:
        keep = values[current] <= values[candidate]
    return np.where(keep, current, candidate)


def _masked_block_scan(
    values: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    block_size: int,
    mode: Mode,
) -> np.ndarray:
    """Row-wise leftmost optimum of ``[starts[i], ends[i]]`` (≤ one block wide).

    Valid cells form a prefix of every row, so the row reducer picks the
    first optimum exactly like ``np.argmax`` over the scalar segment does.
    Shared by :meth:`BlockRMQ.query_batch` and :meth:`CompactRMQ.query_batch`.
    """
    n = len(values)
    fill = -np.inf if mode == "max" else np.inf
    reducer = np.argmax if mode == "max" else np.argmin
    offsets = np.arange(block_size, dtype=np.int64)
    grid = starts[:, None] + offsets[None, :]
    valid = grid <= ends[:, None]
    cells = np.where(valid, values[np.minimum(grid, n - 1)], fill)
    return starts + reducer(cells, axis=1)


class SparseTableRMQ:
    """Sparse-table RMQ with ``O(n log n)`` preprocessing and ``O(1)`` queries.

    Parameters
    ----------
    values:
        The array to preprocess.  A copy is kept for tie-breaking and
        value retrieval.
    mode:
        ``"max"`` (default) or ``"min"``.

    Examples
    --------
    >>> rmq = SparseTableRMQ([0.1, 0.9, 0.4, 0.7])
    >>> rmq.query(0, 3)
    1
    >>> rmq.query(2, 3)
    3
    """

    def __init__(self, values: Sequence[float], *, mode: Mode = "max"):
        self._values = _prepare_values(values, mode)
        self._mode = mode
        n = len(self._values)
        levels = max(1, n.bit_length())
        # table[k][i] = index of optimum in values[i : i + 2**k]
        self._table = np.empty((levels, n), dtype=np.int64)
        self._table[0] = np.arange(n, dtype=np.int64)
        compare = np.greater_equal if mode == "max" else np.less_equal
        for k in range(1, levels):
            span = 1 << k
            half = span >> 1
            width = n - span + 1
            if width <= 0:
                self._table[k] = self._table[k - 1]
                continue
            left = self._table[k - 1][:width]
            right = self._table[k - 1][half : half + width]
            choose_left = compare(self._values[left], self._values[right])
            self._table[k][:width] = np.where(choose_left, left, right)
            self._table[k][width:] = self._table[k - 1][width:]

    @classmethod
    def from_table(
        cls, values: Sequence[float], table: np.ndarray, *, mode: Mode = "max"
    ) -> "SparseTableRMQ":
        """Restore a sparse table from a serialized payload without rebuilding.

        ``table`` must be the ``(levels, n)`` index table a previous
        construction over the same ``values`` produced (see
        :func:`serialize_rmq`); only its shape is validated — archives are
        gated by the persistence manifest, and the fuzz suite pins restored
        structures to answer identically to rebuilt ones.  ``table`` may be
        a read-only memory map; it is used as-is, zero-copy.
        """
        self = cls.__new__(cls)
        self._values = _prepare_values(values, mode)
        self._mode = mode
        table = np.asarray(table, dtype=np.int64)
        n = len(self._values)
        expected = (max(1, n.bit_length()), n)
        if table.shape != expected:
            raise ValidationError(
                f"serialized sparse table has shape {table.shape}, expected "
                f"{expected} for an array of length {n}"
            )
        self._table = table
        return self

    @property
    def mode(self) -> Mode:
        """Whether this structure answers max or min queries."""
        return self._mode

    @property
    def values(self) -> np.ndarray:
        """The underlying array (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def table(self) -> np.ndarray:
        """The ``(levels, n)`` sparse table (read-only view; serialization)."""
        view = self._table.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return len(self._values)

    def query(self, left: int, right: int) -> int:
        """Return the index of the optimum value in ``values[left..right]`` (inclusive)."""
        left, right = _check_range(len(self._values), left, right)
        span = right - left + 1
        k = span.bit_length() - 1
        a = int(self._table[k][left])
        b = int(self._table[k][right - (1 << k) + 1])
        if self._mode == "max":
            return a if self._values[a] >= self._values[b] else b
        return a if self._values[a] <= self._values[b] else b

    def query_batch(self, lefts: Sequence[int], rights: Sequence[int]) -> np.ndarray:
        """Answer many ``[left, right]`` queries in one vectorized pass.

        Element ``i`` of the result equals ``self.query(lefts[i], rights[i])``
        — including the tie-break (the leftmost optimum is returned).  The
        whole batch costs two table gathers, one comparison and one
        ``np.where``, with no Python-level work per query.
        """
        lefts, rights = _check_batch(len(self._values), lefts, rights)
        if lefts.size == 0:
            return np.empty(0, dtype=np.int64)
        levels = _floor_log2(rights - lefts + 1)
        a = self._table[levels, lefts]
        b = self._table[levels, rights - (np.int64(1) << levels) + 1]
        if self._mode == "max":
            choose_a = self._values[a] >= self._values[b]
        else:
            choose_a = self._values[a] <= self._values[b]
        return np.where(choose_a, a, b)

    def query_value(self, left: int, right: int) -> float:
        """Return the optimum *value* in ``values[left..right]``."""
        return float(self._values[self.query(left, right)])

    def nbytes(self) -> int:
        """Approximate memory footprint in bytes."""
        return int(self._table.nbytes + self._values.nbytes)

    def to_payload(self) -> IndexPayload:
        """Space-efficient payload: block optimum positions, not the table.

        Serializing the full ``(levels, n)`` table costs O(n log n) words;
        the payload instead stores the leftmost optimum of every
        ``~log2 n``-wide block (O(n / log n) words, Fischer–Heun style).
        :func:`rmq_from_payload` restores a :class:`CompactRMQ`, which
        rebuilds the cheap top levels — a sparse table over the block
        optima, O(n/b · log n) words — and answers every query with the
        same leftmost-optimum tie-break this class guarantees, so restored
        indexes answer byte-identically.  The full table is reported as a
        *derived* array (it is this object's real memory footprint) but is
        never written to archives.
        """
        n = len(self._values)
        block_size = default_block_size(n)
        return IndexPayload(
            schema=RMQ_SCHEMA_SPARSE,
            meta={"mode": self._mode, "block_size": block_size, "length": n},
            arrays={
                "block_positions": _block_optimum_positions(
                    self._values, block_size, self._mode
                )
            },
            derived={"table": self._table},
        )


class BlockRMQ:
    """Block-decomposed RMQ trading query constant factors for linear space.

    The array is partitioned into blocks of ``block_size`` elements
    (default ``max(1, ⌈log2 n⌉)``); a :class:`SparseTableRMQ` is kept over
    the per-block optima and queries scan at most two partial blocks.

    Examples
    --------
    >>> rmq = BlockRMQ([5.0, 1.0, 4.0, 9.0, 2.0], block_size=2)
    >>> rmq.query(0, 4)
    3
    """

    def __init__(
        self,
        values: Sequence[float],
        *,
        mode: Mode = "max",
        block_size: int | None = None,
    ):
        self._values = _prepare_values(values, mode)
        self._mode = mode
        n = len(self._values)
        if block_size is None:
            block_size = default_block_size(n)
        if block_size <= 0:
            raise ValidationError(f"block_size must be positive, got {block_size}")
        self._block_size = block_size
        self._block_positions = _block_optimum_positions(self._values, block_size, mode)
        self._summary = SparseTableRMQ(self._values[self._block_positions], mode=mode)

    @classmethod
    def from_parts(
        cls,
        values: Sequence[float],
        *,
        block_size: int,
        block_positions: np.ndarray,
        summary_table: Optional[np.ndarray] = None,
        mode: Mode = "max",
    ) -> "BlockRMQ":
        """Restore a block RMQ from a serialized payload without rebuilding.

        ``block_positions`` (and ``summary_table`` when given) must come
        from a previous construction over the same ``values`` (see
        :func:`serialize_rmq`).  Shapes are validated; contents are
        trusted, exactly as :meth:`SparseTableRMQ.from_table` documents.
        With ``summary_table=None`` — the space-efficient payload of
        :meth:`to_payload` — the summary sparse table is *rebuilt* over the
        block optima: O(n/b · log(n/b)) work and words, a deterministic
        function of ``values[block_positions]``, so the restored structure
        answers identically either way.
        """
        self = cls.__new__(cls)
        self._values = _prepare_values(values, mode)
        self._mode = mode
        if block_size <= 0:
            raise ValidationError(f"block_size must be positive, got {block_size}")
        self._block_size = int(block_size)
        n = len(self._values)
        block_positions = _as_position_array(block_positions)
        block_count = (n + self._block_size - 1) // self._block_size
        if block_positions.shape != (block_count,):
            raise ValidationError(
                f"serialized block positions have shape {block_positions.shape}, "
                f"expected ({block_count},) for length {n} and "
                f"block_size {self._block_size}"
            )
        self._block_positions = block_positions
        if summary_table is None:
            self._summary = SparseTableRMQ(self._values[block_positions], mode=mode)
        else:
            self._summary = SparseTableRMQ.from_table(
                self._values[block_positions], summary_table, mode=mode
            )
        return self

    @property
    def mode(self) -> Mode:
        """Whether this structure answers max or min queries."""
        return self._mode

    @property
    def block_size(self) -> int:
        """Number of elements per block."""
        return self._block_size

    def __len__(self) -> int:
        return len(self._values)

    def _scan(self, left: int, right: int) -> int:
        segment = self._values[left : right + 1]
        offset = int(np.argmax(segment) if self._mode == "max" else np.argmin(segment))
        return left + offset

    def _better(self, a: int, b: int) -> int:
        if self._mode == "max":
            return a if self._values[a] >= self._values[b] else b
        return a if self._values[a] <= self._values[b] else b

    def query(self, left: int, right: int) -> int:
        """Return the index of the optimum value in ``values[left..right]`` (inclusive)."""
        left, right = _check_range(len(self._values), left, right)
        first_block = left // self._block_size
        last_block = right // self._block_size
        if first_block == last_block:
            return self._scan(left, right)
        best = self._scan(left, (first_block + 1) * self._block_size - 1)
        tail_start = last_block * self._block_size
        best = self._better(best, self._scan(tail_start, right))
        if last_block - first_block > 1:
            summary_index = self._summary.query(first_block + 1, last_block - 1)
            best = self._better(best, int(self._block_positions[summary_index]))
        return best

    def query_batch(self, lefts: Sequence[int], rights: Sequence[int]) -> np.ndarray:
        """Answer many ``[left, right]`` queries in one vectorized pass.

        Element ``i`` equals ``self.query(lefts[i], rights[i])``, reproducing
        the scalar tie-breaks exactly: the head-block scan wins ties against
        the tail-block scan, and the head/tail winner wins ties against the
        middle-block summary.  Partial-block scans become two masked
        ``block_size``-wide gathers with a row-wise argmax, and the summary
        lookup is one :meth:`SparseTableRMQ.query_batch` call.
        """
        n = len(self._values)
        lefts, rights = _check_batch(n, lefts, rights)
        if lefts.size == 0:
            return np.empty(0, dtype=np.int64)
        block_size = self._block_size
        first_block = lefts // block_size
        last_block = rights // block_size

        def scan(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
            return _masked_block_scan(self._values, starts, ends, block_size, self._mode)

        best = scan(lefts, np.minimum(rights, (first_block + 1) * block_size - 1))
        cross = first_block != last_block
        if cross.any():
            tail_best = scan(last_block[cross] * block_size, rights[cross])
            best[cross] = _prefer_current_batch(
                self._values, self._mode, best[cross], tail_best
            )
        gap = last_block - first_block > 1
        if gap.any():
            summary = self._summary.query_batch(first_block[gap] + 1, last_block[gap] - 1)
            best[gap] = _prefer_current_batch(
                self._values, self._mode, best[gap], self._block_positions[summary]
            )
        return best

    def query_value(self, left: int, right: int) -> float:
        """Return the optimum *value* in ``values[left..right]``."""
        return float(self._values[self.query(left, right)])

    def nbytes(self) -> int:
        """Approximate memory footprint in bytes."""
        return int(
            self._values.nbytes + self._block_positions.nbytes + self._summary.nbytes()
        )

    def to_payload(self) -> IndexPayload:
        """Space-efficient payload: block positions only (summary rebuilt).

        The version-2 archives serialized the summary sparse table too;
        it is a deterministic O(n/b · log(n/b))-word function of
        ``values[block_positions]``, so :func:`rmq_from_payload` rebuilds
        it instead (reported here as a *derived* array: counted in memory
        accounting, absent from archives).
        """
        return IndexPayload(
            schema=RMQ_SCHEMA_BLOCK,
            meta={
                "mode": self._mode,
                "block_size": self._block_size,
                "length": len(self._values),
            },
            arrays={"block_positions": self._block_positions},
            derived={"summary_table": self._summary._table},
        )


class CompactRMQ:
    """The space-efficient restore form of a serialized sparse table.

    Built from the Fischer–Heun-style payload of
    :meth:`SparseTableRMQ.to_payload` — per-block leftmost-optimum
    positions plus a rebuilt sparse table over the block optima — this
    structure occupies O(n/b · log n) words beyond the value array yet
    answers **exactly** like :class:`SparseTableRMQ`: every query returns
    the *leftmost* optimum of its range.

    The leftmost guarantee holds because the three candidate regions of a
    block-decomposed query are compared in position order — head partial
    block, middle summary, tail partial block — with the earlier candidate
    winning ties.  Each candidate is the leftmost optimum of its region
    (``argmax`` picks the first optimum of a scan; the summary table
    prefers the leftmost block, whose stored position is leftmost within
    the block), so the first region attaining the global optimum
    contributes the globally leftmost position.  (:class:`BlockRMQ`
    compares head, *tail*, then middle, which is why its tie-breaks differ
    and why the two classes stay distinct.)

    Queries cost O(block_size); construction from values is O(n).
    """

    def __init__(
        self,
        values: Sequence[float],
        *,
        mode: Mode = "max",
        block_size: Optional[int] = None,
        block_positions: Optional[np.ndarray] = None,
    ):
        self._values = _prepare_values(values, mode)
        self._mode = mode
        n = len(self._values)
        if block_size is None:
            block_size = default_block_size(n)
        if block_size <= 0:
            raise ValidationError(f"block_size must be positive, got {block_size}")
        self._block_size = int(block_size)
        block_count = (n + self._block_size - 1) // self._block_size
        if block_positions is None:
            block_positions = _block_optimum_positions(
                self._values, self._block_size, mode
            )
        else:
            block_positions = _as_position_array(block_positions)
            if block_positions.shape != (block_count,):
                raise ValidationError(
                    f"serialized block positions have shape {block_positions.shape}, "
                    f"expected ({block_count},) for length {n} and "
                    f"block_size {self._block_size}"
                )
        self._block_positions = block_positions
        self._summary = SparseTableRMQ(self._values[block_positions], mode=mode)

    @property
    def mode(self) -> Mode:
        """Whether this structure answers max or min queries."""
        return self._mode

    @property
    def block_size(self) -> int:
        """Number of elements per block."""
        return self._block_size

    def __len__(self) -> int:
        return len(self._values)

    def _scan(self, left: int, right: int) -> int:
        segment = self._values[left : right + 1]
        offset = int(np.argmax(segment) if self._mode == "max" else np.argmin(segment))
        return left + offset

    def _keep_first(self, first: int, second: int) -> int:
        """The better of two candidates; the earlier one wins ties."""
        if self._mode == "max":
            return first if self._values[first] >= self._values[second] else second
        return first if self._values[first] <= self._values[second] else second

    def query(self, left: int, right: int) -> int:
        """Index of the *leftmost* optimum in ``values[left..right]`` (inclusive)."""
        left, right = _check_range(len(self._values), left, right)
        first_block = left // self._block_size
        last_block = right // self._block_size
        if first_block == last_block:
            return self._scan(left, right)
        # Candidates compared in position order: head, middle, tail.
        best = self._scan(left, (first_block + 1) * self._block_size - 1)
        if last_block - first_block > 1:
            summary_index = self._summary.query(first_block + 1, last_block - 1)
            best = self._keep_first(best, int(self._block_positions[summary_index]))
        tail_start = last_block * self._block_size
        return self._keep_first(best, self._scan(tail_start, right))

    def query_batch(self, lefts: Sequence[int], rights: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`query`: element ``i`` equals ``query(lefts[i], rights[i])``."""
        n = len(self._values)
        lefts, rights = _check_batch(n, lefts, rights)
        if lefts.size == 0:
            return np.empty(0, dtype=np.int64)
        block_size = self._block_size
        first_block = lefts // block_size
        last_block = rights // block_size

        best = _masked_block_scan(
            self._values,
            lefts,
            np.minimum(rights, (first_block + 1) * block_size - 1),
            block_size,
            self._mode,
        )
        # Same comparison order as the scalar path: head beats middle beats
        # tail on ties, giving the leftmost optimum overall.
        gap = last_block - first_block > 1
        if gap.any():
            summary = self._summary.query_batch(first_block[gap] + 1, last_block[gap] - 1)
            best[gap] = _prefer_current_batch(
                self._values, self._mode, best[gap], self._block_positions[summary]
            )
        cross = first_block != last_block
        if cross.any():
            tail_best = _masked_block_scan(
                self._values,
                last_block[cross] * block_size,
                rights[cross],
                block_size,
                self._mode,
            )
            best[cross] = _prefer_current_batch(
                self._values, self._mode, best[cross], tail_best
            )
        return best

    def query_value(self, left: int, right: int) -> float:
        """Return the optimum *value* in ``values[left..right]``."""
        return float(self._values[self.query(left, right)])

    def nbytes(self) -> int:
        """Approximate memory footprint in bytes."""
        return int(
            self._values.nbytes + self._block_positions.nbytes + self._summary.nbytes()
        )

    def to_payload(self) -> IndexPayload:
        """Round-trips to the exact payload this structure was restored from."""
        return IndexPayload(
            schema=RMQ_SCHEMA_SPARSE,
            meta={
                "mode": self._mode,
                "block_size": self._block_size,
                "length": len(self._values),
            },
            arrays={"block_positions": self._block_positions},
            derived={"summary_table": self._summary._table},
        )


def make_rmq(
    values: Sequence[float],
    *,
    mode: Mode = "max",
    implementation: Literal["sparse", "block"] = "sparse",
    block_size: int | None = None,
):
    """Factory returning the requested RMQ implementation.

    Used by the indexes so that the RMQ flavour can be switched for the
    space/time ablation without touching index code.
    """
    if implementation == "sparse":
        return SparseTableRMQ(values, mode=mode)
    if implementation == "block":
        return BlockRMQ(values, mode=mode, block_size=block_size)
    raise ValidationError(
        f"unknown RMQ implementation {implementation!r}; expected 'sparse' or 'block'"
    )


# ---------------------------------------------------------------------------
# Serialization (persistence payloads, version RMQ_PAYLOAD_VERSION)
# ---------------------------------------------------------------------------
def serialize_rmq(rmq) -> Dict[str, np.ndarray]:
    """Extract the preprocessed arrays that reconstruct ``rmq`` in O(1).

    Returns a flat ``name -> ndarray`` mapping (the persistence layer
    prefixes the names into its archive keys).  The value array itself is
    **not** included — every index already persists it, and the restore
    side passes it back to :func:`deserialize_rmq`.
    """
    if isinstance(rmq, SparseTableRMQ):
        return {"table": rmq._table}
    if isinstance(rmq, CompactRMQ):
        # A CompactRMQ (the restore form of a format-3 sparse payload) has
        # no full table; writing the legacy format rebuilds one.  Sparse
        # construction is a pure function of the values, so a version-2
        # archive written this way restores to the exact table the original
        # SparseTableRMQ held.
        return {"table": SparseTableRMQ(rmq._values, mode=rmq._mode)._table}
    if isinstance(rmq, BlockRMQ):
        return {
            "block_positions": rmq._block_positions,
            "summary_table": rmq._summary._table,
            "block_size": np.array([rmq._block_size], dtype=np.int64),
        }
    raise ValidationError(
        f"cannot serialize a {type(rmq).__name__}; expected SparseTableRMQ, "
        "CompactRMQ or BlockRMQ"
    )


def deserialize_rmq(
    values: Sequence[float], payload: Dict[str, np.ndarray], *, mode: Mode = "max"
):
    """Restore the RMQ structure :func:`serialize_rmq` extracted.

    The implementation flavour is recovered from the payload shape (a
    sparse table carries ``table``; a block structure carries
    ``block_positions`` / ``summary_table`` / ``block_size``), so callers
    only need to hand back the value array the structure was built over.
    Payload arrays may be read-only memory maps — queries never write.
    """
    if "table" in payload:
        return SparseTableRMQ.from_table(values, payload["table"], mode=mode)
    if {"block_positions", "summary_table", "block_size"} <= set(payload):
        return BlockRMQ.from_parts(
            values,
            block_size=int(np.asarray(payload["block_size"]).reshape(-1)[0]),
            block_positions=payload["block_positions"],
            summary_table=payload["summary_table"],
            mode=mode,
        )
    raise ValidationError(
        f"unrecognized RMQ payload with keys {sorted(payload)}; expected "
        "'table' (sparse) or 'block_positions'/'summary_table'/'block_size' (block)"
    )


# ---------------------------------------------------------------------------
# IndexPayload currency (format-3 archives, worker IPC, space accounting)
# ---------------------------------------------------------------------------
def rmq_to_payload(rmq) -> IndexPayload:
    """The :class:`~repro.payload.IndexPayload` describing ``rmq``.

    Dispatches to the structure's ``to_payload``; both flavours serialize
    to O(n / block_size) stored words (block optimum positions only).
    """
    if isinstance(rmq, (SparseTableRMQ, BlockRMQ, CompactRMQ)):
        return rmq.to_payload()
    raise ValidationError(
        f"cannot serialize a {type(rmq).__name__}; expected SparseTableRMQ, "
        "CompactRMQ or BlockRMQ"
    )


def rmq_from_payload(values: Sequence[float], payload: IndexPayload):
    """Restore the RMQ structure an :class:`IndexPayload` describes.

    ``values`` is the array the structure was built over — the payload
    deliberately excludes it, since every index persists its value arrays
    itself.  Four schemas are understood:

    * :data:`RMQ_SCHEMA_SPARSE` — block positions of a sparse table;
      restores a :class:`CompactRMQ` (identical answers, O(n/b log n)
      words instead of O(n log n));
    * :data:`RMQ_SCHEMA_BLOCK` — block positions of a :class:`BlockRMQ`;
      the summary table is rebuilt;
    * :data:`RMQ_SCHEMA_SPARSE_TABLE` / :data:`RMQ_SCHEMA_BLOCK_TABLE` —
      the legacy full-table layouts of version-2 archives, restored
      zero-copy exactly as :func:`deserialize_rmq` does.

    Payload arrays may be read-only memory maps — queries never write.
    """
    mode = payload.meta.get("mode", "max")
    if payload.schema == RMQ_SCHEMA_SPARSE:
        return CompactRMQ(
            values,
            mode=mode,
            block_size=int(payload.meta["block_size"]),
            block_positions=payload.arrays["block_positions"],
        )
    if payload.schema == RMQ_SCHEMA_BLOCK:
        return BlockRMQ.from_parts(
            values,
            block_size=int(payload.meta["block_size"]),
            block_positions=payload.arrays["block_positions"],
            summary_table=None,
            mode=mode,
        )
    if payload.schema == RMQ_SCHEMA_SPARSE_TABLE:
        return SparseTableRMQ.from_table(values, payload.arrays["table"], mode=mode)
    if payload.schema == RMQ_SCHEMA_BLOCK_TABLE:
        return BlockRMQ.from_parts(
            values,
            block_size=int(payload.meta["block_size"]),
            block_positions=payload.arrays["block_positions"],
            summary_table=payload.arrays["summary_table"],
            mode=mode,
        )
    raise ValidationError(
        f"unrecognized RMQ payload schema {payload.schema!r}; expected one of "
        f"{[RMQ_SCHEMA_SPARSE, RMQ_SCHEMA_BLOCK, RMQ_SCHEMA_SPARSE_TABLE, RMQ_SCHEMA_BLOCK_TABLE]}"
    )
