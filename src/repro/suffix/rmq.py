"""Range maximum / minimum query structures.

The efficient indexes of Sections 4.2, 5 and 6 answer threshold queries by
repeatedly extracting the maximum-probability element of a suffix range, so
an ``O(1)``-query RMQ structure is the core building block (paper Lemma 1).

Two interchangeable implementations are provided:

* :class:`SparseTableRMQ` — the classical ``O(n log n)``-space sparse table
  with true ``O(1)`` queries.  This is the default used by every index.
* :class:`BlockRMQ` — a Fischer–Heun-style block decomposition: the array is
  cut into blocks of ``~log n`` elements, a sparse table is kept over block
  maxima only, and in-block queries scan the block.  Queries are
  ``O(log n)`` worst case but the space drops to ``O(n)`` words with small
  constants — the practical trade-off the paper's space accounting (§8.7)
  alludes to.  The ablation benchmark compares the two.

Both classes answer *maximum* queries by default; pass ``mode="min"`` for
minimum queries.  Queries return the **position** of the optimum, matching
how the paper uses RMQ (the value is then validated against the cumulative
probability array).
"""

from __future__ import annotations

import math
from typing import Literal, Sequence, Tuple

import numpy as np

from ..exceptions import ValidationError

Mode = Literal["max", "min"]


def _prepare_values(values: Sequence[float], mode: Mode) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValidationError(f"RMQ input must be one-dimensional, got shape {array.shape}")
    if len(array) == 0:
        raise ValidationError("cannot build an RMQ structure over an empty array")
    if mode not in ("max", "min"):
        raise ValidationError(f"mode must be 'max' or 'min', got {mode!r}")
    return array


def _check_range(length: int, left: int, right: int) -> Tuple[int, int]:
    if left < 0 or right >= length or left > right:
        raise ValidationError(
            f"invalid RMQ range [{left}, {right}] for array of length {length}"
        )
    return left, right


class SparseTableRMQ:
    """Sparse-table RMQ with ``O(n log n)`` preprocessing and ``O(1)`` queries.

    Parameters
    ----------
    values:
        The array to preprocess.  A copy is kept for tie-breaking and
        value retrieval.
    mode:
        ``"max"`` (default) or ``"min"``.

    Examples
    --------
    >>> rmq = SparseTableRMQ([0.1, 0.9, 0.4, 0.7])
    >>> rmq.query(0, 3)
    1
    >>> rmq.query(2, 3)
    3
    """

    def __init__(self, values: Sequence[float], *, mode: Mode = "max"):
        self._values = _prepare_values(values, mode)
        self._mode = mode
        n = len(self._values)
        levels = max(1, n.bit_length())
        # table[k][i] = index of optimum in values[i : i + 2**k]
        self._table = np.empty((levels, n), dtype=np.int64)
        self._table[0] = np.arange(n, dtype=np.int64)
        compare = np.greater_equal if mode == "max" else np.less_equal
        for k in range(1, levels):
            span = 1 << k
            half = span >> 1
            width = n - span + 1
            if width <= 0:
                self._table[k] = self._table[k - 1]
                continue
            left = self._table[k - 1][:width]
            right = self._table[k - 1][half : half + width]
            choose_left = compare(self._values[left], self._values[right])
            self._table[k][:width] = np.where(choose_left, left, right)
            self._table[k][width:] = self._table[k - 1][width:]

    @property
    def mode(self) -> Mode:
        """Whether this structure answers max or min queries."""
        return self._mode

    @property
    def values(self) -> np.ndarray:
        """The underlying array (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return len(self._values)

    def query(self, left: int, right: int) -> int:
        """Return the index of the optimum value in ``values[left..right]`` (inclusive)."""
        left, right = _check_range(len(self._values), left, right)
        span = right - left + 1
        k = span.bit_length() - 1
        a = int(self._table[k][left])
        b = int(self._table[k][right - (1 << k) + 1])
        if self._mode == "max":
            return a if self._values[a] >= self._values[b] else b
        return a if self._values[a] <= self._values[b] else b

    def query_value(self, left: int, right: int) -> float:
        """Return the optimum *value* in ``values[left..right]``."""
        return float(self._values[self.query(left, right)])

    def nbytes(self) -> int:
        """Approximate memory footprint in bytes."""
        return int(self._table.nbytes + self._values.nbytes)


class BlockRMQ:
    """Block-decomposed RMQ trading query constant factors for linear space.

    The array is partitioned into blocks of ``block_size`` elements
    (default ``max(1, ⌈log2 n⌉)``); a :class:`SparseTableRMQ` is kept over
    the per-block optima and queries scan at most two partial blocks.

    Examples
    --------
    >>> rmq = BlockRMQ([5.0, 1.0, 4.0, 9.0, 2.0], block_size=2)
    >>> rmq.query(0, 4)
    3
    """

    def __init__(
        self,
        values: Sequence[float],
        *,
        mode: Mode = "max",
        block_size: int | None = None,
    ):
        self._values = _prepare_values(values, mode)
        self._mode = mode
        n = len(self._values)
        if block_size is None:
            block_size = max(1, math.ceil(math.log2(n + 1)))
        if block_size <= 0:
            raise ValidationError(f"block_size must be positive, got {block_size}")
        self._block_size = block_size
        block_count = (n + block_size - 1) // block_size
        reducer = np.argmax if mode == "max" else np.argmin
        block_optimum_positions = np.empty(block_count, dtype=np.int64)
        for block in range(block_count):
            start = block * block_size
            end = min(start + block_size, n)
            block_optimum_positions[block] = start + reducer(self._values[start:end])
        self._block_positions = block_optimum_positions
        self._summary = SparseTableRMQ(self._values[block_optimum_positions], mode=mode)

    @property
    def mode(self) -> Mode:
        """Whether this structure answers max or min queries."""
        return self._mode

    @property
    def block_size(self) -> int:
        """Number of elements per block."""
        return self._block_size

    def __len__(self) -> int:
        return len(self._values)

    def _scan(self, left: int, right: int) -> int:
        segment = self._values[left : right + 1]
        offset = int(np.argmax(segment) if self._mode == "max" else np.argmin(segment))
        return left + offset

    def _better(self, a: int, b: int) -> int:
        if self._mode == "max":
            return a if self._values[a] >= self._values[b] else b
        return a if self._values[a] <= self._values[b] else b

    def query(self, left: int, right: int) -> int:
        """Return the index of the optimum value in ``values[left..right]`` (inclusive)."""
        left, right = _check_range(len(self._values), left, right)
        first_block = left // self._block_size
        last_block = right // self._block_size
        if first_block == last_block:
            return self._scan(left, right)
        best = self._scan(left, (first_block + 1) * self._block_size - 1)
        tail_start = last_block * self._block_size
        best = self._better(best, self._scan(tail_start, right))
        if last_block - first_block > 1:
            summary_index = self._summary.query(first_block + 1, last_block - 1)
            best = self._better(best, int(self._block_positions[summary_index]))
        return best

    def query_value(self, left: int, right: int) -> float:
        """Return the optimum *value* in ``values[left..right]``."""
        return float(self._values[self.query(left, right)])

    def nbytes(self) -> int:
        """Approximate memory footprint in bytes."""
        return int(
            self._values.nbytes + self._block_positions.nbytes + self._summary.nbytes()
        )


def make_rmq(
    values: Sequence[float],
    *,
    mode: Mode = "max",
    implementation: Literal["sparse", "block"] = "sparse",
    block_size: int | None = None,
):
    """Factory returning the requested RMQ implementation.

    Used by the indexes so that the RMQ flavour can be switched for the
    space/time ablation without touching index code.
    """
    if implementation == "sparse":
        return SparseTableRMQ(values, mode=mode)
    if implementation == "block":
        return BlockRMQ(values, mode=mode, block_size=block_size)
    raise ValidationError(
        f"unknown RMQ implementation {implementation!r}; expected 'sparse' or 'block'"
    )
