"""Deterministic string-indexing substrate (suffix arrays, trees, RMQ)."""

from .generalized import (
    DEFAULT_SEPARATOR,
    ConcatenatedDocuments,
    GeneralizedSuffixStructure,
)
from .lcp import LCPArray, build_lcp_array, naive_lcp_array
from .pattern_search import count_occurrences, occurrence_positions, suffix_range
from .rmq import (
    RMQ_PAYLOAD_VERSION,
    BlockRMQ,
    CompactRMQ,
    SparseTableRMQ,
    deserialize_rmq,
    make_rmq,
    rmq_from_payload,
    rmq_to_payload,
    serialize_rmq,
)
from .suffix_array import (
    SuffixArray,
    build_suffix_array,
    inverse_suffix_array,
    naive_suffix_array,
)
from .suffix_tree import SuffixTree

__all__ = [
    "BlockRMQ",
    "CompactRMQ",
    "ConcatenatedDocuments",
    "DEFAULT_SEPARATOR",
    "GeneralizedSuffixStructure",
    "LCPArray",
    "RMQ_PAYLOAD_VERSION",
    "SparseTableRMQ",
    "SuffixArray",
    "SuffixTree",
    "build_lcp_array",
    "build_suffix_array",
    "count_occurrences",
    "deserialize_rmq",
    "inverse_suffix_array",
    "make_rmq",
    "rmq_from_payload",
    "rmq_to_payload",
    "serialize_rmq",
    "naive_lcp_array",
    "naive_suffix_array",
    "occurrence_positions",
    "suffix_range",
]
