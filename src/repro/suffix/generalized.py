"""Generalized suffix structures over document collections.

For the string-listing problem the paper concatenates all documents with a
separator symbol and builds one suffix tree over the concatenation
(Section 3.4, "generalized suffix tree").  :class:`ConcatenatedDocuments`
performs the concatenation and keeps the position -> (document, offset)
mapping; :class:`GeneralizedSuffixStructure` adds the suffix array / suffix
tree over it.

These classes operate on *deterministic* texts.  The uncertain-string
listing index (:mod:`repro.core.listing`) performs its own concatenation at
the maximal-factor level but reuses the same document-mapping conventions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ValidationError
from .lcp import build_lcp_array
from .suffix_array import SuffixArray
from .suffix_tree import SuffixTree

#: Default separator inserted between documents.  It must not occur inside
#: any document; ``\x01`` keeps it out of every printable alphabet while
#: still sorting below ordinary characters.
DEFAULT_SEPARATOR = "\x01"


class ConcatenatedDocuments:
    """Concatenation of deterministic documents with a separator.

    Parameters
    ----------
    documents:
        The deterministic texts to concatenate, in document-id order.
    separator:
        Single character placed between (and after) documents.

    Examples
    --------
    >>> concatenated = ConcatenatedDocuments(["abc", "de"])
    >>> concatenated.text
    'abc\\x01de\\x01'
    >>> concatenated.document_of(4)
    1
    >>> concatenated.offset_of(4)
    0
    """

    def __init__(self, documents: Sequence[str], *, separator: str = DEFAULT_SEPARATOR):
        if not documents:
            raise ValidationError("need at least one document to concatenate")
        if not isinstance(separator, str) or len(separator) != 1:
            raise ValidationError(f"separator must be a single character, got {separator!r}")
        for identifier, document in enumerate(documents):
            if not document:
                raise ValidationError(f"document {identifier} is empty")
            if separator in document:
                raise ValidationError(
                    f"document {identifier} contains the separator character {separator!r}"
                )
        self._documents = tuple(documents)
        self._separator = separator

        pieces: List[str] = []
        starts: List[int] = []
        cursor = 0
        for document in documents:
            starts.append(cursor)
            pieces.append(document)
            pieces.append(separator)
            cursor += len(document) + 1
        self._text = "".join(pieces)
        self._starts = np.asarray(starts, dtype=np.int64)
        self._ends = self._starts + np.asarray([len(d) for d in documents], dtype=np.int64)

    # -- accessors -------------------------------------------------------------------
    @property
    def text(self) -> str:
        """The concatenated text (each document followed by the separator)."""
        return self._text

    @property
    def separator(self) -> str:
        """The separator character."""
        return self._separator

    @property
    def documents(self) -> Tuple[str, ...]:
        """The original documents."""
        return self._documents

    @property
    def document_count(self) -> int:
        """Number of documents."""
        return len(self._documents)

    @property
    def document_starts(self) -> np.ndarray:
        """Start offset of each document in the concatenated text."""
        view = self._starts.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return len(self._text)

    # -- position mapping ----------------------------------------------------------------
    def document_of(self, position: int) -> int:
        """Document id owning the concatenated-text ``position``.

        Separator positions belong to the document they terminate.
        """
        if position < 0 or position >= len(self._text):
            raise ValidationError(
                f"position {position} outside concatenated text of length {len(self._text)}"
            )
        return int(np.searchsorted(self._starts, position, side="right") - 1)

    def offset_of(self, position: int) -> int:
        """Offset of ``position`` inside its owning document."""
        document = self.document_of(position)
        return position - int(self._starts[document])

    def is_separator(self, position: int) -> bool:
        """True when ``position`` holds a separator character."""
        return self._text[position] == self._separator

    def document_array(self) -> np.ndarray:
        """Vector mapping every concatenated-text position to its document id."""
        return np.searchsorted(self._starts, np.arange(len(self._text)), side="right") - 1


class GeneralizedSuffixStructure:
    """Suffix array + suffix tree over a :class:`ConcatenatedDocuments`.

    Convenience bundle used in tests and in the deterministic listing
    baseline; the probabilistic listing index builds its own structures over
    the transformed (maximal-factor) text.
    """

    def __init__(self, documents: Sequence[str], *, separator: str = DEFAULT_SEPARATOR):
        self._concatenation = ConcatenatedDocuments(documents, separator=separator)
        self._suffix_array = SuffixArray(self._concatenation.text)
        self._lcp = build_lcp_array(self._concatenation.text, self._suffix_array.array)
        self._tree: Optional[SuffixTree] = None

    @property
    def concatenation(self) -> ConcatenatedDocuments:
        """The underlying concatenation."""
        return self._concatenation

    @property
    def suffix_array(self) -> SuffixArray:
        """Suffix array over the concatenated text."""
        return self._suffix_array

    @property
    def lcp(self) -> np.ndarray:
        """LCP array over the concatenated text."""
        return self._lcp

    @property
    def tree(self) -> SuffixTree:
        """Suffix tree (built lazily on first access)."""
        if self._tree is None:
            self._tree = SuffixTree(self._suffix_array, lcp=self._lcp)
        return self._tree

    def documents_containing(self, pattern: str) -> List[int]:
        """Document ids containing at least one deterministic occurrence of ``pattern``."""
        interval = self.tree.pattern_range(pattern)
        if interval is None:
            return []
        sp, ep = interval
        positions = self._suffix_array.array[sp : ep + 1]
        documents = {
            self._concatenation.document_of(int(position)) for position in positions
        }
        # Occurrences that straddle the separator are not real occurrences of
        # the pattern inside a document; filter them out.
        valid = []
        for document in sorted(documents):
            text = self._concatenation.documents[document]
            if pattern in text:
                valid.append(document)
        return valid
