"""Collections of uncertain strings for the string-listing problem (Section 6).

The listing problem asks: given a collection ``D = {d_1, ..., d_D}`` of
uncertain strings and a query ``(p, τ)``, report every string that contains
at least one occurrence of ``p`` with probability greater than ``τ``.
:class:`UncertainStringCollection` is the container the listing index is
built from; it also provides the brute-force answer used as an oracle.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .._validation import check_nonempty_pattern, check_threshold
from ..exceptions import ValidationError
from .uncertain import UncertainString


class UncertainStringCollection:
    """An ordered collection of uncertain strings (documents).

    Parameters
    ----------
    documents:
        The member strings.  Their order defines the document identifiers
        ``0 .. D-1`` used in query answers.
    names:
        Optional per-document names; defaults to each string's own ``name``
        or ``"d{identifier}"``.

    Examples
    --------
    The Figure 2 example collection:

    >>> d1 = UncertainString([
    ...     {"A": 0.4, "B": 0.3, "F": 0.3},
    ...     {"B": 0.3, "L": 0.3, "F": 0.3, "J": 0.1},
    ...     {"F": 0.5, "J": 0.5},
    ... ])
    >>> d2 = UncertainString([
    ...     {"A": 0.6, "C": 0.4},
    ...     {"B": 0.5, "F": 0.3, "J": 0.2},
    ...     {"B": 0.4, "C": 0.3, "E": 0.2, "F": 0.1},
    ... ])
    >>> d3 = UncertainString([
    ...     {"A": 0.4, "F": 0.4, "P": 0.2},
    ...     {"I": 0.3, "L": 0.3, "P": 0.3, "T": 0.1},
    ...     {"A": 1.0},
    ... ])
    >>> collection = UncertainStringCollection([d1, d2, d3])
    >>> collection.matching_documents("BF", 0.1)
    [0]
    """

    def __init__(
        self,
        documents: Sequence[UncertainString],
        *,
        names: Optional[Sequence[str]] = None,
    ):
        if documents is None or len(documents) == 0:
            raise ValidationError("a collection needs at least one document")
        for document in documents:
            if not isinstance(document, UncertainString):
                raise ValidationError(
                    f"collection members must be UncertainString, got {type(document).__name__}"
                )
        self._documents: Tuple[UncertainString, ...] = tuple(documents)
        if names is not None:
            if len(names) != len(documents):
                raise ValidationError(
                    f"got {len(names)} names for {len(documents)} documents"
                )
            self._names = tuple(str(name) for name in names)
        else:
            self._names = tuple(
                document.name if document.name else f"d{identifier}"
                for identifier, document in enumerate(self._documents)
            )

    # -- container protocol ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[UncertainString]:
        return iter(self._documents)

    def __getitem__(self, identifier: int) -> UncertainString:
        return self._documents[identifier]

    def __repr__(self) -> str:
        return (
            f"UncertainStringCollection(documents={len(self)}, "
            f"total_positions={self.total_positions})"
        )

    # -- properties ---------------------------------------------------------------
    @property
    def documents(self) -> Tuple[UncertainString, ...]:
        """The member documents in identifier order."""
        return self._documents

    @property
    def names(self) -> Tuple[str, ...]:
        """Per-document display names."""
        return self._names

    @property
    def total_positions(self) -> int:
        """Total number of positions across all documents (the paper's ``n``)."""
        return sum(len(document) for document in self._documents)

    def name_of(self, identifier: int) -> str:
        """Display name of document ``identifier``."""
        return self._names[identifier]

    def identifier_of(self, name: str) -> int:
        """Identifier of the document named ``name``."""
        try:
            return self._names.index(name)
        except ValueError as exc:
            raise ValidationError(f"no document named {name!r} in the collection") from exc

    # -- brute-force oracle ----------------------------------------------------------
    def matching_documents(self, pattern: str, tau: float) -> List[int]:
        """Identifiers of documents containing ``pattern`` with probability > ``tau``.

        Runs the naive per-document scan the paper argues against
        (Section 1.1); the listing index answers the same query
        output-sensitively.
        """
        check_nonempty_pattern(pattern)
        threshold = check_threshold(tau)
        matches = []
        for identifier, document in enumerate(self._documents):
            if document.matching_positions(pattern, threshold):
                matches.append(identifier)
        return matches

    def document_relevance(self, pattern: str, identifier: int, metric: str = "max") -> float:
        """Relevance of ``pattern`` in one document under a named metric.

        Supported metrics mirror Section 6: ``"max"`` (maximum occurrence
        probability) and ``"or"`` (noisy-OR over all occurrences).
        """
        document = self._documents[identifier]
        probabilities = [
            document.occurrence_probability(pattern, position)
            for position in range(len(document) - len(pattern) + 1)
        ]
        probabilities = [p for p in probabilities if p > 0.0]
        if not probabilities:
            return 0.0
        if metric == "max":
            return max(probabilities)
        if metric == "or":
            if len(probabilities) == 1:
                return probabilities[0]
            total = sum(probabilities)
            product = 1.0
            for probability in probabilities:
                product *= probability
            return total - product
        raise ValidationError(f"unknown relevance metric {metric!r}; expected 'max' or 'or'")

    # -- construction helpers ----------------------------------------------------------
    @classmethod
    def from_tables(
        cls,
        tables: Iterable[Iterable[Dict[str, float]]],
        *,
        normalize: bool = False,
    ) -> "UncertainStringCollection":
        """Build a collection from an iterable of per-document probability tables."""
        documents = [
            UncertainString.from_table(table, normalize=normalize) for table in tables
        ]
        return cls(documents)
