"""JSON-safe manifests for the string types (payload / archive metadata).

The index payloads carry their input string (or collection) inside the
payload ``meta`` so a restored index can re-verify correlated candidates
and expose the original input.  These helpers convert the string types to
and from plain JSON-serializable dictionaries; floats round-trip exactly
(JSON preserves the shortest repr, which Python parses back bit-equal).

Moved here from :mod:`repro.api.persistence` so the :mod:`repro.core`
``to_payload`` / ``from_payload`` implementations — which live *below* the
api layer — can use them without an import cycle.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .collection import UncertainStringCollection
from .correlation import CorrelationModel, CorrelationRule
from .special import SpecialUncertainString
from .uncertain import UncertainString


def correlation_rules_to_manifest(model: CorrelationModel) -> List[Dict[str, Any]]:
    """Serialize a correlation model to a list of JSON-safe rule dicts."""
    return [
        {
            "position": rule.position,
            "character": rule.character,
            "partner_position": rule.partner_position,
            "partner_character": rule.partner_character,
            "probability_if_present": rule.probability_if_present,
            "probability_if_absent": rule.probability_if_absent,
        }
        for rule in model
    ]


def correlation_rules_from_manifest(entries: List[Dict[str, Any]]) -> CorrelationModel:
    """Inverse of :func:`correlation_rules_to_manifest`."""
    return CorrelationModel(CorrelationRule(**entry) for entry in entries)


def uncertain_string_to_manifest(string: UncertainString) -> Dict[str, Any]:
    """Serialize an :class:`UncertainString` (distributions + correlations)."""
    return {
        "type": "uncertain",
        "name": string.name,
        "positions": string.to_table(),
        "correlations": correlation_rules_to_manifest(string.correlations),
    }


def uncertain_string_from_manifest(entry: Dict[str, Any]) -> UncertainString:
    """Inverse of :func:`uncertain_string_to_manifest`."""
    string = UncertainString.from_table(entry["positions"], name=entry.get("name"))
    rules = entry.get("correlations") or []
    if not rules:
        return string
    return UncertainString(
        list(string),
        correlations=correlation_rules_from_manifest(rules),
        name=entry.get("name"),
    )


def special_string_to_manifest(string: SpecialUncertainString) -> Dict[str, Any]:
    """Serialize a :class:`SpecialUncertainString` (text + probabilities)."""
    return {
        "type": "special",
        "name": string.name,
        "text": string.text,
        "probabilities": [float(value) for value in string.probabilities],
    }


def special_string_from_manifest(entry: Dict[str, Any]) -> SpecialUncertainString:
    """Inverse of :func:`special_string_to_manifest`."""
    return SpecialUncertainString.from_characters_and_probabilities(
        entry["text"], entry["probabilities"], name=entry.get("name")
    )


def collection_to_manifest(collection: UncertainStringCollection) -> Dict[str, Any]:
    """Serialize an :class:`UncertainStringCollection` document by document."""
    return {
        "type": "collection",
        "names": [collection.name_of(i) for i in range(len(collection))],
        "documents": [uncertain_string_to_manifest(document) for document in collection],
    }


def collection_from_manifest(entry: Dict[str, Any]) -> UncertainStringCollection:
    """Inverse of :func:`collection_to_manifest`."""
    documents = [uncertain_string_from_manifest(d) for d in entry["documents"]]
    return UncertainStringCollection(documents, names=entry.get("names"))
