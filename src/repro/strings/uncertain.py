"""The general character-level uncertain string model (paper Section 3.1).

An :class:`UncertainString` is a sequence of :class:`PositionDistribution`
objects, optionally carrying a :class:`CorrelationModel`.  It provides exact
probability-of-occurrence computation for deterministic patterns (Section
3.2, including the correlated cases of Section 3.3) and a brute-force
threshold scan that serves as the ground-truth oracle for every index in
:mod:`repro.core`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .._validation import check_nonempty_pattern, check_threshold
from ..exceptions import ValidationError
from .correlation import CorrelationModel
from .distribution import DistributionLike, PositionDistribution


class UncertainString:
    """A character-level uncertain string.

    Parameters
    ----------
    positions:
        Sequence of per-position distributions.  Each entry may be anything
        accepted by :class:`PositionDistribution` (a mapping, a list of
        pairs, a bare character, or another distribution).
    correlations:
        Optional :class:`CorrelationModel` describing dependencies between
        positions (Section 3.3).
    name:
        Optional human-readable identifier (used by collections and reports).

    Examples
    --------
    The string of Figure 1(a):

    >>> s = UncertainString([
    ...     {"a": 0.3, "b": 0.4, "d": 0.3},
    ...     {"a": 0.6, "c": 0.4},
    ...     {"d": 1.0},
    ...     {"a": 0.5, "c": 0.5},
    ...     {"a": 1.0},
    ... ])
    >>> len(s)
    5
    >>> round(s.occurrence_probability("ada", 1), 2)
    0.3
    """

    def __init__(
        self,
        positions: Sequence[DistributionLike],
        *,
        correlations: Optional[CorrelationModel] = None,
        name: Optional[str] = None,
    ):
        if positions is None or len(positions) == 0:
            raise ValidationError("an uncertain string needs at least one position")
        self._positions: Tuple[PositionDistribution, ...] = tuple(
            entry if isinstance(entry, PositionDistribution) else PositionDistribution(entry)
            for entry in positions
        )
        self._correlations = correlations if correlations is not None else CorrelationModel()
        self._correlations.validate_against_length(len(self._positions))
        self.name = name

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_deterministic(cls, text: str, *, name: Optional[str] = None) -> "UncertainString":
        """Build a deterministic uncertain string (every position certain)."""
        if not text:
            raise ValidationError("cannot build an uncertain string from an empty text")
        return cls([PositionDistribution.certain(c) for c in text], name=name)

    @classmethod
    def from_table(
        cls,
        table: Iterable[Dict[str, float]],
        *,
        normalize: bool = False,
        name: Optional[str] = None,
    ) -> "UncertainString":
        """Build from an iterable of ``{character: probability}`` rows."""
        return cls(
            [PositionDistribution(row, normalize=normalize) for row in table], name=name
        )

    # -- container protocol -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._positions)

    def __iter__(self) -> Iterator[PositionDistribution]:
        return iter(self._positions)

    def __getitem__(self, index: int) -> PositionDistribution:
        return self._positions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UncertainString):
            return NotImplemented
        return (
            self._positions == other._positions
            and self._correlations == other._correlations
        )

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"UncertainString(length={len(self)}{label})"

    # -- basic properties ---------------------------------------------------------
    @property
    def positions(self) -> Tuple[PositionDistribution, ...]:
        """The per-position distributions."""
        return self._positions

    @property
    def correlations(self) -> CorrelationModel:
        """The correlation model (possibly empty)."""
        return self._correlations

    @property
    def length(self) -> int:
        """Number of positions (the paper's ``n``)."""
        return len(self._positions)

    @property
    def total_characters(self) -> int:
        """Total number of non-zero-probability characters across positions."""
        return sum(len(d) for d in self._positions)

    @property
    def uncertain_position_count(self) -> int:
        """Number of positions with more than one probable character."""
        return sum(1 for d in self._positions if not d.is_certain)

    @property
    def uncertainty_fraction(self) -> float:
        """Fraction of uncertain positions (the paper's θ)."""
        return self.uncertain_position_count / len(self._positions)

    @property
    def is_deterministic(self) -> bool:
        """True when every position is certain."""
        return self.uncertain_position_count == 0

    def most_likely_string(self) -> str:
        """Deterministic string formed by the most likely character at each position."""
        return "".join(d.most_likely()[0] for d in self._positions)

    def character_probability(self, position: int, character: str) -> float:
        """Marginal probability of ``character`` at ``position``.

        When the character carries a correlation rule, the mixture marginal
        (Case 2 of Section 3.3) is returned.
        """
        base = self._positions[position].probability(character)
        rule = self._correlations.rule_for(position, character)
        if rule is None:
            return base
        partner_probability = self._positions[rule.partner_position].probability(
            rule.partner_character
        )
        return rule.mixture_probability(partner_probability)

    # -- probability of occurrence (Section 3.2 / 3.3) -----------------------------
    def occurrence_probability(self, pattern: str, position: int) -> float:
        """Probability that ``pattern`` occurs starting at ``position``.

        Returns 0.0 when the pattern does not fit or some character has zero
        probability.  Correlation rules are honoured: partners inside the
        matched window condition on the pattern's character, partners outside
        the window contribute their mixture probability.
        """
        return math.exp(self.log_occurrence_probability(pattern, position))

    def log_occurrence_probability(self, pattern: str, position: int) -> float:
        """Natural log of :meth:`occurrence_probability` (``-inf`` when zero)."""
        check_nonempty_pattern(pattern)
        if position < 0 or position + len(pattern) > len(self._positions):
            return float("-inf")
        window_start = position
        window_end = position + len(pattern) - 1

        def chosen_character_at(absolute_position: int) -> str:
            return pattern[absolute_position - window_start]

        def partner_marginal(absolute_position: int, character: str) -> float:
            return self._positions[absolute_position].probability(character)

        total = 0.0
        for offset, character in enumerate(pattern):
            absolute = position + offset
            base = self._positions[absolute].probability(character)
            probability = self._correlations.effective_probability(
                absolute,
                character,
                base,
                window_start=window_start,
                window_end=window_end,
                chosen_character_at=chosen_character_at,
                partner_marginal_probability=partner_marginal,
            )
            if probability <= 0.0:
                return float("-inf")
            total += math.log(probability)
        return total

    def matching_positions(self, pattern: str, tau: float) -> List[int]:
        """All positions where ``pattern`` occurs with probability > ``tau``.

        This is the brute-force scan used as a correctness oracle; the
        indexes in :mod:`repro.core` answer the same query output-sensitively.
        """
        check_nonempty_pattern(pattern)
        threshold = check_threshold(tau)
        log_threshold = math.log(threshold)
        results = []
        for position in range(len(self._positions) - len(pattern) + 1):
            if self.log_occurrence_probability(pattern, position) > log_threshold:
                results.append(position)
        return results

    def max_occurrence_probability(self, pattern: str) -> float:
        """Maximum occurrence probability of ``pattern`` over all positions."""
        check_nonempty_pattern(pattern)
        best = float("-inf")
        for position in range(len(self._positions) - len(pattern) + 1):
            best = max(best, self.log_occurrence_probability(pattern, position))
        return math.exp(best) if best > float("-inf") else 0.0

    # -- slicing / transformation helpers ----------------------------------------
    def slice(self, start: int, stop: int) -> "UncertainString":
        """Return the uncertain substring covering positions ``[start, stop)``.

        Correlation rules whose two endpoints both fall inside the slice are
        carried over (re-indexed); rules crossing the boundary are dropped,
        matching the semantics of evaluating the slice in isolation.
        """
        if start < 0 or stop > len(self._positions) or start >= stop:
            raise ValidationError(
                f"invalid slice [{start}, {stop}) for string of length {len(self._positions)}"
            )
        carried = CorrelationModel()
        for rule in self._correlations:
            if start <= rule.position < stop and start <= rule.partner_position < stop:
                carried.add(
                    type(rule)(
                        rule.position - start,
                        rule.character,
                        rule.partner_position - start,
                        rule.partner_character,
                        rule.probability_if_present,
                        rule.probability_if_absent,
                    )
                )
        return UncertainString(
            self._positions[start:stop], correlations=carried, name=self.name
        )

    def to_table(self) -> List[Dict[str, float]]:
        """Return the string as a list of ``{character: probability}`` rows."""
        return [d.as_dict() for d in self._positions]
