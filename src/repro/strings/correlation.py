"""Character-level correlation between positions of an uncertain string.

Section 3.3 of the paper allows the probability of a character at one
position to depend on whether a specific character occurs at another
position.  A :class:`CorrelationRule` captures one such dependency:

    ``character`` at ``position`` has probability ``probability_if_present``
    when ``partner_character`` occurs at ``partner_position`` and probability
    ``probability_if_absent`` otherwise.

When the partner position lies *inside* the substring window being evaluated
the chosen character at that position determines which branch applies
(paper, Case 1).  When it lies *outside* the window the branch is unknown,
so the probability is the mixture

    ``pr(partner) * p_present + (1 - pr(partner)) * p_absent``

(paper, Case 2).  :class:`CorrelationModel` is a collection of rules with the
lookup helpers the indexes need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .._validation import check_probability
from ..exceptions import CorrelationError


@dataclass(frozen=True)
class CorrelationRule:
    """One correlation dependency between two (position, character) pairs.

    Parameters
    ----------
    position:
        Zero-based position of the dependent character.
    character:
        The dependent character.
    partner_position:
        Zero-based position of the character it depends on.
    partner_character:
        The character whose presence/absence switches the probability.
    probability_if_present:
        Probability of ``character`` at ``position`` when the partner
        character is chosen at the partner position (``pr+`` in the paper).
    probability_if_absent:
        Probability when the partner character is not chosen (``pr-``).

    Examples
    --------
    The Figure 4 example — ``z`` at position 2 depends on ``e`` at position 0:

    >>> rule = CorrelationRule(2, "z", 0, "e", 0.3, 0.4)
    >>> rule.mixture_probability(partner_probability=0.6)
    0.34
    """

    position: int
    character: str
    partner_position: int
    partner_character: str
    probability_if_present: float
    probability_if_absent: float

    def __post_init__(self) -> None:
        if self.position < 0 or self.partner_position < 0:
            raise CorrelationError("correlation rule positions must be non-negative")
        if self.position == self.partner_position:
            raise CorrelationError(
                "a character cannot be correlated with a character at its own position"
            )
        for name in ("character", "partner_character"):
            value = getattr(self, name)
            if not isinstance(value, str) or len(value) != 1:
                raise CorrelationError(f"{name} must be a single character, got {value!r}")
        check_probability(self.probability_if_present, name="probability_if_present")
        check_probability(self.probability_if_absent, name="probability_if_absent")

    def mixture_probability(self, partner_probability: float) -> float:
        """Marginal probability of the dependent character (partner unobserved).

        This is the paper's Case 2 formula:
        ``pr(partner) * pr+ + (1 - pr(partner)) * pr-``.
        """
        partner_probability = check_probability(
            partner_probability, name="partner_probability"
        )
        return (
            partner_probability * self.probability_if_present
            + (1.0 - partner_probability) * self.probability_if_absent
        )

    def conditional_probability(self, partner_present: bool) -> float:
        """Probability of the dependent character given the partner's state."""
        if partner_present:
            return self.probability_if_present
        return self.probability_if_absent


class CorrelationModel:
    """A set of :class:`CorrelationRule` objects attached to one uncertain string.

    The model enforces the restriction (implicit in the paper's index
    construction) that each ``(position, character)`` pair depends on at most
    one partner.

    Parameters
    ----------
    rules:
        Iterable of correlation rules.
    """

    def __init__(self, rules: Iterable[CorrelationRule] = ()):  # noqa: D401
        self._rules: Dict[Tuple[int, str], CorrelationRule] = {}
        for rule in rules:
            self.add(rule)

    # -- construction --------------------------------------------------------
    def add(self, rule: CorrelationRule) -> None:
        """Add one rule, rejecting duplicates for the same (position, character)."""
        if not isinstance(rule, CorrelationRule):
            raise CorrelationError(f"expected a CorrelationRule, got {type(rule).__name__}")
        key = (rule.position, rule.character)
        if key in self._rules:
            raise CorrelationError(
                f"character {rule.character!r} at position {rule.position} already has "
                "a correlation rule; only one partner per character is supported"
            )
        self._rules[key] = rule

    # -- container protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[CorrelationRule]:
        return iter(self._rules.values())

    def __bool__(self) -> bool:
        return bool(self._rules)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CorrelationModel):
            return NotImplemented
        return self._rules == other._rules

    def __repr__(self) -> str:
        return f"CorrelationModel({list(self._rules.values())!r})"

    # -- lookups ---------------------------------------------------------------
    def rule_for(self, position: int, character: str) -> Optional[CorrelationRule]:
        """Return the rule governing ``character`` at ``position`` (or None)."""
        return self._rules.get((position, character))

    def rules_in_window(self, start: int, end: int) -> List[CorrelationRule]:
        """Rules whose dependent position lies inside ``[start, end]`` (inclusive)."""
        return [
            rule
            for rule in self._rules.values()
            if start <= rule.position <= end
        ]

    def max_position(self) -> int:
        """Largest position referenced by any rule (``-1`` when empty)."""
        if not self._rules:
            return -1
        return max(
            max(rule.position, rule.partner_position) for rule in self._rules.values()
        )

    def validate_against_length(self, length: int) -> None:
        """Ensure every rule references positions inside a string of ``length``."""
        for rule in self._rules.values():
            if rule.position >= length or rule.partner_position >= length:
                raise CorrelationError(
                    f"correlation rule {rule!r} references a position outside a "
                    f"string of length {length}"
                )

    # -- probability evaluation -------------------------------------------------
    def effective_probability(
        self,
        position: int,
        character: str,
        base_probability: float,
        *,
        window_start: int,
        window_end: int,
        chosen_character_at,
        partner_marginal_probability,
    ) -> float:
        """Probability of ``character`` at ``position`` inside a matched window.

        Parameters
        ----------
        position, character:
            The dependent position/character being evaluated.
        base_probability:
            Probability recorded in the string's distribution, returned
            unchanged when no rule applies.
        window_start, window_end:
            Inclusive bounds of the substring window being matched.
        chosen_character_at:
            Callable mapping an absolute position inside the window to the
            character the candidate match places there (used for Case 1).
        partner_marginal_probability:
            Callable mapping an absolute position and character to that
            character's marginal probability (used for Case 2).
        """
        rule = self.rule_for(position, character)
        if rule is None:
            return base_probability
        if window_start <= rule.partner_position <= window_end:
            chosen = chosen_character_at(rule.partner_position)
            return rule.conditional_probability(chosen == rule.partner_character)
        partner_probability = partner_marginal_probability(
            rule.partner_position, rule.partner_character
        )
        return rule.mixture_probability(partner_probability)
