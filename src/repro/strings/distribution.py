"""Per-position character distributions for uncertain strings.

In the character-level uncertainty model (paper Section 3.1) every position
``i`` of an uncertain string holds a set of ``(character, probability)``
pairs whose probabilities sum to one.  :class:`PositionDistribution` is the
canonical representation of one such set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple, Union

from .._validation import (
    MIN_PROBABILITY,
    PROBABILITY_SUM_TOLERANCE,
    check_probability,
)
from ..exceptions import ValidationError

#: Accepted inputs when building a distribution.
DistributionLike = Union[
    "PositionDistribution",
    str,
    Mapping[str, float],
    Sequence[Tuple[str, float]],
]


@dataclass(frozen=True)
class PositionDistribution:
    """Discrete distribution over characters at one string position.

    Instances are immutable and hashable; characters with zero probability
    are dropped.  Characters are stored in insertion order for reproducible
    iteration, mirroring Figure 1(a) of the paper where each column of the
    table is one :class:`PositionDistribution`.

    Parameters
    ----------
    entries:
        Either a mapping ``{character: probability}``, a sequence of
        ``(character, probability)`` pairs, a bare character (treated as
        certain, probability 1), or another distribution (copied).
    normalize:
        When true, probabilities are rescaled to sum to one instead of
        raising when they do not.

    Examples
    --------
    >>> d = PositionDistribution({"a": 0.3, "b": 0.4, "d": 0.3})
    >>> d.probability("a")
    0.3
    >>> d.most_likely()
    ('b', 0.4)
    >>> PositionDistribution("x").is_certain
    True
    """

    _characters: Tuple[str, ...]
    _probabilities: Tuple[float, ...]

    def __init__(self, entries: DistributionLike, *, normalize: bool = False):
        pairs = list(_coerce_entries(entries))
        if not pairs:
            raise ValidationError("a position distribution needs at least one character")

        characters = []
        probabilities = []
        seen = set()
        for character, probability in pairs:
            if not isinstance(character, str) or len(character) != 1:
                raise ValidationError(
                    f"distribution characters must be single characters, got {character!r}"
                )
            if character in seen:
                raise ValidationError(f"duplicate character {character!r} in distribution")
            seen.add(character)
            if normalize:
                # With normalization enabled, entries are arbitrary
                # non-negative weights that get rescaled below.
                probability = float(probability)
                if not math.isfinite(probability) or probability < 0.0:
                    raise ValidationError(
                        f"weight of {character!r} must be a finite non-negative number, "
                        f"got {probability!r}"
                    )
            else:
                probability = check_probability(
                    probability, name=f"probability of {character!r}"
                )
            if probability < MIN_PROBABILITY:
                continue
            characters.append(character)
            probabilities.append(probability)

        if not characters:
            raise ValidationError("all probabilities in the distribution are zero")

        total = sum(probabilities)
        if normalize:
            probabilities = [p / total for p in probabilities]
        elif abs(total - 1.0) > PROBABILITY_SUM_TOLERANCE:
            raise ValidationError(
                f"position distribution probabilities must sum to 1.0, got {total:.9f} "
                "(pass normalize=True to rescale)"
            )

        object.__setattr__(self, "_characters", tuple(characters))
        object.__setattr__(self, "_probabilities", tuple(probabilities))
        object.__setattr__(
            self, "_lookup", dict(zip(characters, probabilities))
        )

    # -- factory helpers ----------------------------------------------------
    @classmethod
    def certain(cls, character: str) -> "PositionDistribution":
        """Return the deterministic distribution that always emits ``character``."""
        return cls({character: 1.0})

    @classmethod
    def uniform(cls, characters: Sequence[str]) -> "PositionDistribution":
        """Return the uniform distribution over ``characters``."""
        if not characters:
            raise ValidationError("uniform distribution needs at least one character")
        probability = 1.0 / len(characters)
        return cls({c: probability for c in characters})

    # -- container protocol -------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(zip(self._characters, self._probabilities))

    def __len__(self) -> int:
        return len(self._characters)

    def __contains__(self, character: object) -> bool:
        return character in self._lookup  # type: ignore[attr-defined]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PositionDistribution):
            return NotImplemented
        if set(self._characters) != set(other._characters):
            return False
        return all(
            math.isclose(self.probability(c), other.probability(c), abs_tol=1e-12)
            for c in self._characters
        )

    def __hash__(self) -> int:
        return hash(frozenset((c, round(p, 12)) for c, p in self))

    def __repr__(self) -> str:
        inner = ", ".join(f"{c!r}: {p:.3g}" for c, p in self)
        return f"PositionDistribution({{{inner}}})"

    # -- public API ---------------------------------------------------------
    @property
    def characters(self) -> Tuple[str, ...]:
        """Characters with non-zero probability, in insertion order."""
        return self._characters

    @property
    def probabilities(self) -> Tuple[float, ...]:
        """Probabilities aligned with :attr:`characters`."""
        return self._probabilities

    @property
    def is_certain(self) -> bool:
        """True when a single character carries (essentially) all the mass."""
        return len(self._characters) == 1

    @property
    def entropy(self) -> float:
        """Shannon entropy (nats) of the distribution."""
        return -sum(p * math.log(p) for p in self._probabilities if p > 0.0)

    def probability(self, character: str) -> float:
        """Probability of ``character`` at this position (0.0 if absent)."""
        return self._lookup.get(character, 0.0)  # type: ignore[attr-defined]

    def log_probability(self, character: str) -> float:
        """Natural log of :meth:`probability` (``-inf`` for absent characters)."""
        probability = self.probability(character)
        return math.log(probability) if probability > 0.0 else float("-inf")

    def most_likely(self) -> Tuple[str, float]:
        """Return the ``(character, probability)`` pair with maximum probability."""
        best = max(range(len(self._characters)), key=lambda i: self._probabilities[i])
        return self._characters[best], self._probabilities[best]

    def support(self, threshold: float = 0.0) -> Tuple[str, ...]:
        """Characters whose probability strictly exceeds ``threshold``."""
        return tuple(c for c, p in self if p > threshold)

    def as_dict(self) -> Dict[str, float]:
        """Return a plain ``{character: probability}`` dictionary copy."""
        return dict(self._lookup)  # type: ignore[attr-defined]

    def restricted(self, characters: Iterable[str], *, normalize: bool = True) -> "PositionDistribution":
        """Return the distribution restricted to ``characters``.

        Useful for conditioning a position on partial knowledge; by default
        the remaining mass is renormalized.
        """
        subset = {c: self.probability(c) for c in characters if c in self}
        if not subset:
            raise ValidationError("restriction removed every character from the distribution")
        return PositionDistribution(subset, normalize=normalize)


def _coerce_entries(entries: DistributionLike) -> Iterable[Tuple[str, float]]:
    """Normalize the accepted constructor inputs into ``(char, prob)`` pairs."""
    if isinstance(entries, PositionDistribution):
        return list(entries)
    if isinstance(entries, str):
        if len(entries) != 1:
            raise ValidationError(
                f"a bare string distribution must be a single character, got {entries!r}"
            )
        return [(entries, 1.0)]
    if isinstance(entries, Mapping):
        return list(entries.items())
    if isinstance(entries, Sequence):
        return [(character, probability) for character, probability in entries]
    raise ValidationError(
        f"cannot build a PositionDistribution from {type(entries).__name__}"
    )
