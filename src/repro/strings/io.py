"""Serialization for uncertain strings and collections.

Two interchange formats are supported:

* **JSON lines** — one JSON object per document, each a list of
  ``{character: probability}`` rows.  Lossless for anything the library can
  represent (except correlation models, which are application-specific and
  stored separately).
* **FASTQ-like quality imports** — the biological motivation of Section 2:
  a read plus Phred quality scores becomes an uncertain string where each
  base keeps probability ``1 - error`` and the error mass is spread over the
  alternative bases.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, TextIO, Union

from ..exceptions import ValidationError
from .alphabet import Alphabet, dna_alphabet
from .collection import UncertainStringCollection
from .uncertain import UncertainString

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# JSON-lines round-tripping
# ---------------------------------------------------------------------------
def uncertain_string_to_rows(string: UncertainString) -> List[Dict[str, float]]:
    """Return a JSON-serializable list of per-position probability rows."""
    return string.to_table()


def uncertain_string_from_rows(
    rows: Sequence[Dict[str, float]], *, name: Optional[str] = None
) -> UncertainString:
    """Rebuild an uncertain string from :func:`uncertain_string_to_rows` output."""
    return UncertainString.from_table(rows, name=name)


def dump_collection(collection: UncertainStringCollection, destination: PathLike) -> None:
    """Write a collection as JSON lines (one document per line)."""
    path = Path(destination)
    with path.open("w", encoding="utf-8") as handle:
        _dump_collection_to_handle(collection, handle)


def _dump_collection_to_handle(
    collection: UncertainStringCollection, handle: TextIO
) -> None:
    for identifier, document in enumerate(collection):
        record = {
            "name": collection.name_of(identifier),
            "positions": uncertain_string_to_rows(document),
        }
        handle.write(json.dumps(record, sort_keys=True))
        handle.write("\n")


def load_collection(source: PathLike) -> UncertainStringCollection:
    """Load a collection previously written by :func:`dump_collection`."""
    path = Path(source)
    documents: List[UncertainString] = []
    names: List[str] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"line {line_number} of {path} is not valid JSON: {exc}"
                ) from exc
            if "positions" not in record:
                raise ValidationError(
                    f"line {line_number} of {path} is missing the 'positions' key"
                )
            name = record.get("name", f"d{len(documents)}")
            documents.append(uncertain_string_from_rows(record["positions"], name=name))
            names.append(name)
    if not documents:
        raise ValidationError(f"{path} contains no documents")
    return UncertainStringCollection(documents, names=names)


def dump_uncertain_string(string: UncertainString, destination: PathLike) -> None:
    """Write one uncertain string as a single JSON document."""
    path = Path(destination)
    record = {"name": string.name, "positions": uncertain_string_to_rows(string)}
    path.write_text(json.dumps(record, sort_keys=True, indent=2), encoding="utf-8")


def load_uncertain_string(source: PathLike) -> UncertainString:
    """Load an uncertain string written by :func:`dump_uncertain_string`."""
    path = Path(source)
    record = json.loads(path.read_text(encoding="utf-8"))
    if "positions" not in record:
        raise ValidationError(f"{path} is missing the 'positions' key")
    return uncertain_string_from_rows(record["positions"], name=record.get("name"))


# ---------------------------------------------------------------------------
# FASTQ-style quality-score import (biological sequence motivation)
# ---------------------------------------------------------------------------
def phred_to_error_probability(quality: int) -> float:
    """Convert a Phred quality score to a base-calling error probability."""
    if quality < 0:
        raise ValidationError(f"Phred quality scores are non-negative, got {quality}")
    return 10.0 ** (-quality / 10.0)


def uncertain_string_from_read(
    bases: str,
    qualities: Sequence[int],
    *,
    alphabet: Optional[Alphabet] = None,
    name: Optional[str] = None,
) -> UncertainString:
    """Turn a sequencing read plus Phred qualities into an uncertain string.

    Each position keeps the called base with probability ``1 - error`` and
    spreads ``error`` uniformly over the other alphabet symbols — the
    standard way quality scores are interpreted when no substitution matrix
    is available.

    Parameters
    ----------
    bases:
        The called bases (e.g. ``"ACGT..."``).
    qualities:
        Phred scores, one per base.
    alphabet:
        Alphabet used for the alternative bases (defaults to DNA).
    name:
        Optional identifier for the resulting string.
    """
    if len(bases) != len(qualities):
        raise ValidationError(
            f"read has {len(bases)} bases but {len(qualities)} quality scores"
        )
    if not bases:
        raise ValidationError("cannot build an uncertain string from an empty read")
    sigma = alphabet if alphabet is not None else dna_alphabet()
    sigma.validate_string(bases)
    rows: List[Dict[str, float]] = []
    alternatives = sigma.size - 1
    for base, quality in zip(bases, qualities):
        error = phred_to_error_probability(quality)
        row = {base: 1.0 - error}
        if alternatives > 0 and error > 0.0:
            share = error / alternatives
            for symbol in sigma:
                if symbol != base:
                    row[symbol] = share
        rows.append(row)
    return UncertainString.from_table(rows, normalize=True, name=name)


def parse_fastq(
    lines: Iterable[str], *, alphabet: Optional[Alphabet] = None
) -> Iterator[UncertainString]:
    """Parse FASTQ records into uncertain strings.

    Accepts an iterable of lines (so it works with open file handles and
    in-memory strings alike).  Quality characters use the Sanger encoding
    (ASCII offset 33).
    """
    buffered = [line.rstrip("\n") for line in lines if line.strip()]
    if len(buffered) % 4 != 0:
        raise ValidationError(
            f"FASTQ input must contain a multiple of 4 non-empty lines, got {len(buffered)}"
        )
    for record_start in range(0, len(buffered), 4):
        header, bases, separator, quality_text = buffered[record_start : record_start + 4]
        if not header.startswith("@"):
            raise ValidationError(f"FASTQ header must start with '@', got {header!r}")
        if not separator.startswith("+"):
            raise ValidationError(f"FASTQ separator must start with '+', got {separator!r}")
        if len(bases) != len(quality_text):
            raise ValidationError(
                f"FASTQ record {header!r} has mismatched sequence/quality lengths"
            )
        qualities = [ord(symbol) - 33 for symbol in quality_text]
        yield uncertain_string_from_read(
            bases, qualities, alphabet=alphabet, name=header[1:].strip() or None
        )


def load_fastq(source: PathLike, *, alphabet: Optional[Alphabet] = None) -> UncertainStringCollection:
    """Load a FASTQ file as a collection of uncertain strings."""
    path = Path(source)
    with path.open("r", encoding="utf-8") as handle:
        documents = list(parse_fastq(handle, alphabet=alphabet))
    if not documents:
        raise ValidationError(f"{path} contains no FASTQ records")
    return UncertainStringCollection(documents)
