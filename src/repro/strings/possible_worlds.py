"""Possible-world semantics for uncertain strings (paper Section 1, Figure 1).

An uncertain string of length ``n`` generates a deterministic string (a
*possible world*) by picking one character per position; the world's
probability is the product of the chosen characters' probabilities.  The
number of worlds grows exponentially with ``n``, so these helpers are only
meant for small strings — they are the ground-truth oracle used by the test
suite, not part of any index.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Iterator, List, Optional

from .._validation import check_threshold
from ..exceptions import ValidationError
from .uncertain import UncertainString

#: Safety cap on exhaustive enumeration; beyond this the combinatorial
#: explosion makes enumeration pointless and the caller almost certainly
#: wanted one of the indexes instead.
MAX_ENUMERATED_WORLDS = 2_000_000


@dataclass(frozen=True)
class PossibleWorld:
    """One deterministic realization of an uncertain string."""

    string: str
    probability: float

    def __lt__(self, other: "PossibleWorld") -> bool:
        return (self.probability, self.string) < (other.probability, other.string)


def world_count(string: UncertainString) -> int:
    """Number of possible worlds (product of per-position support sizes)."""
    count = 1
    for distribution in string:
        count *= len(distribution)
    return count


def enumerate_worlds(
    string: UncertainString,
    *,
    tau: Optional[float] = None,
    limit: int = MAX_ENUMERATED_WORLDS,
) -> Iterator[PossibleWorld]:
    """Yield every possible world of ``string`` (optionally above ``tau``).

    Correlation rules are honoured by re-evaluating each world's probability
    through :meth:`UncertainString.log_occurrence_probability`, which applies
    Case 1 of the correlation semantics because the whole string is the
    window.

    Parameters
    ----------
    string:
        The uncertain string to enumerate.
    tau:
        When given, only worlds with probability > ``tau`` are yielded.
    limit:
        Hard cap on the number of worlds inspected.

    Raises
    ------
    ValidationError
        If the world count exceeds ``limit``.
    """
    total = world_count(string)
    if total > limit:
        raise ValidationError(
            f"refusing to enumerate {total} possible worlds (limit {limit}); "
            "use an index for strings of this size"
        )
    threshold = None if tau is None else check_threshold(tau)
    supports = [distribution.characters for distribution in string]
    for combination in itertools.product(*supports):
        world = "".join(combination)
        log_probability = string.log_occurrence_probability(world, 0)
        probability = math.exp(log_probability) if log_probability > float("-inf") else 0.0
        if probability <= 0.0:
            continue
        if threshold is not None and probability <= threshold:
            continue
        yield PossibleWorld(world, probability)


def all_worlds(string: UncertainString, *, tau: Optional[float] = None) -> List[PossibleWorld]:
    """Materialize :func:`enumerate_worlds`, sorted by decreasing probability."""
    worlds = sorted(enumerate_worlds(string, tau=tau), reverse=True)
    return worlds


def top_k_worlds(string: UncertainString, k: int) -> List[PossibleWorld]:
    """Return the ``k`` most probable worlds without materializing all of them.

    Uses a best-first expansion over positions: the frontier stores partial
    prefixes ordered by (upper bound of) achievable probability.  Correlation
    is handled by re-scoring complete worlds exactly.
    """
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    n = len(string)
    # Max achievable probability of the remaining suffix, per position.
    suffix_best = [1.0] * (n + 1)
    for index in range(n - 1, -1, -1):
        suffix_best[index] = suffix_best[index + 1] * string[index].most_likely()[1]

    # Heap entries: (-upper_bound, prefix string, prefix probability).
    heap = [(-suffix_best[0], "", 1.0)]
    results: List[PossibleWorld] = []
    while heap and len(results) < k:
        negative_bound, prefix, prefix_probability = heapq.heappop(heap)
        depth = len(prefix)
        if depth == n:
            exact = math.exp(string.log_occurrence_probability(prefix, 0))
            if exact > 0.0:
                results.append(PossibleWorld(prefix, exact))
            continue
        for character, probability in string[depth]:
            new_probability = prefix_probability * probability
            if new_probability <= 0.0:
                continue
            bound = new_probability * suffix_best[depth + 1]
            heapq.heappush(heap, (-bound, prefix + character, new_probability))
    return results


def substring_occurrence_probability_by_worlds(
    string: UncertainString, pattern: str, position: int
) -> float:
    """Occurrence probability computed by summing over full possible worlds.

    Exponentially slow; exists purely to cross-check
    :meth:`UncertainString.occurrence_probability` in the test suite.  The
    sum of world probabilities in which ``pattern`` occupies positions
    ``position .. position+len(pattern)-1`` equals the partial product of
    the pattern's character probabilities.
    """
    total = 0.0
    for world in enumerate_worlds(string):
        if world.string[position : position + len(pattern)] == pattern:
            total += world.probability
    return total
