"""Uncertain-string data model (character-level uncertainty, Section 3)."""

from .alphabet import (
    Alphabet,
    DNA_SYMBOLS,
    ECG_SYMBOLS,
    PROTEIN_SYMBOLS,
    dna_alphabet,
    ecg_alphabet,
    protein_alphabet,
)
from .collection import UncertainStringCollection
from .correlation import CorrelationModel, CorrelationRule
from .distribution import PositionDistribution
from .possible_worlds import (
    PossibleWorld,
    all_worlds,
    enumerate_worlds,
    top_k_worlds,
    world_count,
)
from .special import SpecialPosition, SpecialUncertainString
from .uncertain import UncertainString

__all__ = [
    "Alphabet",
    "CorrelationModel",
    "CorrelationRule",
    "DNA_SYMBOLS",
    "ECG_SYMBOLS",
    "PROTEIN_SYMBOLS",
    "PositionDistribution",
    "PossibleWorld",
    "SpecialPosition",
    "SpecialUncertainString",
    "UncertainString",
    "UncertainStringCollection",
    "all_worlds",
    "dna_alphabet",
    "ecg_alphabet",
    "enumerate_worlds",
    "protein_alphabet",
    "top_k_worlds",
    "world_count",
]
