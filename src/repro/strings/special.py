"""Special uncertain strings (paper Section 4, Definition 1).

A *special* uncertain string has exactly one probable character per position,
each with a non-zero probability of occurrence.  It is the form produced by
the maximal-factor transformation of Section 5.1 and the form the efficient
RMQ-based index of Section 4.2 is built over.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import check_nonempty_pattern, check_probability, check_threshold
from ..exceptions import ValidationError
from .uncertain import UncertainString


@dataclass(frozen=True)
class SpecialPosition:
    """One ``(character, probability)`` pair of a special uncertain string."""

    character: str
    probability: float

    def __post_init__(self) -> None:
        if not isinstance(self.character, str) or len(self.character) != 1:
            raise ValidationError(
                f"special position character must be a single character, got {self.character!r}"
            )
        probability = check_probability(self.probability, name="probability")
        if probability <= 0.0:
            raise ValidationError(
                "special uncertain string probabilities must be strictly positive"
            )
        object.__setattr__(self, "probability", probability)


class SpecialUncertainString:
    """An uncertain string with a single probable character per position.

    Parameters
    ----------
    pairs:
        Sequence of ``(character, probability)`` pairs or
        :class:`SpecialPosition` instances.
    name:
        Optional identifier.

    Examples
    --------
    The banana example of Figure 5:

    >>> x = SpecialUncertainString([
    ...     ("b", 0.4), ("a", 0.7), ("n", 0.5), ("a", 0.8), ("n", 0.9), ("a", 0.6),
    ... ])
    >>> x.text
    'banana'
    >>> round(x.occurrence_probability("ana", 3), 3)
    0.432
    """

    def __init__(
        self,
        pairs: Sequence[Union[SpecialPosition, Tuple[str, float]]],
        *,
        name: Optional[str] = None,
    ):
        if pairs is None or len(pairs) == 0:
            raise ValidationError("a special uncertain string needs at least one position")
        positions: List[SpecialPosition] = []
        for pair in pairs:
            if isinstance(pair, SpecialPosition):
                positions.append(pair)
            else:
                character, probability = pair
                positions.append(SpecialPosition(character, probability))
        self._positions: Tuple[SpecialPosition, ...] = tuple(positions)
        self._text = "".join(p.character for p in self._positions)
        self._probabilities = np.array([p.probability for p in self._positions], dtype=np.float64)
        self.name = name

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_characters_and_probabilities(
        cls,
        characters: str,
        probabilities: Iterable[float],
        *,
        name: Optional[str] = None,
    ) -> "SpecialUncertainString":
        """Build from a character string plus a parallel probability sequence."""
        probability_list = list(probabilities)
        if len(characters) != len(probability_list):
            raise ValidationError(
                "characters and probabilities must have the same length "
                f"({len(characters)} vs {len(probability_list)})"
            )
        return cls(list(zip(characters, probability_list)), name=name)

    @classmethod
    def from_deterministic(cls, text: str, *, name: Optional[str] = None) -> "SpecialUncertainString":
        """Build a special uncertain string where every character is certain."""
        if not text:
            raise ValidationError("cannot build a special uncertain string from empty text")
        return cls([(c, 1.0) for c in text], name=name)

    # -- container protocol -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._positions)

    def __iter__(self) -> Iterator[SpecialPosition]:
        return iter(self._positions)

    def __getitem__(self, index: int) -> SpecialPosition:
        return self._positions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpecialUncertainString):
            return NotImplemented
        return self._text == other._text and np.allclose(
            self._probabilities, other._probabilities
        )

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"SpecialUncertainString(length={len(self)}{label})"

    # -- basic properties --------------------------------------------------------
    @property
    def text(self) -> str:
        """The underlying deterministic character string ``t``."""
        return self._text

    @property
    def probabilities(self) -> np.ndarray:
        """Per-position probabilities as a read-only numpy array."""
        view = self._probabilities.view()
        view.flags.writeable = False
        return view

    @property
    def length(self) -> int:
        """Number of positions."""
        return len(self._positions)

    # -- probability computation ---------------------------------------------------
    def log_probabilities(self) -> np.ndarray:
        """Natural log of the per-position probabilities."""
        return np.log(self._probabilities)

    def occurrence_probability(self, pattern: str, position: int) -> float:
        """Probability that ``pattern`` occurs at ``position``.

        The characters must match exactly (this is a special string, each
        position has a single character) and the probability is the product
        of the per-position probabilities (Section 3.2).
        """
        check_nonempty_pattern(pattern)
        if position < 0 or position + len(pattern) > len(self._positions):
            return 0.0
        if self._text[position : position + len(pattern)] != pattern:
            return 0.0
        return float(np.prod(self._probabilities[position : position + len(pattern)]))

    def window_probability(self, position: int, length: int) -> float:
        """Probability of the length-``length`` window starting at ``position``."""
        if position < 0 or length <= 0 or position + length > len(self._positions):
            return 0.0
        return float(np.prod(self._probabilities[position : position + length]))

    def matching_positions(self, pattern: str, tau: float) -> List[int]:
        """Brute-force scan for occurrences with probability > ``tau``."""
        check_nonempty_pattern(pattern)
        threshold = check_threshold(tau)
        results = []
        for position in range(len(self._positions) - len(pattern) + 1):
            if self._text[position : position + len(pattern)] != pattern:
                continue
            if self.occurrence_probability(pattern, position) > threshold:
                results.append(position)
        return results

    # -- slicing --------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "SpecialUncertainString":
        """Return the special uncertain substring covering positions ``[start, stop)``.

        Positions are independent, so the slice answers any query over its
        window exactly as the full string does — the property chunked
        sharding relies on (mirrors :meth:`UncertainString.slice`).
        """
        if start < 0 or stop > len(self._positions) or start >= stop:
            raise ValidationError(
                f"invalid slice [{start}, {stop}) for string of length {len(self._positions)}"
            )
        return SpecialUncertainString(self._positions[start:stop], name=self.name)

    # -- conversions ----------------------------------------------------------------
    def to_uncertain_string(self) -> UncertainString:
        """Lift to a general :class:`UncertainString`.

        Positions with probability < 1 receive a synthetic complement
        character ``"\\x00"`` absorbing the leftover mass so that the result
        is a valid distribution; the complement never matches any query
        pattern drawn from a real alphabet.
        """
        rows = []
        for position in self._positions:
            if math.isclose(position.probability, 1.0, abs_tol=1e-12):
                rows.append({position.character: 1.0})
            else:
                rows.append(
                    {
                        position.character: position.probability,
                        "\x00": 1.0 - position.probability,
                    }
                )
        return UncertainString.from_table(rows, name=self.name)
