"""Alphabet definitions and helpers.

The paper evaluates on protein sequences (alphabet size 22 once ambiguity
codes are included) and motivates the work with DNA, ECG annotation symbols
and RFID event streams.  An :class:`Alphabet` is a lightweight, immutable
ordered set of single-character symbols with validation helpers; indexes do
not require one, but data generators and parsers use them to keep inputs
consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Tuple

from ..exceptions import AlphabetError

#: The 20 standard amino acids plus ``B`` (Asx) and ``Z`` (Glx), giving the
#: alphabet size of 22 used in the paper's experiments (Section 8.1).
PROTEIN_SYMBOLS: Tuple[str, ...] = tuple("ACDEFGHIKLMNPQRSTVWYBZ")

#: Canonical DNA bases.
DNA_SYMBOLS: Tuple[str, ...] = tuple("ACGT")

#: ECG annotation symbols from the Holter-monitor motivation (Section 2):
#: Normal, Left/Right bundle branch block, Atrial premature, premature
#: Ventricular contraction, Fusion, Junctional and Unknown beats.
ECG_SYMBOLS: Tuple[str, ...] = tuple("NLRAVFJU")


@dataclass(frozen=True)
class Alphabet:
    """An immutable, ordered alphabet of single-character symbols.

    Parameters
    ----------
    symbols:
        Iterable of distinct single-character strings.  Order is preserved
        and used by data generators for reproducibility.

    Examples
    --------
    >>> sigma = Alphabet("ACGT")
    >>> sigma.size
    4
    >>> sigma.index("G")
    2
    >>> "T" in sigma
    True
    """

    symbols: Tuple[str, ...] = field(default=PROTEIN_SYMBOLS)

    def __init__(self, symbols: Iterable[str] = PROTEIN_SYMBOLS):
        seen = []
        seen_set = set()
        for symbol in symbols:
            if not isinstance(symbol, str) or len(symbol) != 1:
                raise AlphabetError(
                    f"alphabet symbols must be single characters, got {symbol!r}"
                )
            if symbol in seen_set:
                raise AlphabetError(f"duplicate symbol {symbol!r} in alphabet")
            seen.append(symbol)
            seen_set.add(symbol)
        if not seen:
            raise AlphabetError("alphabet must contain at least one symbol")
        object.__setattr__(self, "symbols", tuple(seen))
        object.__setattr__(self, "_index", {s: i for i, s in enumerate(seen)})

    # -- container protocol -------------------------------------------------
    def __contains__(self, symbol: object) -> bool:
        return symbol in self._index  # type: ignore[attr-defined]

    def __iter__(self) -> Iterator[str]:
        return iter(self.symbols)

    def __len__(self) -> int:
        return len(self.symbols)

    # -- public API ---------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of symbols in the alphabet."""
        return len(self.symbols)

    def index(self, symbol: str) -> int:
        """Return the rank of ``symbol`` within the alphabet.

        Raises
        ------
        AlphabetError
            If ``symbol`` is not part of the alphabet.
        """
        try:
            return self._index[symbol]  # type: ignore[attr-defined]
        except KeyError as exc:
            raise AlphabetError(f"symbol {symbol!r} is not in the alphabet") from exc

    def validate_string(self, text: str) -> str:
        """Validate that every character of ``text`` belongs to the alphabet."""
        for position, character in enumerate(text):
            if character not in self:
                raise AlphabetError(
                    f"character {character!r} at position {position} is not in "
                    f"the alphabet {''.join(self.symbols)!r}"
                )
        return text


def protein_alphabet() -> Alphabet:
    """Return the 22-symbol protein alphabet used by the paper's dataset."""
    return Alphabet(PROTEIN_SYMBOLS)


def dna_alphabet() -> Alphabet:
    """Return the 4-symbol DNA alphabet."""
    return Alphabet(DNA_SYMBOLS)


def ecg_alphabet() -> Alphabet:
    """Return the ECG heartbeat-annotation alphabet (Holter-monitor example)."""
    return Alphabet(ECG_SYMBOLS)
