"""Cumulative probability arrays (the paper's ``C`` and ``C_i`` arrays).

Section 4.2 defines

* ``C[j]``      — the successive multiplicative probability of the first
  ``j`` characters of the deterministic text ``t``, and
* ``C_i[j]``    — the probability of the length-``i`` prefix of the ``j``-th
  lexicographically smallest suffix, i.e. ``C[A[j]+i-1] / C[A[j]-1]``.

Working with raw products underflows IEEE doubles for long windows, so this
module stores **natural-log** probabilities throughout: ``C`` becomes a
prefix-sum array of log probabilities and the ratio becomes a difference.
Every index converts back to plain probabilities at its public boundary.

The correlation adjustment of Algorithm 1 (dividing out ``pr+`` and
multiplying the corrected probability back in) is implemented by
:func:`apply_correlation_adjustment`.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .._validation import log_probability
from ..exceptions import ValidationError
from ..strings.correlation import CorrelationModel

#: Value used for "no valid window" entries (window runs past the end of the
#: text or was removed by duplicate elimination).
NEGATIVE_INFINITY = float("-inf")


def cumulative_log_probabilities(probabilities: Sequence[float]) -> np.ndarray:
    """Prefix sums of log probabilities (the log-space ``C`` array).

    Returns an array ``C`` of length ``n + 1`` with ``C[0] = 0`` and
    ``C[j] = sum(log p_1 .. log p_j)``, so the log probability of the window
    ``[i, i+k)`` is ``C[i+k] - C[i]``.

    Zero probabilities map to ``-inf``; any window containing one then has
    log probability ``-inf`` as expected.
    """
    array = np.asarray(probabilities, dtype=np.float64)
    if array.ndim != 1:
        raise ValidationError(
            f"probabilities must be one-dimensional, got shape {array.shape}"
        )
    if len(array) == 0:
        raise ValidationError("cannot build cumulative probabilities over an empty array")
    if np.any(array < 0.0) or np.any(array > 1.0 + 1e-12):
        raise ValidationError("probabilities must lie in [0, 1]")
    with np.errstate(divide="ignore"):
        logs = np.log(array)
    prefix = np.empty(len(array) + 1, dtype=np.float64)
    prefix[0] = 0.0
    np.cumsum(logs, out=prefix[1:])
    return prefix


def window_log_probability(prefix: np.ndarray, position: int, length: int) -> float:
    """Log probability of the length-``length`` window starting at ``position``."""
    if position < 0 or length <= 0 or position + length > len(prefix) - 1:
        return NEGATIVE_INFINITY
    return float(prefix[position + length] - prefix[position])


def prefix_length_log_probabilities(
    prefix: np.ndarray,
    suffix_array: np.ndarray,
    length: int,
) -> np.ndarray:
    """The log-space ``C_length`` array over lexicographic ranks.

    Entry ``j`` holds the log probability of the length-``length`` prefix of
    the suffix with lexicographic rank ``j``; suffixes shorter than
    ``length`` get ``-inf``.

    Parameters
    ----------
    prefix:
        Output of :func:`cumulative_log_probabilities` (length ``n + 1``).
    suffix_array:
        Suffix array of the text the probabilities belong to.
    length:
        Window length ``i``.
    """
    if length <= 0:
        raise ValidationError(f"window length must be positive, got {length}")
    suffix_array = np.asarray(suffix_array, dtype=np.int64)
    text_length = len(prefix) - 1
    ends = suffix_array + length
    values = np.full(len(suffix_array), NEGATIVE_INFINITY, dtype=np.float64)
    in_range = ends <= text_length
    values[in_range] = prefix[ends[in_range]] - prefix[suffix_array[in_range]]
    return values


def apply_correlation_adjustment(
    values: np.ndarray,
    suffix_array: np.ndarray,
    length: int,
    correlations: Optional[CorrelationModel],
    text: str,
    base_probabilities: np.ndarray,
) -> np.ndarray:
    """Adjust a ``C_i`` array for correlated characters (Algorithm 1).

    The special uncertain string stores, for a correlated character, its
    ``pr+`` probability (probability when the partner character is present).
    For every window that contains a correlated position, the stored value
    must be replaced by

    * ``pr+`` / ``pr-`` depending on the partner character when the partner
      position falls **inside** the window (paper Case 1), or
    * the mixture ``pr(partner)·pr+ + (1-pr(partner))·pr-`` when the partner
      position falls **outside** the window (paper Case 2).

    Because the text of a special uncertain string fixes the character at
    every position, "partner present" simply means the text spells the
    partner character at the partner position.

    Parameters
    ----------
    values:
        The log-space ``C_length`` array (modified copy is returned).
    suffix_array:
        Suffix array of the text.
    length:
        Window length ``i`` the array was computed for.
    correlations:
        The correlation model (may be ``None``/empty → values returned as-is).
    text:
        Deterministic text of the special uncertain string.
    base_probabilities:
        Per-position probabilities stored in the string (``pr+`` for
        correlated characters).
    """
    if not correlations:
        return values
    adjusted = values.copy()
    suffix_array = np.asarray(suffix_array, dtype=np.int64)
    rank_of = np.empty(len(suffix_array), dtype=np.int64)
    rank_of[suffix_array] = np.arange(len(suffix_array))
    text_length = len(text)

    for rule in correlations:
        position = rule.position
        if position >= text_length or text[position] != rule.character:
            # The rule talks about a character the text does not even spell
            # at that position; it can never influence a window value.
            continue
        stored = float(base_probabilities[position])
        stored_log = log_probability(stored)
        # Pre-compute the two possible corrected probabilities.
        partner_matches_text = (
            rule.partner_position < text_length
            and text[rule.partner_position] == rule.partner_character
        )
        inside_probability = rule.conditional_probability(partner_matches_text)
        partner_marginal = (
            float(base_probabilities[rule.partner_position]) if partner_matches_text else 0.0
        )
        outside_probability = rule.mixture_probability(partner_marginal)

        # Windows of length `length` containing `position` start in
        # [position - length + 1, position].
        first_start = max(0, position - length + 1)
        for start in range(first_start, position + 1):
            if start + length > text_length:
                continue
            rank = int(rank_of[start])
            if not np.isfinite(adjusted[rank]):
                continue
            window_end = start + length - 1
            partner_inside = start <= rule.partner_position <= window_end
            corrected = inside_probability if partner_inside else outside_probability
            corrected_log = log_probability(corrected)
            adjusted[rank] = adjusted[rank] - stored_log + corrected_log
    return adjusted


def correlation_adjusted_window_log_probability(
    prefix: np.ndarray,
    position: int,
    length: int,
    correlations: Optional[CorrelationModel],
    text: str,
    base_probabilities: np.ndarray,
) -> float:
    """Log probability of one window with correlation rules applied.

    Scalar counterpart of :func:`apply_correlation_adjustment`, used by the
    simple (scanning) index and by query-time re-validation.
    """
    value = window_log_probability(prefix, position, length)
    if not correlations or not math.isfinite(value):
        return value
    window_end = position + length - 1
    for rule in correlations.rules_in_window(position, window_end):
        if rule.position >= len(text) or text[rule.position] != rule.character:
            continue
        stored_log = log_probability(float(base_probabilities[rule.position]))
        partner_matches_text = (
            rule.partner_position < len(text)
            and text[rule.partner_position] == rule.partner_character
        )
        if position <= rule.partner_position <= window_end:
            corrected = rule.conditional_probability(partner_matches_text)
        else:
            marginal = (
                float(base_probabilities[rule.partner_position])
                if partner_matches_text
                else 0.0
            )
            corrected = rule.mixture_probability(marginal)
        value = value - stored_log + log_probability(corrected)
    return value
