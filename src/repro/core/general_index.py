"""Substring searching in general uncertain strings (paper Section 5).

The index is built in three steps (Algorithm 3):

1. transform the general uncertain string into a special one by
   concatenating its maximal factors w.r.t. ``τ_min`` (Lemma 2), keeping the
   ``Pos`` array that maps transformed positions back to original positions;
2. build the suffix array, the cumulative probability array ``C`` and the
   per-length arrays ``C_i`` (``i ≤ ⌈log2 N⌉``) over the transformed text,
   eliminating duplicates inside every depth-``i`` locus partition so that
   each original position keeps a single finite entry;
3. build a range-maximum structure over every deduplicated ``C_i``.

A query (Algorithm 4) finds the pattern's suffix range and extracts answers
by recursive range-maximum queries, reporting ``Pos[A[j]]`` for every entry
whose probability exceeds the query threshold — ``O(m + occ)`` for patterns
of length up to ``log N``.  Longer patterns use the paper's blocking scheme
when a structure for that length was materialized and otherwise fall back to
a vectorized scan of the suffix range (identical answers, see DESIGN.md).

Correlated strings are supported: the transformation stores optimistic
(upper-bound) probabilities for correlated characters and every candidate is
re-verified against the original string before being reported, so pruning
never loses an answer and nothing wrong is ever reported.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Literal, Optional, Tuple

import numpy as np

from .._validation import check_nonempty_pattern, check_threshold
from ..exceptions import PatternTooLongError, ValidationError
from ..payload import IndexPayload, expect_schema
from ..strings.serialization import (
    uncertain_string_from_manifest,
    uncertain_string_to_manifest,
)
from ..strings.uncertain import UncertainString
from ..suffix.lcp import build_lcp_array
from ..suffix.pattern_search import suffix_range
from ..suffix.rmq import make_rmq, rmq_to_payload
from ..suffix.suffix_array import SuffixArray
from .base import (
    Occurrence,
    UncertainSubstringIndex,
    blocked_candidate_ranks,
    occurrences_from_log_values,
    report_above_threshold,
    resolve_tau,
    restore_child_rmq,
    sort_occurrences,
    top_values_above_threshold,
)
from .cumulative import NEGATIVE_INFINITY, cumulative_log_probabilities
from .factors import DEFAULT_SEPARATOR, TransformedString, transform_uncertain_string

LongPatternMode = Literal["fallback", "block", "error"]

#: Payload schema of this index kind (see :mod:`repro.payload`).
GENERAL_INDEX_SCHEMA = "index/general"


def partition_identifiers(lcp: np.ndarray, prefix_length: int) -> np.ndarray:
    """Assign every lexicographic rank to its depth-``prefix_length`` partition.

    Two adjacent ranks share a partition exactly when the LCP between them is
    at least ``prefix_length`` (the partitions are the suffix ranges of the
    paper's ``L_i`` locus nodes).
    """
    if prefix_length <= 0:
        raise ValidationError(f"prefix_length must be positive, got {prefix_length}")
    boundaries = (lcp < prefix_length).astype(np.int64)
    boundaries[0] = 0
    return np.cumsum(boundaries)


def deduplicate_by_position(
    values: np.ndarray,
    partition_ids: np.ndarray,
    original_positions: np.ndarray,
) -> np.ndarray:
    """Keep one finite entry per (partition, original position) pair.

    All other copies are set to ``-inf`` so that the recursive RMQ reporting
    never returns the same original position twice for one query
    (Section 5.2's duplicate elimination).  Entries whose original position
    is ``-1`` (separator positions) are masked outright.
    """
    deduplicated = values.copy()
    separator_mask = original_positions < 0
    deduplicated[separator_mask] = NEGATIVE_INFINITY

    valid = ~separator_mask & np.isfinite(deduplicated)
    if not np.any(valid):
        return deduplicated
    indices = np.flatnonzero(valid)
    keys = (
        partition_ids[indices].astype(np.int64)
        * (int(original_positions.max()) + 2)
        + original_positions[indices].astype(np.int64)
    )
    _, first_indices = np.unique(keys, return_index=True)
    keep = np.zeros(len(indices), dtype=bool)
    keep[first_indices] = True
    deduplicated[indices[~keep]] = NEGATIVE_INFINITY
    return deduplicated


class GeneralUncertainStringIndex(UncertainSubstringIndex):
    """Threshold substring-search index over a general uncertain string.

    Parameters
    ----------
    string:
        The uncertain string to index.
    tau_min:
        Construction-time probability threshold; queries must use
        ``tau >= tau_min``.
    max_short_length:
        Largest pattern length served by the per-length RMQ path
        (default ``⌈log2 N⌉`` where ``N`` is the transformed text length).
    long_lengths:
        Pattern lengths above ``max_short_length`` for which the blocking
        structures are materialized at construction time.
    long_pattern_mode:
        Behaviour for long patterns without a blocking structure:
        ``"fallback"`` (scan, default), ``"block"`` or ``"error"``.
    max_factor_length:
        Optional cap on maximal-factor length (see
        :func:`repro.core.factors.enumerate_maximal_factors`).
    rmq_implementation:
        ``"block"`` (default, linear space — mirrors the paper's succinct
        RMQs) or ``"sparse"`` (O(1) queries, O(N log N) space).
    separator:
        Separator character used between concatenated factors.

    Examples
    --------
    The running example of the paper's appendix (Figure 10):

    >>> from repro.strings import UncertainString
    >>> s = UncertainString([
    ...     {"Q": 0.7, "S": 0.3},
    ...     {"Q": 0.3, "P": 0.7},
    ...     {"P": 1.0},
    ...     {"A": 0.4, "F": 0.3, "P": 0.2, "Q": 0.1},
    ... ])
    >>> index = GeneralUncertainStringIndex(s, tau_min=0.1)
    >>> [(occ.position, round(occ.probability, 2)) for occ in index.query("QP", 0.4)]
    [(0, 0.49)]
    """

    def __init__(
        self,
        string: UncertainString,
        tau_min: float,
        *,
        max_short_length: Optional[int] = None,
        long_lengths: Iterable[int] = (),
        long_pattern_mode: LongPatternMode = "fallback",
        max_factor_length: Optional[int] = None,
        rmq_implementation: Literal["sparse", "block"] = "block",
        separator: str = DEFAULT_SEPARATOR,
    ):
        self._string = string
        self._tau_min = check_threshold(tau_min)
        if long_pattern_mode not in ("fallback", "block", "error"):
            raise ValidationError(
                f"long_pattern_mode must be 'fallback', 'block' or 'error', got {long_pattern_mode!r}"
            )
        self._long_pattern_mode = long_pattern_mode
        self._rmq_implementation = rmq_implementation
        self._needs_verification = bool(string.correlations)

        self._transformed = transform_uncertain_string(
            string,
            self._tau_min,
            max_factor_length=max_factor_length,
            separator=separator,
        )
        transformed = self._transformed
        self._suffix_array = SuffixArray(transformed.text)
        self._lcp = build_lcp_array(transformed.text, self._suffix_array.array)
        self._prefix = cumulative_log_probabilities(transformed.probabilities)
        # Pos / Doc values aligned with lexicographic ranks.
        self._rank_positions = transformed.positions[self._suffix_array.array]

        N = len(transformed.text)
        if max_short_length is None:
            max_short_length = max(1, math.ceil(math.log2(N + 1)))
        self._max_short_length = max(1, min(max_short_length, N))

        self._short_values: Dict[int, np.ndarray] = {}
        self._short_rmq: Dict[int, object] = {}
        for length in range(1, self._max_short_length + 1):
            self._build_short_structure(length)

        self._block_maxima: Dict[int, np.ndarray] = {}
        self._block_values: Dict[int, np.ndarray] = {}
        self._block_rmq: Dict[int, object] = {}
        for length in sorted(set(int(value) for value in long_lengths)):
            if length <= self._max_short_length or length > N:
                continue
            self._build_blocking_structure(length)

    # -- construction helpers ------------------------------------------------------------
    def _windowed_values(self, length: int) -> np.ndarray:
        suffix_array = self._suffix_array.array
        ends = suffix_array + length
        values = np.full(len(suffix_array), NEGATIVE_INFINITY, dtype=np.float64)
        in_range = ends <= len(self._transformed.text)
        values[in_range] = self._prefix[ends[in_range]] - self._prefix[suffix_array[in_range]]
        return values

    def _build_short_structure(self, length: int) -> None:
        values = self._windowed_values(length)
        partitions = partition_identifiers(self._lcp, length)
        values = deduplicate_by_position(values, partitions, self._rank_positions)
        self._short_values[length] = values
        self._short_rmq[length] = make_rmq(
            values, mode="max", implementation=self._rmq_implementation
        )

    def _build_blocking_structure(self, length: int) -> None:
        values = self._windowed_values(length)
        partitions = partition_identifiers(self._lcp, length)
        values = deduplicate_by_position(values, partitions, self._rank_positions)
        n = len(values)
        block_count = (n + length - 1) // length
        maxima = np.full(block_count, NEGATIVE_INFINITY, dtype=np.float64)
        for block in range(block_count):
            start = block * length
            end = min(start + length, n)
            maxima[block] = values[start:end].max()
        self._block_values[length] = values
        self._block_maxima[length] = maxima
        self._block_rmq[length] = make_rmq(
            maxima, mode="max", implementation=self._rmq_implementation
        )

    # -- metadata -------------------------------------------------------------------------
    @property
    def tau_min(self) -> float:
        """Construction-time probability threshold."""
        return self._tau_min

    @property
    def string(self) -> UncertainString:
        """The indexed uncertain string."""
        return self._string

    @property
    def transformed(self) -> TransformedString:
        """The maximal-factor transformation the index is built over."""
        return self._transformed

    @property
    def max_short_length(self) -> int:
        """Largest pattern length served by the per-length RMQ path."""
        return self._max_short_length

    @property
    def block_lengths(self) -> Tuple[int, ...]:
        """Pattern lengths with materialized blocking structures."""
        return tuple(sorted(self._block_maxima))

    @property
    def stats(self) -> Dict[str, float]:
        """Construction statistics (sizes and expansion ratios)."""
        return {
            "source_length": self._transformed.source_length,
            "transformed_length": self._transformed.length,
            "factor_count": self._transformed.factor_count,
            "expansion_ratio": self._transformed.expansion_ratio,
            "max_short_length": self._max_short_length,
            "block_lengths": len(self._block_maxima),
        }

    # -- payload currency ----------------------------------------------------------------
    def to_payload(self) -> IndexPayload:
        """The complete array-schema description of this index."""
        arrays = {
            "suffix_array": self._suffix_array.array,
            "lcp": self._lcp,
            "prefix": self._prefix,
            "rank_positions": self._rank_positions,
        }
        children = {"transformed": self._transformed.to_payload()}
        for length, values in self._short_values.items():
            arrays[f"short_values_{length}"] = values
            children[f"rmq_short_{length}"] = rmq_to_payload(self._short_rmq[length])
        for length in self._block_maxima:
            arrays[f"block_values_{length}"] = self._block_values[length]
            arrays[f"block_maxima_{length}"] = self._block_maxima[length]
            children[f"rmq_block_{length}"] = rmq_to_payload(self._block_rmq[length])
        return IndexPayload(
            schema=GENERAL_INDEX_SCHEMA,
            meta={
                "string": uncertain_string_to_manifest(self._string),
                "tau_min": self._tau_min,
                "max_short_length": self._max_short_length,
                "short_lengths": sorted(self._short_values),
                "block_lengths": sorted(self._block_maxima),
                "long_pattern_mode": self._long_pattern_mode,
                "rmq_implementation": self._rmq_implementation,
            },
            arrays=arrays,
            derived={"suffix_rank": self._suffix_array.rank},
            children=children,
        )

    @classmethod
    def from_payload(cls, payload: IndexPayload) -> "GeneralUncertainStringIndex":
        """Restore an index from :meth:`to_payload` output (no construction)."""
        expect_schema(payload, GENERAL_INDEX_SCHEMA)
        meta = payload.meta
        index = cls.__new__(cls)
        index._string = uncertain_string_from_manifest(meta["string"])
        index._tau_min = float(meta["tau_min"])
        index._long_pattern_mode = meta["long_pattern_mode"]
        index._rmq_implementation = meta["rmq_implementation"]
        index._needs_verification = bool(index._string.correlations)
        index._transformed = TransformedString.from_payload(
            payload.children["transformed"]
        )
        index._suffix_array = SuffixArray(
            index._transformed.text, array=payload.arrays["suffix_array"]
        )
        index._lcp = payload.arrays["lcp"]
        index._prefix = payload.arrays["prefix"]
        index._rank_positions = payload.arrays["rank_positions"]
        index._max_short_length = int(meta["max_short_length"])
        implementation = meta["rmq_implementation"]
        index._short_values = {
            int(length): payload.arrays[f"short_values_{length}"]
            for length in meta["short_lengths"]
        }
        index._short_rmq = {
            length: restore_child_rmq(
                payload, f"rmq_short_{length}", values, implementation=implementation
            )
            for length, values in index._short_values.items()
        }
        index._block_values = {
            int(length): payload.arrays[f"block_values_{length}"]
            for length in meta["block_lengths"]
        }
        index._block_maxima = {
            int(length): payload.arrays[f"block_maxima_{length}"]
            for length in meta["block_lengths"]
        }
        index._block_rmq = {
            length: restore_child_rmq(
                payload, f"rmq_block_{length}", maxima, implementation=implementation
            )
            for length, maxima in index._block_maxima.items()
        }
        return index

    # -- queries ------------------------------------------------------------------------------
    def query(self, pattern: str, tau: float) -> List[Occurrence]:
        """Report original positions where ``pattern`` occurs with probability > ``tau``.

        ``tau`` must be at least ``tau_min``; the answer is identical to the
        brute-force scan :meth:`UncertainString.matching_positions`.
        """
        check_nonempty_pattern(pattern)
        threshold = check_threshold(tau, tau_min=self._tau_min)
        log_threshold = math.log(threshold)
        length = len(pattern)
        if length > len(self._string):
            return []
        interval = suffix_range(
            self._transformed.text, self._suffix_array.array, pattern
        )
        if interval is None:
            return []
        sp, ep = interval

        if length <= self._max_short_length:
            candidates = self._candidates_short(sp, ep, length, log_threshold)
        elif length in self._block_rmq:
            candidates = self._candidates_blocked(sp, ep, length, log_threshold)
        elif self._long_pattern_mode == "fallback":
            candidates = self._candidates_scan(sp, ep, length, log_threshold)
        elif self._long_pattern_mode == "block":
            raise PatternTooLongError(
                f"no blocking structure was built for pattern length {length}; "
                f"available lengths: {self.block_lengths}"
            )
        else:
            raise PatternTooLongError(
                f"pattern length {length} exceeds max_short_length={self._max_short_length}"
            )
        return self._finalize(pattern, *candidates, log_threshold)

    def top_k(self, pattern: str, k: int, *, tau: Optional[float] = None) -> List[Occurrence]:
        """Report the ``k`` most probable occurrences of ``pattern``.

        Occurrences are drawn from those with probability above ``tau``
        (``None`` resolves through :func:`repro.core.base.resolve_tau` to
        ``tau_min`` — the index cannot see anything below its construction
        threshold) and returned in decreasing probability order.  For short
        patterns the answer is extracted with ``O(k)`` heap-driven
        range-maximum probes; long patterns and correlated strings fall back
        to scanning the pattern's suffix range.
        """
        check_nonempty_pattern(pattern)
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        threshold = check_threshold(
            resolve_tau(tau, self._tau_min), tau_min=self._tau_min
        )
        log_threshold = math.log(threshold) - 1e-12
        length = len(pattern)
        if length > len(self._string):
            return []
        interval = suffix_range(
            self._transformed.text, self._suffix_array.array, pattern
        )
        if interval is None:
            return []
        sp, ep = interval

        if (
            length <= self._max_short_length
            and not self._needs_verification
        ):
            values = self._short_values[length]
            rmq = self._short_rmq[length]
            ranks = top_values_above_threshold(
                rmq, values, sp, ep, k, log_threshold, include_ties=True
            )
            occurrences = [
                Occurrence(int(self._rank_positions[rank]), math.exp(float(values[rank])))
                for rank in ranks
            ]
        else:
            candidates = self._candidates_scan(sp, ep, length, log_threshold)
            occurrences = self._finalize(pattern, *candidates, log_threshold)
        occurrences.sort(key=lambda occurrence: (-occurrence.probability, occurrence.position))
        return occurrences[:k]

    # -- candidate generation strategies ----------------------------------------------------------
    # Every strategy returns two parallel arrays — original positions and
    # window log-probabilities, each position exactly once — and candidates
    # only become Occurrence objects at the _finalize boundary.
    def _candidates_short(
        self, sp: int, ep: int, length: int, log_threshold: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        values = self._short_values[length]
        rmq = self._short_rmq[length]
        ranks = report_above_threshold(rmq, values, sp, ep, log_threshold)
        return self._rank_positions[ranks], values[ranks]

    def _candidates_blocked(
        self, sp: int, ep: int, length: int, log_threshold: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        values = self._block_values[length]
        ranks = blocked_candidate_ranks(
            self._block_rmq[length],
            self._block_maxima[length],
            sp,
            ep,
            length,
            log_threshold,
        )
        rank_values = values[ranks]
        keep = rank_values > log_threshold
        return self._deduplicate_candidates(
            self._rank_positions[ranks[keep]], rank_values[keep]
        )

    def _candidates_scan(
        self, sp: int, ep: int, length: int, log_threshold: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Widen before the window arithmetic: compacted payloads restore
        # narrow suffix arrays and ``suffix_array + length`` can exceed
        # their dtype range.  Positions only face comparisons and gathers.
        suffix_array = self._suffix_array.array[sp : ep + 1].astype(np.int64, copy=False)
        positions = self._rank_positions[sp : ep + 1]
        ends = suffix_array + length
        in_range = (ends <= len(self._transformed.text)) & (positions >= 0)
        suffix_array = suffix_array[in_range]
        positions = positions[in_range]
        values = self._prefix[suffix_array + length] - self._prefix[suffix_array]
        keep = values > log_threshold
        return self._deduplicate_candidates(positions[keep], values[keep])

    @staticmethod
    def _deduplicate_candidates(
        positions: np.ndarray, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Different factor copies of the same original position carry the
        # same window value (marginals on the uncorrelated path, optimistic
        # bounds on the correlated one), so keeping the first copy matches
        # the scalar seen-set behaviour.
        unique_positions, first = np.unique(positions, return_index=True)
        return unique_positions, values[first]

    def _finalize(
        self,
        pattern: str,
        positions: np.ndarray,
        values: np.ndarray,
        log_threshold: float,
    ) -> List[Occurrence]:
        if not self._needs_verification:
            return occurrences_from_log_values(positions, values)
        occurrences = []
        for position in positions:
            exact = self._string.log_occurrence_probability(pattern, int(position))
            if exact <= log_threshold:
                continue
            occurrences.append(Occurrence(int(position), math.exp(exact)))
        return sort_occurrences(occurrences)
