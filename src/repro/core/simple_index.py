"""The simple (scanning) index for special uncertain strings (Section 4.1).

This is the paper's baseline index: a suffix array over the deterministic
character string ``t`` of the special uncertain string plus the cumulative
probability array ``C``.  A query finds the pattern's suffix range and then
*scans every element of the range*, validating each occurrence's probability
against the threshold.  Its weakness — time proportional to the number of
deterministic matches rather than the number of probable matches — is
exactly what motivates the RMQ-based efficient index of Section 4.2, and the
two are compared head-to-head in ``benchmarks/bench_baselines.py``.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from .._validation import check_nonempty_pattern, check_threshold
from ..payload import IndexPayload, expect_schema
from ..strings.correlation import CorrelationModel
from ..strings.serialization import (
    correlation_rules_from_manifest,
    correlation_rules_to_manifest,
    special_string_from_manifest,
    special_string_to_manifest,
)
from ..strings.special import SpecialUncertainString
from ..suffix.pattern_search import suffix_range
from ..suffix.suffix_array import SuffixArray
from .base import Occurrence, UncertainSubstringIndex, sort_occurrences
from .cumulative import (
    correlation_adjusted_window_log_probability,
    cumulative_log_probabilities,
)

#: Payload schema of this index kind (see :mod:`repro.payload`).
SIMPLE_INDEX_SCHEMA = "index/simple"


class SimpleSpecialIndex(UncertainSubstringIndex):
    """Suffix-array + cumulative-probability scan index (paper Section 4.1).

    Parameters
    ----------
    string:
        The special uncertain string to index.
    correlations:
        Optional correlation model over the string's positions; handled at
        validation time exactly as described for the naive index.

    Examples
    --------
    >>> from repro.strings import SpecialUncertainString
    >>> x = SpecialUncertainString([
    ...     ("b", 0.4), ("a", 0.7), ("n", 0.5), ("a", 0.8), ("n", 0.9), ("a", 0.6),
    ... ])
    >>> index = SimpleSpecialIndex(x)
    >>> [occ.position for occ in index.query("ana", 0.3)]
    [3]
    """

    def __init__(
        self,
        string: SpecialUncertainString,
        *,
        correlations: Optional[CorrelationModel] = None,
    ):
        self._string = string
        self._correlations = correlations if correlations is not None else CorrelationModel()
        self._correlations.validate_against_length(len(string))
        self._suffix_array = SuffixArray(string.text)
        self._prefix = cumulative_log_probabilities(string.probabilities)

    # -- metadata ------------------------------------------------------------------
    @property
    def tau_min(self) -> float:
        """The simple index supports any positive threshold."""
        return 0.0

    @property
    def string(self) -> SpecialUncertainString:
        """The indexed special uncertain string."""
        return self._string

    @property
    def suffix_array(self) -> SuffixArray:
        """The suffix array over the deterministic character string."""
        return self._suffix_array

    # -- payload currency ---------------------------------------------------------------
    def to_payload(self) -> IndexPayload:
        """The complete array-schema description of this index."""
        return IndexPayload(
            schema=SIMPLE_INDEX_SCHEMA,
            meta={
                "string": special_string_to_manifest(self._string),
                "correlations": correlation_rules_to_manifest(self._correlations),
            },
            arrays={
                "suffix_array": self._suffix_array.array,
                "prefix": self._prefix,
            },
            # The inverse suffix array is a cheap O(n) function of the
            # suffix array; restore recomputes it instead of storing it.
            derived={"suffix_rank": self._suffix_array.rank},
        )

    @classmethod
    def from_payload(cls, payload: IndexPayload) -> "SimpleSpecialIndex":
        """Restore an index from :meth:`to_payload` output (no construction)."""
        expect_schema(payload, SIMPLE_INDEX_SCHEMA)
        index = cls.__new__(cls)
        index._string = special_string_from_manifest(payload.meta["string"])
        index._correlations = correlation_rules_from_manifest(
            payload.meta["correlations"]
        )
        index._suffix_array = SuffixArray(
            index._string.text, array=payload.arrays["suffix_array"]
        )
        index._prefix = payload.arrays["prefix"]
        return index

    # -- queries ----------------------------------------------------------------------
    def query(self, pattern: str, tau: float) -> List[Occurrence]:
        """Report all occurrences of ``pattern`` with probability > ``tau``.

        Runs in time proportional to the number of *deterministic* matches of
        ``pattern`` in the text (plus the suffix-range lookup), validating
        each candidate against the threshold.
        """
        check_nonempty_pattern(pattern)
        threshold = check_threshold(tau)
        interval = suffix_range(self._string.text, self._suffix_array.array, pattern)
        if interval is None:
            return []
        sp, ep = interval
        log_threshold = math.log(threshold)
        length = len(pattern)
        # Widen before the window arithmetic: a compacted suffix array is
        # uint8/16/32 and ``positions + length`` can exceed its dtype range.
        positions = self._suffix_array.array[sp : ep + 1].astype(np.int64, copy=False)

        occurrences: List[Occurrence] = []
        if not self._correlations:
            # Vectorized validation: windows never run past the end inside a
            # valid suffix range (every suffix there has >= m characters).
            values = self._prefix[positions + length] - self._prefix[positions]
            keep = values > log_threshold
            for position, value in zip(positions[keep], values[keep]):
                occurrences.append(Occurrence(int(position), float(np.exp(value))))
            return sort_occurrences(occurrences)

        for position in positions:
            value = correlation_adjusted_window_log_probability(
                self._prefix,
                int(position),
                length,
                self._correlations,
                self._string.text,
                self._string.probabilities,
            )
            if value > log_threshold:
                occurrences.append(Occurrence(int(position), math.exp(value)))
        return sort_occurrences(occurrences)

    def scanned_candidates(self, pattern: str) -> int:
        """Number of suffix-range entries a query for ``pattern`` must scan.

        Exposed for the benchmark harness so the simple-vs-efficient ablation
        can report work done, not just wall-clock time.
        """
        check_nonempty_pattern(pattern)
        interval = suffix_range(self._string.text, self._suffix_array.array, pattern)
        if interval is None:
            return 0
        sp, ep = interval
        return ep - sp + 1
