"""The paper's indexes: substring search, string listing, approximate search."""

from .approximate import ApproximateSubstringIndex, Link
from .base import (
    DEFAULT_TAU_FLOOR,
    ListingMatch,
    Occurrence,
    UncertainSubstringIndex,
    blocked_candidate_ranks,
    expand_ranges,
    listing_matches_from_arrays,
    occurrences_from_log_values,
    report_above_threshold,
    report_above_threshold_scalar,
    resolve_tau,
    sort_listing_matches,
    sort_occurrences,
    top_values_above_threshold,
    top_values_above_threshold_scalar,
    translate_match,
)
from .baseline import BruteForceOracle, OnlineDynamicProgrammingMatcher
from .cumulative import (
    cumulative_log_probabilities,
    prefix_length_log_probabilities,
    window_log_probability,
)
from .factors import (
    MaximalFactor,
    TransformedString,
    enumerate_maximal_factors,
    transform_collection,
    transform_uncertain_string,
)
from .general_index import GeneralUncertainStringIndex
from .listing import UncertainStringListingIndex, combine_relevance
from .simple_index import SimpleSpecialIndex
from .special_index import SpecialUncertainStringIndex

__all__ = [
    "ApproximateSubstringIndex",
    "DEFAULT_TAU_FLOOR",
    "BruteForceOracle",
    "GeneralUncertainStringIndex",
    "Link",
    "ListingMatch",
    "MaximalFactor",
    "Occurrence",
    "OnlineDynamicProgrammingMatcher",
    "SimpleSpecialIndex",
    "SpecialUncertainStringIndex",
    "TransformedString",
    "UncertainStringListingIndex",
    "UncertainSubstringIndex",
    "blocked_candidate_ranks",
    "combine_relevance",
    "cumulative_log_probabilities",
    "enumerate_maximal_factors",
    "expand_ranges",
    "listing_matches_from_arrays",
    "occurrences_from_log_values",
    "prefix_length_log_probabilities",
    "report_above_threshold",
    "report_above_threshold_scalar",
    "resolve_tau",
    "sort_listing_matches",
    "sort_occurrences",
    "top_values_above_threshold",
    "top_values_above_threshold_scalar",
    "transform_collection",
    "transform_uncertain_string",
    "translate_match",
    "window_log_probability",
]
