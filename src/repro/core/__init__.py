"""The paper's indexes: substring search, string listing, approximate search."""

from .approximate import ApproximateSubstringIndex, Link
from .base import (
    ListingMatch,
    Occurrence,
    UncertainSubstringIndex,
    report_above_threshold,
    sort_listing_matches,
    sort_occurrences,
)
from .baseline import BruteForceOracle, OnlineDynamicProgrammingMatcher
from .cumulative import (
    cumulative_log_probabilities,
    prefix_length_log_probabilities,
    window_log_probability,
)
from .factors import (
    MaximalFactor,
    TransformedString,
    enumerate_maximal_factors,
    transform_collection,
    transform_uncertain_string,
)
from .general_index import GeneralUncertainStringIndex
from .listing import UncertainStringListingIndex, combine_relevance
from .simple_index import SimpleSpecialIndex
from .special_index import SpecialUncertainStringIndex

__all__ = [
    "ApproximateSubstringIndex",
    "BruteForceOracle",
    "GeneralUncertainStringIndex",
    "Link",
    "ListingMatch",
    "MaximalFactor",
    "Occurrence",
    "OnlineDynamicProgrammingMatcher",
    "SimpleSpecialIndex",
    "SpecialUncertainStringIndex",
    "TransformedString",
    "UncertainStringListingIndex",
    "UncertainSubstringIndex",
    "combine_relevance",
    "cumulative_log_probabilities",
    "enumerate_maximal_factors",
    "prefix_length_log_probabilities",
    "report_above_threshold",
    "sort_listing_matches",
    "sort_occurrences",
    "transform_collection",
    "transform_uncertain_string",
    "window_log_probability",
]
