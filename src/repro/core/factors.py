"""Maximal factors and the general → special string transformation (Section 5.1).

A *maximal factor* of an uncertain string ``S`` at location ``i`` with
respect to a threshold ``τ_min`` is a deterministic string of maximal length
that, aligned at ``i``, has probability of occurrence at least ``τ_min``
(Definition 2).  Concatenating all maximal factors (with separators) yields a
special uncertain string ``X`` with the *substring conservation property*
(Lemma 2): every substring of ``S`` with occurrence probability ≥ τ_min at
some position appears in ``X`` aligned to a known original position.

The transformation below follows that construction directly:

* factors are enumerated per start position by a depth-first search over
  character choices, pruned as soon as the running probability drops below
  ``τ_min`` — the number of strings explored is exactly the number of valid
  (≥ τ_min) strings, the quantity the paper bounds by ``O((1/τ_min)² · n)``;
* the concatenation keeps a ``Pos`` array mapping every transformed position
  back to its original position (and a ``Doc`` array for collections), which
  the indexes use both to report original positions and to eliminate
  duplicates.

Correlated strings: factor probabilities are computed from the per-position
marginals; for characters governed by a correlation rule the *optimistic*
probability ``max(pr+, pr-)`` is used so that pruning never discards a
factor that could reach ``τ_min`` under some correlation outcome.  Indexes
built over correlated strings re-verify candidate occurrences against the
original string, so this never produces wrong answers (see
``GeneralUncertainStringIndex``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_threshold
from ..exceptions import ConstructionError, ValidationError
from ..payload import IndexPayload, expect_schema
from ..strings.collection import UncertainStringCollection
from ..strings.special import SpecialUncertainString
from ..strings.uncertain import UncertainString

#: Payload schema of a serialized :class:`TransformedString`.
TRANSFORMED_SCHEMA = "transformed"

#: Separator placed between concatenated factors.  ``\x01`` sorts below all
#: printable characters and may not occur in any indexed alphabet.
DEFAULT_SEPARATOR = "\x01"


@dataclass(frozen=True)
class MaximalFactor:
    """One maximal factor of an uncertain string.

    Attributes
    ----------
    start:
        Original starting position of the factor inside its document.
    characters:
        The factor's deterministic character string.
    probabilities:
        Per-character probabilities used when the factor was generated
        (aligned with ``characters``).
    document:
        Document identifier (0 for single-string transformations).
    """

    start: int
    characters: str
    probabilities: Tuple[float, ...]
    document: int = 0

    def __post_init__(self) -> None:
        if len(self.characters) != len(self.probabilities):
            raise ValidationError(
                "factor characters and probabilities must have equal length"
            )
        if not self.characters:
            raise ValidationError("a maximal factor cannot be empty")

    @property
    def length(self) -> int:
        """Number of characters in the factor."""
        return len(self.characters)

    @property
    def probability(self) -> float:
        """Probability of occurrence of the whole factor at its start position."""
        product = 1.0
        for value in self.probabilities:
            product *= value
        return product


def _optimistic_probability(string: UncertainString, position: int, character: str) -> float:
    """Probability used for factor enumeration (upper bound under correlation)."""
    base = string[position].probability(character)
    rule = string.correlations.rule_for(position, character)
    if rule is None:
        return base
    return max(rule.probability_if_present, rule.probability_if_absent)


def enumerate_maximal_factors(
    string: UncertainString,
    tau_min: float,
    *,
    start: Optional[int] = None,
    max_factor_length: Optional[int] = None,
    document: int = 0,
) -> List[MaximalFactor]:
    """Enumerate the maximal factors of ``string`` w.r.t. ``tau_min``.

    Parameters
    ----------
    string:
        The general uncertain string.
    tau_min:
        Construction-time probability threshold (must be in ``(0, 1]``).
    start:
        When given, only factors starting at this position are produced;
        otherwise every start position is processed.
    max_factor_length:
        Optional hard cap on factor length.  Factors are still emitted when
        the cap cuts them short, so the conservation property holds for
        patterns up to the cap.  ``None`` (default) means unbounded.
    document:
        Document identifier recorded on every produced factor.

    Returns
    -------
    list of MaximalFactor
        Factors ordered by start position (and DFS order within a position).
    """
    threshold = check_threshold(tau_min)
    log_threshold = math.log(threshold) - 1e-12
    if max_factor_length is not None and max_factor_length <= 0:
        raise ValidationError(
            f"max_factor_length must be positive, got {max_factor_length}"
        )
    starts: Iterable[int]
    if start is None:
        starts = range(len(string))
    else:
        if start < 0 or start >= len(string):
            raise ValidationError(
                f"start position {start} outside string of length {len(string)}"
            )
        starts = (start,)

    n = len(string)
    # Precompute the per-position character choices (optimistic probability
    # and its log) once: the DFS below revisits positions many times, and the
    # correlation lookup plus math.log per visit dominated construction.
    choices: List[List[Tuple[str, float, float]]] = []
    certain: List[Optional[Tuple[str, float]]] = []
    for position in range(n):
        entries = []
        for character, _base_probability in string[position]:
            effective = _optimistic_probability(string, position, character)
            if effective <= 0.0:
                continue
            entries.append((character, effective, math.log(effective)))
        choices.append(entries)
        # A run of certain characters (a single choice of probability 1)
        # never branches and never prunes: the DFS would walk it one node
        # per position, so such runs are bulk-extended instead.
        if len(entries) == 1 and entries[0][1] == 1.0:
            certain.append((entries[0][0], entries[0][1]))
        else:
            certain.append(None)

    factors: List[MaximalFactor] = []
    for origin in starts:
        # Iterative DFS over character choices; a path is emitted as a factor
        # exactly when it cannot be extended while staying above tau_min.
        # The current path lives in shared buffers indexed by depth —
        # truncated on backtrack — instead of being copied into fresh tuples
        # at every node (which cost O(length²) per factor).
        path_characters: List[str] = []
        path_probabilities: List[float] = []
        # Stack frames: (next position, depth after placing char, running log
        # probability, char, prob); the root frame places no character.
        stack: List[Tuple[int, int, float, Optional[str], float]] = [
            (origin, 0, 0.0, None, 0.0)
        ]
        while stack:
            position, depth, log_probability, character, probability = stack.pop()
            if character is not None:
                del path_characters[depth - 1 :]
                del path_probabilities[depth - 1 :]
                path_characters.append(character)
                path_probabilities.append(probability)
            # Bulk-extend across the run of certain characters: probability-1
            # choices leave the running probability untouched, so the whole
            # run extends unconditionally in one step.
            while (
                position < n
                and (max_factor_length is None or depth < max_factor_length)
                and certain[position] is not None
            ):
                run_character, run_probability = certain[position]  # type: ignore[misc]
                path_characters.append(run_character)
                path_probabilities.append(run_probability)
                position += 1
                depth += 1
            extended = False
            if position < n and (max_factor_length is None or depth < max_factor_length):
                for entry_character, effective, log_effective in choices[position]:
                    candidate = log_probability + log_effective
                    if candidate >= log_threshold:
                        stack.append(
                            (position + 1, depth + 1, candidate, entry_character, effective)
                        )
                        extended = True
            if not extended and depth:
                factors.append(
                    MaximalFactor(
                        start=origin,
                        characters="".join(path_characters),
                        probabilities=tuple(path_probabilities),
                        document=document,
                    )
                )
    return factors


class TransformedString:
    """Result of the general → special uncertain string transformation.

    The transformed text is the concatenation of all maximal factors, each
    followed by a separator character.  Parallel arrays map every transformed
    position back to its original position and document.

    Attributes
    ----------
    text:
        The deterministic character string ``t`` the indexes are built over.
    probabilities:
        Per-position probabilities (separators carry probability 1).
    positions:
        ``Pos`` array: original position of each transformed position
        (``-1`` for separators).
    documents:
        Document identifier of each transformed position (``-1`` for
        separators).
    """

    def __init__(
        self,
        factors: Sequence[MaximalFactor],
        *,
        tau_min: float,
        source_length: int,
        document_count: int = 1,
        separator: str = DEFAULT_SEPARATOR,
    ):
        if not factors:
            raise ConstructionError(
                "the transformation produced no factors; every position of the "
                "input has all its character probabilities below tau_min"
            )
        if not isinstance(separator, str) or len(separator) != 1:
            raise ValidationError(f"separator must be a single character, got {separator!r}")
        self._tau_min = check_threshold(tau_min)
        self._separator = separator
        self._source_length = source_length
        self._document_count = document_count
        self._factors = tuple(factors)

        total = sum(factor.length + 1 for factor in factors)
        text_pieces: List[str] = []
        probabilities = np.ones(total, dtype=np.float64)
        positions = np.full(total, -1, dtype=np.int64)
        documents = np.full(total, -1, dtype=np.int64)
        cursor = 0
        for factor in factors:
            if separator in factor.characters:
                raise ConstructionError(
                    f"factor {factor.characters!r} contains the separator character; "
                    "choose a different separator"
                )
            text_pieces.append(factor.characters)
            text_pieces.append(separator)
            length = factor.length
            probabilities[cursor : cursor + length] = factor.probabilities
            positions[cursor : cursor + length] = factor.start + np.arange(length)
            documents[cursor : cursor + length] = factor.document
            cursor += length + 1
        self.text = "".join(text_pieces)
        self.probabilities = probabilities
        self.positions = positions
        self.documents = documents

    # -- metadata -----------------------------------------------------------------
    @property
    def tau_min(self) -> float:
        """Threshold the transformation was performed for."""
        return self._tau_min

    @property
    def separator(self) -> str:
        """Separator character between factors."""
        return self._separator

    @property
    def factors(self) -> Tuple[MaximalFactor, ...]:
        """The factors in concatenation order."""
        return self._factors

    @property
    def factor_count(self) -> int:
        """Number of factors."""
        return len(self._factors)

    @property
    def source_length(self) -> int:
        """Total number of positions of the original string / collection."""
        return self._source_length

    @property
    def document_count(self) -> int:
        """Number of documents represented in the transformation."""
        return self._document_count

    @property
    def length(self) -> int:
        """Length ``N`` of the transformed text (the paper's ``O((1/τ)² n)``)."""
        return len(self.text)

    @property
    def expansion_ratio(self) -> float:
        """``N / n``: how much larger the transformed text is than the input."""
        return len(self.text) / self._source_length

    def __len__(self) -> int:
        return len(self.text)

    def to_special_string(self) -> SpecialUncertainString:
        """View the transformation as a special uncertain string."""
        return SpecialUncertainString.from_characters_and_probabilities(
            self.text, self.probabilities
        )

    def nbytes(self) -> int:
        """Approximate memory footprint of the numpy payload in bytes."""
        return int(
            self.probabilities.nbytes + self.positions.nbytes + self.documents.nbytes
        )

    # -- payload currency ---------------------------------------------------------
    def to_payload(self) -> IndexPayload:
        """The :class:`~repro.payload.IndexPayload` describing this transformation."""
        return IndexPayload(
            schema=TRANSFORMED_SCHEMA,
            meta={
                "text": self.text,
                "tau_min": self._tau_min,
                "separator": self._separator,
                "source_length": self._source_length,
                "document_count": self._document_count,
            },
            arrays={
                "probabilities": self.probabilities,
                "positions": self.positions,
                "documents": self.documents,
            },
        )

    @classmethod
    def from_payload(cls, payload: IndexPayload) -> "TransformedString":
        """Rebuild the transformation by recovering its factors from the arrays.

        Factors are delimited by the separator character, so the factor
        list — and with it every invariant the constructor enforces — is
        recovered exactly; the constructor then reassembles text and
        arrays identical to the saved ones.
        """
        expect_schema(payload, TRANSFORMED_SCHEMA)
        meta = payload.meta
        text: str = meta["text"]
        separator: str = meta["separator"]
        probabilities = payload.arrays["probabilities"]
        positions = payload.arrays["positions"]
        documents = payload.arrays["documents"]
        factors: List[MaximalFactor] = []
        start = 0
        for index, character in enumerate(text):
            if character != separator:
                continue
            if index > start:
                document = int(documents[start])
                factors.append(
                    MaximalFactor(
                        start=int(positions[start]),
                        characters=text[start:index],
                        probabilities=tuple(float(v) for v in probabilities[start:index]),
                        document=document if document >= 0 else 0,
                    )
                )
            start = index + 1
        return cls(
            factors,
            tau_min=meta["tau_min"],
            source_length=meta["source_length"],
            document_count=meta["document_count"],
            separator=separator,
        )


def transform_uncertain_string(
    string: UncertainString,
    tau_min: float,
    *,
    max_factor_length: Optional[int] = None,
    separator: str = DEFAULT_SEPARATOR,
) -> TransformedString:
    """Transform a general uncertain string into a :class:`TransformedString`.

    This is the Lemma 2 construction: the result's text contains every
    substring of ``string`` whose occurrence probability is at least
    ``tau_min``, aligned through the ``Pos`` array.
    """
    factors = enumerate_maximal_factors(
        string, tau_min, max_factor_length=max_factor_length
    )
    return TransformedString(
        factors,
        tau_min=tau_min,
        source_length=len(string),
        document_count=1,
        separator=separator,
    )


def transform_collection(
    collection: UncertainStringCollection,
    tau_min: float,
    *,
    max_factor_length: Optional[int] = None,
    separator: str = DEFAULT_SEPARATOR,
) -> TransformedString:
    """Transform every document of a collection into one concatenated text.

    Factor ``Pos`` values are offsets *within their own document*; the
    ``Doc`` array carries the document identifier, mirroring the generalized
    suffix tree construction of Section 6.
    """
    factors: List[MaximalFactor] = []
    for identifier, document in enumerate(collection):
        factors.extend(
            enumerate_maximal_factors(
                document,
                tau_min,
                max_factor_length=max_factor_length,
                document=identifier,
            )
        )
    return TransformedString(
        factors,
        tau_min=tau_min,
        source_length=collection.total_positions,
        document_count=len(collection),
        separator=separator,
    )
