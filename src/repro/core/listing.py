"""Uncertain string listing from a collection (paper Section 6).

Given a collection ``D = {d_1, ..., d_D}`` and a query ``(p, τ)``, report
every document that contains ``p`` with relevance above ``τ``.  The index
follows the paper's construction:

* all documents are transformed (maximal factors w.r.t. ``τ_min``) and
  concatenated into one text, with ``Pos``/``Doc`` arrays mapping transformed
  positions back to (document, offset);
* for every prefix length ``i ≤ ⌈log2 N⌉`` the per-rank relevance array
  ``R_i`` keeps, inside every depth-``i`` locus partition, a single entry per
  document holding the document's relevance for that partition's string —
  every other copy is masked so the recursive range-maximum reporting never
  emits a document twice;
* a range-maximum structure over every ``R_i`` turns a query into the same
  recursive reporting loop as substring search, yielding ``O(m + ndoc)``
  for short patterns.

Relevance metrics (Section 6):

``"max"``
    maximum probability of occurrence of the pattern in the document;
``"or"``
    the paper's OR value ``Σ p_j − Π p_j`` over the pattern's occurrences;
``"noisy_or"``
    ``1 − Π (1 − p_j)``, the standard noisy-OR combination.

For the ``or``/``noisy_or`` metrics the combination ranges over occurrences
with probability ≥ ``τ_min`` (only those are guaranteed to be present in the
transformed text — the same restriction the paper's structure has).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Literal, Optional, Tuple

import numpy as np

from .._validation import check_nonempty_pattern, check_threshold
from ..exceptions import ValidationError
from ..payload import IndexPayload, expect_schema
from ..strings.collection import UncertainStringCollection
from ..strings.serialization import (
    collection_from_manifest,
    collection_to_manifest,
)
from ..suffix.lcp import build_lcp_array
from ..suffix.pattern_search import suffix_range
from ..suffix.rmq import make_rmq, rmq_to_payload
from ..suffix.suffix_array import SuffixArray
from .base import (
    ListingMatch,
    PayloadSerializable,
    listing_matches_from_arrays,
    report_above_threshold,
    resolve_tau,
    restore_child_rmq,
    sort_listing_matches,
    top_values_above_threshold,
)
from .cumulative import cumulative_log_probabilities
from .factors import DEFAULT_SEPARATOR, TransformedString, transform_collection
from .general_index import partition_identifiers

RelevanceMetric = Literal["max", "or", "noisy_or"]

_METRICS: Tuple[str, ...] = ("max", "or", "noisy_or")

#: Payload schema of this index kind (see :mod:`repro.payload`).
LISTING_INDEX_SCHEMA = "index/listing"


def combine_relevance(probabilities: Iterable[float], metric: RelevanceMetric) -> float:
    """Combine the occurrence probabilities of one document into a relevance value.

    For a single occurrence every metric degenerates to that occurrence's
    probability (the paper's ``Σ p − Π p`` formula is only meaningful for two
    or more occurrences).
    """
    if metric not in _METRICS:
        raise ValidationError(
            f"unknown relevance metric {metric!r}; expected one of {_METRICS}"
        )
    values = [float(p) for p in probabilities if p > 0.0]
    if not values:
        return 0.0
    if metric == "max":
        return max(values)
    if len(values) == 1:
        return values[0]
    product = 1.0
    for value in values:
        product *= value
    if metric == "or":
        return sum(values) - product
    if metric == "noisy_or":
        complement = 1.0
        for value in values:
            complement *= 1.0 - value
        return 1.0 - complement
    raise ValidationError(f"unknown relevance metric {metric!r}; expected one of {_METRICS}")


class UncertainStringListingIndex(PayloadSerializable):
    """Document-listing index over a collection of uncertain strings.

    Parameters
    ----------
    collection:
        The uncertain string collection to index.
    tau_min:
        Construction-time probability threshold; queries must use
        ``tau >= tau_min``.
    metric:
        Relevance metric used both at construction and at query time.
    max_short_length:
        Largest pattern length served by the per-length RMQ path
        (default ``⌈log2 N⌉``).
    max_factor_length:
        Optional cap on maximal-factor length.
    rmq_implementation:
        ``"block"`` (default) or ``"sparse"``.
    separator:
        Separator character between concatenated factors.

    Examples
    --------
    The Figure 2 example — only ``d_1`` contains ``"BF"`` above 0.1:

    >>> from repro.strings import UncertainString, UncertainStringCollection
    >>> d1 = UncertainString([
    ...     {"A": 0.4, "B": 0.3, "F": 0.3},
    ...     {"B": 0.3, "L": 0.3, "F": 0.3, "J": 0.1},
    ...     {"F": 0.5, "J": 0.5},
    ... ])
    >>> d2 = UncertainString([
    ...     {"A": 0.6, "C": 0.4},
    ...     {"B": 0.5, "F": 0.3, "J": 0.2},
    ...     {"B": 0.4, "C": 0.3, "E": 0.2, "F": 0.1},
    ... ])
    >>> d3 = UncertainString([
    ...     {"A": 0.4, "F": 0.4, "P": 0.2},
    ...     {"I": 0.3, "L": 0.3, "P": 0.3, "T": 0.1},
    ...     {"A": 1.0},
    ... ])
    >>> index = UncertainStringListingIndex(
    ...     UncertainStringCollection([d1, d2, d3]), tau_min=0.05)
    >>> [match.document for match in index.query("BF", 0.1)]
    [0]
    """

    def __init__(
        self,
        collection: UncertainStringCollection,
        tau_min: float,
        *,
        metric: RelevanceMetric = "max",
        max_short_length: Optional[int] = None,
        max_factor_length: Optional[int] = None,
        rmq_implementation: Literal["sparse", "block"] = "block",
        separator: str = DEFAULT_SEPARATOR,
    ):
        if metric not in _METRICS:
            raise ValidationError(
                f"unknown relevance metric {metric!r}; expected one of {_METRICS}"
            )
        self._collection = collection
        self._tau_min = check_threshold(tau_min)
        self._metric: RelevanceMetric = metric
        self._rmq_implementation = rmq_implementation
        self._needs_verification = any(bool(doc.correlations) for doc in collection)

        self._transformed = transform_collection(
            collection,
            self._tau_min,
            max_factor_length=max_factor_length,
            separator=separator,
        )
        transformed = self._transformed
        self._suffix_array = SuffixArray(transformed.text)
        self._lcp = build_lcp_array(transformed.text, self._suffix_array.array)
        self._prefix = cumulative_log_probabilities(transformed.probabilities)
        order = self._suffix_array.array
        self._rank_positions = transformed.positions[order]
        self._rank_documents = transformed.documents[order]

        N = len(transformed.text)
        if max_short_length is None:
            max_short_length = max(1, math.ceil(math.log2(N + 1)))
        self._max_short_length = max(1, min(max_short_length, N))

        self._relevance: Dict[int, np.ndarray] = {}
        self._relevance_rmq: Dict[int, object] = {}
        for length in range(1, self._max_short_length + 1):
            self._build_relevance_structure(length)

    # -- construction ----------------------------------------------------------------------
    def _window_probabilities(self, length: int) -> np.ndarray:
        """Linear-space occurrence probability of every rank's length-``length`` prefix."""
        order = self._suffix_array.array
        ends = order + length
        values = np.zeros(len(order), dtype=np.float64)
        in_range = ends <= len(self._transformed.text)
        values[in_range] = np.exp(
            self._prefix[ends[in_range]] - self._prefix[order[in_range]]
        )
        return values

    def _build_relevance_structure(self, length: int) -> None:
        probabilities = self._window_probabilities(length)
        partitions = partition_identifiers(self._lcp, length)
        documents = self._rank_documents
        positions = self._rank_positions

        relevance = np.zeros(len(probabilities), dtype=np.float64)
        valid = (documents >= 0) & (positions >= 0) & (probabilities > 0.0)
        indices = np.flatnonzero(valid)
        if len(indices) == 0:
            self._relevance[length] = relevance
            self._relevance_rmq[length] = make_rmq(
                relevance, mode="max", implementation=self._rmq_implementation
            )
            return

        max_position = int(positions[indices].max()) + 2
        document_count = len(self._collection) + 2
        # First level of deduplication: one entry per (partition, document,
        # original position) — different factor copies of the same occurrence
        # carry identical probabilities.
        occurrence_keys = (
            partitions[indices].astype(np.int64) * document_count
            + (documents[indices].astype(np.int64) + 1)
        ) * max_position + (positions[indices].astype(np.int64) + 1)
        _, unique_occurrence_indices = np.unique(occurrence_keys, return_index=True)
        indices = indices[np.sort(unique_occurrence_indices)]

        # Second level: combine the distinct occurrences of each (partition,
        # document) group into one relevance value stored on the group's
        # first rank.
        group_keys = partitions[indices].astype(np.int64) * document_count + (
            documents[indices].astype(np.int64) + 1
        )
        unique_keys, group_first, inverse = np.unique(
            group_keys, return_index=True, return_inverse=True
        )
        group_values = probabilities[indices]
        group_count = len(unique_keys)

        if self._metric == "max":
            combined = np.zeros(group_count, dtype=np.float64)
            np.maximum.at(combined, inverse, group_values)
        else:
            counts = np.zeros(group_count, dtype=np.int64)
            np.add.at(counts, inverse, 1)
            sums = np.zeros(group_count, dtype=np.float64)
            np.add.at(sums, inverse, group_values)
            log_products = np.zeros(group_count, dtype=np.float64)
            if self._metric == "or":
                np.add.at(log_products, inverse, np.log(group_values))
                combined = sums - np.exp(log_products)
            else:  # noisy_or
                np.add.at(log_products, inverse, np.log1p(-np.clip(group_values, 0.0, 1.0 - 1e-15)))
                combined = 1.0 - np.exp(log_products)
            # A single occurrence degenerates to its own probability (the
            # Σp − Πp formula would cancel to zero for one term).
            singletons = counts == 1
            combined = np.where(singletons, sums, combined)

        representatives = indices[group_first]
        relevance[representatives] = combined
        self._relevance[length] = relevance
        self._relevance_rmq[length] = make_rmq(
            relevance, mode="max", implementation=self._rmq_implementation
        )

    # -- metadata --------------------------------------------------------------------------
    @property
    def tau_min(self) -> float:
        """Construction-time probability threshold."""
        return self._tau_min

    @property
    def metric(self) -> RelevanceMetric:
        """Relevance metric configured for this index."""
        return self._metric

    @property
    def needs_verification(self) -> bool:
        """Whether candidates are re-verified against the original documents.

        True for correlated collections; the per-length relevance arrays
        then hold optimistic pre-verification values, so reported relevance
        comes from re-computation (relevant to batch-refinement soundness).
        """
        return self._needs_verification

    @property
    def collection(self) -> UncertainStringCollection:
        """The indexed collection."""
        return self._collection

    @property
    def transformed(self) -> TransformedString:
        """The concatenated maximal-factor transformation."""
        return self._transformed

    @property
    def max_short_length(self) -> int:
        """Largest pattern length served by the per-length RMQ path."""
        return self._max_short_length

    @property
    def stats(self) -> Dict[str, float]:
        """Construction statistics."""
        return {
            "documents": len(self._collection),
            "source_length": self._transformed.source_length,
            "transformed_length": self._transformed.length,
            "factor_count": self._transformed.factor_count,
            "expansion_ratio": self._transformed.expansion_ratio,
            "max_short_length": self._max_short_length,
        }

    # -- payload currency -----------------------------------------------------------------
    def to_payload(self) -> IndexPayload:
        """The complete array-schema description of this index."""
        arrays = {
            "suffix_array": self._suffix_array.array,
            "lcp": self._lcp,
            "prefix": self._prefix,
            "rank_positions": self._rank_positions,
            "rank_documents": self._rank_documents,
        }
        children = {"transformed": self._transformed.to_payload()}
        for length, values in self._relevance.items():
            arrays[f"relevance_{length}"] = values
            children[f"rmq_relevance_{length}"] = rmq_to_payload(
                self._relevance_rmq[length]
            )
        return IndexPayload(
            schema=LISTING_INDEX_SCHEMA,
            meta={
                "collection": collection_to_manifest(self._collection),
                "tau_min": self._tau_min,
                "metric": self._metric,
                "max_short_length": self._max_short_length,
                "relevance_lengths": sorted(self._relevance),
                "rmq_implementation": self._rmq_implementation,
            },
            arrays=arrays,
            derived={"suffix_rank": self._suffix_array.rank},
            children=children,
        )

    @classmethod
    def from_payload(cls, payload: IndexPayload) -> "UncertainStringListingIndex":
        """Restore an index from :meth:`to_payload` output (no construction)."""
        expect_schema(payload, LISTING_INDEX_SCHEMA)
        meta = payload.meta
        index = cls.__new__(cls)
        index._collection = collection_from_manifest(meta["collection"])
        index._tau_min = float(meta["tau_min"])
        index._metric = meta["metric"]
        index._rmq_implementation = meta["rmq_implementation"]
        index._needs_verification = any(
            bool(document.correlations) for document in index._collection
        )
        index._transformed = TransformedString.from_payload(
            payload.children["transformed"]
        )
        index._suffix_array = SuffixArray(
            index._transformed.text, array=payload.arrays["suffix_array"]
        )
        index._lcp = payload.arrays["lcp"]
        index._prefix = payload.arrays["prefix"]
        index._rank_positions = payload.arrays["rank_positions"]
        index._rank_documents = payload.arrays["rank_documents"]
        index._max_short_length = int(meta["max_short_length"])
        implementation = meta["rmq_implementation"]
        index._relevance = {
            int(length): payload.arrays[f"relevance_{length}"]
            for length in meta["relevance_lengths"]
        }
        index._relevance_rmq = {
            length: restore_child_rmq(
                payload,
                f"rmq_relevance_{length}",
                values,
                implementation=implementation,
            )
            for length, values in index._relevance.items()
        }
        return index

    # -- queries -----------------------------------------------------------------------------
    def query(self, pattern: str, tau: float) -> List[ListingMatch]:
        """Report documents containing ``pattern`` with relevance above ``tau``."""
        check_nonempty_pattern(pattern)
        threshold = check_threshold(tau, tau_min=self._tau_min)
        length = len(pattern)
        interval = suffix_range(
            self._transformed.text, self._suffix_array.array, pattern
        )
        if interval is None:
            return []
        sp, ep = interval

        documents, relevances = self._candidates(sp, ep, length, threshold)
        return sort_listing_matches(
            self._materialize(pattern, documents, relevances, threshold)
        )

    def top_k(self, pattern: str, k: int, *, tau: Optional[float] = None) -> List[ListingMatch]:
        """Report the ``k`` most relevant documents containing ``pattern``.

        Results are ordered by decreasing relevance (ties broken by document
        identifier).  ``tau`` optionally floors the relevance considered;
        ``None`` resolves through :func:`repro.core.base.resolve_tau` to
        ``tau_min`` (the index cannot see occurrences below its construction
        threshold).  For short patterns on uncorrelated collections the
        answer is extracted with ``O(k)`` heap-driven range-maximum probes
        over the per-length relevance arrays; other cases fall back to
        materializing the candidate documents and sorting.
        """
        check_nonempty_pattern(pattern)
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        threshold = check_threshold(resolve_tau(tau, self._tau_min), tau_min=self._tau_min)
        # Include documents sitting exactly on the threshold, mirroring the
        # substring indexes' top_k semantics.
        adjusted = threshold - 1e-12
        length = len(pattern)
        interval = suffix_range(
            self._transformed.text, self._suffix_array.array, pattern
        )
        if interval is None:
            return []
        sp, ep = interval

        if length <= self._max_short_length and not self._needs_verification:
            values = self._relevance[length]
            rmq = self._relevance_rmq[length]
            ranks = top_values_above_threshold(
                rmq, values, sp, ep, k, adjusted, include_ties=True
            )
            matches = [
                ListingMatch(int(self._rank_documents[rank]), float(values[rank]))
                for rank in ranks
            ]
        else:
            documents, relevances = self._candidates(sp, ep, length, adjusted)
            matches = self._materialize(pattern, documents, relevances, adjusted)
        matches.sort(key=lambda match: (-match.relevance, match.document))
        return matches[:k]

    def documents(self, pattern: str, tau: float) -> List[int]:
        """Convenience wrapper returning only the matching document identifiers."""
        return [match.document for match in self.query(pattern, tau)]

    def _materialize(
        self, pattern: str, documents: np.ndarray, relevances: np.ndarray, threshold: float
    ) -> List[ListingMatch]:
        """Turn candidate arrays into matches, re-verifying correlated collections."""
        if not self._needs_verification:
            return listing_matches_from_arrays(documents, relevances)
        length = len(pattern)
        matches = []
        for document in documents:
            document = int(document)
            exact = self._collection.document_relevance(
                pattern, document, "max" if self._metric == "max" else "or"
            )
            if self._metric == "noisy_or":
                exact = combine_relevance(
                    [
                        self._collection[document].occurrence_probability(pattern, position)
                        for position in range(len(self._collection[document]) - length + 1)
                    ],
                    "noisy_or",
                )
            if exact > threshold:
                matches.append(ListingMatch(document, exact))
        return matches

    # -- candidate generation -----------------------------------------------------------------
    # Every strategy returns two parallel arrays — document identifiers and
    # relevance values, each document exactly once — and candidates only
    # become ListingMatch objects at the _materialize boundary.
    def _candidates(
        self, sp: int, ep: int, length: int, threshold: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dispatch to the RMQ or scanning strategy by pattern length."""
        if length <= self._max_short_length:
            return self._candidates_short(sp, ep, length, threshold)
        return self._candidates_scan(sp, ep, length, threshold)

    def _candidates_short(
        self, sp: int, ep: int, length: int, threshold: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        values = self._relevance[length]
        rmq = self._relevance_rmq[length]
        ranks = report_above_threshold(rmq, values, sp, ep, threshold)
        return self._rank_documents[ranks], values[ranks]

    def _candidates_scan(
        self, sp: int, ep: int, length: int, threshold: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Widen before the arithmetic below: compacted payloads restore
        # narrow dtypes, and both ``order + length`` and the pair-key
        # ``positions + 1`` can exceed a minimized dtype's range.
        order = self._suffix_array.array[sp : ep + 1].astype(np.int64, copy=False)
        documents = self._rank_documents[sp : ep + 1]
        positions = self._rank_positions[sp : ep + 1].astype(np.int64, copy=False)
        ends = order + length
        valid = (
            (ends <= len(self._transformed.text)) & (documents >= 0) & (positions >= 0)
        )
        order = order[valid]
        documents = documents[valid]
        positions = positions[valid]
        probabilities = np.exp(self._prefix[order + length] - self._prefix[order])
        positive = probabilities > 0.0
        documents = documents[positive]
        positions = positions[positive]
        probabilities = probabilities[positive]
        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        if documents.size == 0:
            return empty

        # One entry per (document, original position): factor copies of the
        # same occurrence carry identical probabilities, and np.sort keeps
        # the surviving copies in rank order so the sequential ufunc.at
        # accumulation below adds/multiplies in exactly the order the scalar
        # per-document loop did (bit-identical floats).
        max_position = int(positions.max()) + 2
        pair_keys = (documents.astype(np.int64) + 1) * max_position + (positions + 1)
        _, first_copy = np.unique(pair_keys, return_index=True)
        first_copy = np.sort(first_copy)
        documents = documents[first_copy]
        probabilities = probabilities[first_copy]

        doc_ids, inverse = np.unique(documents, return_inverse=True)
        counts = np.bincount(inverse)
        if self._metric == "max":
            combined = np.zeros(len(doc_ids), dtype=np.float64)
            np.maximum.at(combined, inverse, probabilities)
        else:
            sums = np.zeros(len(doc_ids), dtype=np.float64)
            np.add.at(sums, inverse, probabilities)
            if self._metric == "or":
                products = np.ones(len(doc_ids), dtype=np.float64)
                np.multiply.at(products, inverse, probabilities)
                combined = sums - products
            else:  # noisy_or
                complements = np.ones(len(doc_ids), dtype=np.float64)
                np.multiply.at(complements, inverse, 1.0 - probabilities)
                combined = 1.0 - complements
            # A single occurrence degenerates to its own probability.
            combined = np.where(counts == 1, sums, combined)
        keep = combined > threshold
        return doc_ids[keep], combined[keep]
