"""Approximate substring searching with additive error (paper Section 7).

The exact indexes answer long patterns in ``O(m · occ)``; to get optimal
``O(m + occ)`` for *every* pattern length the paper trades exactness for an
additive error ``ε`` on the probability threshold, using the marked-node /
link framework of Hon, Shah and Vitter:

1. the uncertain string is transformed (maximal factors w.r.t. ``τ_min``)
   and a suffix tree is built over the transformed text;
2. every leaf is marked with the *original* position its suffix maps to;
   every internal node that is the LCA of two leaves with the same mark is
   marked with it too (the root is implicitly marked with every position);
3. for every node ``u`` marked with position ``d`` a link
   ``(origin=u, target=lowest marked proper ancestor, d, prob)`` is created,
   where ``prob`` is the probability of ``path(u)`` occurring at ``d``;
4. each link is split into a chain of sub-links so that the probabilities of
   consecutive sub-links differ by at most ``ε``.

A query ``(p, τ)`` reports the positions of the links *stabbed* by the
pattern's locus (origin at or below the locus, target strictly above it)
whose probability is at least ``τ − ε``.  Every reported position has true
occurrence probability ≥ ``τ − ε`` and every position with true probability
≥ ``τ`` is reported.

Setting ``verify=True`` on the query re-checks candidates against the
original string, turning the structure into an exact index at the cost of
``O(m)`` extra work per candidate.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .._validation import check_nonempty_pattern, check_probability, check_threshold
from ..exceptions import ValidationError
from ..payload import IndexPayload, expect_schema
from ..strings.serialization import (
    uncertain_string_from_manifest,
    uncertain_string_to_manifest,
)
from ..strings.uncertain import UncertainString
from ..suffix.rmq import make_rmq, rmq_to_payload
from ..suffix.suffix_array import SuffixArray
from ..suffix.suffix_tree import SuffixTree
from .base import (
    Occurrence,
    UncertainSubstringIndex,
    report_above_threshold,
    restore_child_rmq,
    sort_occurrences,
)

from .cumulative import cumulative_log_probabilities
from .factors import DEFAULT_SEPARATOR, TransformedString, transform_uncertain_string

#: Payload schema of this index kind (see :mod:`repro.payload`).
APPROXIMATE_INDEX_SCHEMA = "index/approximate"


@dataclass(frozen=True)
class Link:
    """One (possibly split) link of the marked-node framework.

    Attributes
    ----------
    origin_left, origin_right:
        Leaf-rank range of the real suffix-tree node at (or below) the
        link's origin; used for the "origin inside the locus subtree" test.
    origin_depth:
        String depth of the origin (may be a dummy point on an edge).
    target_depth:
        String depth of the target (the next link of the chain, or the
        lowest marked proper ancestor).
    position:
        Original-string position ``d`` the link reports.
    probability:
        Probability of the origin's prefix occurring at ``d``.
    """

    origin_left: int
    origin_right: int
    origin_depth: int
    target_depth: int
    position: int
    probability: float


class ApproximateSubstringIndex(UncertainSubstringIndex):
    """Link-based approximate substring-search index (Section 7).

    Parameters
    ----------
    string:
        The uncertain string to index.
    tau_min:
        Construction-time probability threshold; queries must use
        ``tau >= tau_min``.
    epsilon:
        Additive error bound on reported probabilities (``0 < ε < 1``).
    max_factor_length:
        Optional cap on maximal-factor length (passed to the transformation).
    separator:
        Separator character between concatenated factors.

    Examples
    --------
    >>> from repro.strings import UncertainString
    >>> s = UncertainString([
    ...     {"Q": 0.7, "S": 0.3},
    ...     {"Q": 0.3, "P": 0.7},
    ...     {"P": 1.0},
    ...     {"A": 0.4, "F": 0.3, "P": 0.2, "Q": 0.1},
    ... ])
    >>> index = ApproximateSubstringIndex(s, tau_min=0.1, epsilon=0.05)
    >>> sorted(occ.position for occ in index.query("QP", 0.4))
    [0]
    """

    def __init__(
        self,
        string: UncertainString,
        tau_min: float,
        *,
        epsilon: float = 0.05,
        max_factor_length: Optional[int] = None,
        separator: str = DEFAULT_SEPARATOR,
    ):
        self._string = string
        self._tau_min = check_threshold(tau_min)
        epsilon = check_probability(epsilon, name="epsilon")
        if epsilon <= 0.0 or epsilon >= 1.0:
            raise ValidationError(f"epsilon must lie strictly between 0 and 1, got {epsilon}")
        self._epsilon = epsilon

        self._transformed = transform_uncertain_string(
            string,
            self._tau_min,
            max_factor_length=max_factor_length,
            separator=separator,
        )
        transformed = self._transformed
        self._suffix_array = SuffixArray(transformed.text)
        self._tree = SuffixTree(self._suffix_array)
        self._prefix = cumulative_log_probabilities(transformed.probabilities)
        self._rank_positions = transformed.positions[self._suffix_array.array]

        self._links = self._build_links()
        # Links sorted by origin_left so a locus range maps to a contiguous
        # slice; an RMQ over probability drives output-sensitive reporting.
        self._link_origin_left = np.asarray(
            [link.origin_left for link in self._links], dtype=np.int64
        )
        self._link_probabilities = np.asarray(
            [link.probability for link in self._links], dtype=np.float64
        )
        if len(self._links) > 0:
            self._link_rmq = make_rmq(self._link_probabilities, mode="max")
        else:
            self._link_rmq = None

    # -- construction ---------------------------------------------------------------------
    def _leaf_window_probability(self, leaf_rank: int, depth: int) -> float:
        start = int(self._suffix_array.array[leaf_rank])
        if depth <= 0 or start + depth > len(self._transformed.text):
            return 0.0
        return float(np.exp(self._prefix[start + depth] - self._prefix[start]))

    def _build_links(self) -> List[Link]:
        tree = self._tree
        root = tree.root

        # Leaves marked with each original position, in rank order.
        leaves_by_position: Dict[int, List[int]] = {}
        for rank, position in enumerate(self._rank_positions):
            position = int(position)
            if position < 0:
                continue
            # Skip suffixes that start on a separator (their first character
            # can never match a query pattern) — their position is -1 already,
            # so nothing to do; suffixes that merely *cross* a separator are
            # fine because the locus of a real pattern never descends there.
            leaves_by_position.setdefault(position, []).append(rank)

        links: List[Link] = []
        for position, leaf_ranks in leaves_by_position.items():
            marked = set(leaf_ranks)
            for previous, current in zip(leaf_ranks, leaf_ranks[1:]):
                marked.add(tree.lowest_common_ancestor(previous, current))
            marked_with_root = set(marked)
            marked_with_root.add(root)

            for node in marked:
                if node == root:
                    continue
                target = self._lowest_marked_proper_ancestor(node, marked_with_root)
                representative_leaf = self._representative_leaf(node, position, leaf_ranks)
                links.extend(
                    self._split_link(node, target, position, representative_leaf)
                )
        links.sort(key=lambda link: (link.origin_left, link.origin_right, link.origin_depth))
        return links

    def _lowest_marked_proper_ancestor(self, node: int, marked: set) -> int:
        current = self._tree.node_parent(node)
        while current != -1:
            if current in marked:
                return current
            current = self._tree.node_parent(current)
        return self._tree.root

    def _representative_leaf(
        self, node: int, position: int, leaf_ranks: List[int]
    ) -> int:
        node_left, node_right = self._tree.node_range(node)
        index = bisect.bisect_left(leaf_ranks, node_left)
        if index < len(leaf_ranks) and leaf_ranks[index] <= node_right:
            return leaf_ranks[index]
        raise ValidationError(
            f"internal error: no leaf with position {position} under node {node}"
        )  # pragma: no cover - construction invariant

    def _useful_depth_cap(self, leaf_rank: int, origin_depth: int) -> int:
        """Deepest prefix depth whose probability is still at least ``tau_min``.

        Links deeper than this can never satisfy a query (every query uses
        ``tau >= tau_min`` and probabilities only shrink with depth), so the
        chain is split starting from this depth instead of the full suffix
        depth — without this cap, link construction is quadratic in the
        transformed text length.
        """
        start = int(self._suffix_array.array[leaf_rank])
        limit = min(origin_depth, len(self._transformed.text) - start)
        if limit <= 0:
            return 0
        # prefix[start+1 .. start+limit] - prefix[start] is non-increasing.
        window = self._prefix[start + 1 : start + limit + 1] - self._prefix[start]
        threshold = np.log(self._tau_min) - 1e-12
        return int(np.searchsorted(-window, -threshold, side="right"))

    def _split_link(
        self, origin: int, target: int, position: int, representative_leaf: int
    ) -> List[Link]:
        tree = self._tree
        origin_left, origin_right = tree.node_range(origin)
        origin_depth = tree.node_depth(origin)
        target_depth = tree.node_depth(target)
        if target_depth >= origin_depth:
            # Degenerate (can only happen for a leaf equal to its marked
            # ancestor); no link needed.
            return []
        # Cap the chain at the deepest depth that any query could still
        # accept; deeper prefixes have probability < tau_min.
        origin_depth = min(
            origin_depth, self._useful_depth_cap(representative_leaf, origin_depth)
        )
        if origin_depth <= target_depth:
            return []

        sublinks: List[Link] = []
        current_depth = origin_depth
        current_probability = self._leaf_window_probability(representative_leaf, origin_depth)
        while current_depth > target_depth:
            cut_depth = target_depth
            # Walk upwards while the probability increase stays within epsilon.
            for depth in range(current_depth - 1, target_depth - 1, -1):
                probability = self._leaf_window_probability(representative_leaf, depth) if depth > 0 else 1.0
                if probability - current_probability > self._epsilon:
                    cut_depth = depth + 1
                    break
            if cut_depth >= current_depth:
                # Even a single character step exceeds epsilon: cut right above.
                cut_depth = current_depth - 1
            sublinks.append(
                Link(
                    origin_left=origin_left,
                    origin_right=origin_right,
                    origin_depth=current_depth,
                    target_depth=cut_depth,
                    position=position,
                    probability=current_probability,
                )
            )
            current_depth = cut_depth
            current_probability = (
                self._leaf_window_probability(representative_leaf, cut_depth)
                if cut_depth > 0
                else 1.0
            )
        return sublinks

    # -- metadata -------------------------------------------------------------------------
    @property
    def tau_min(self) -> float:
        """Construction-time probability threshold."""
        return self._tau_min

    @property
    def epsilon(self) -> float:
        """Additive error bound on reported probabilities."""
        return self._epsilon

    @property
    def string(self) -> UncertainString:
        """The indexed uncertain string."""
        return self._string

    @property
    def transformed(self) -> TransformedString:
        """The maximal-factor transformation the index is built over."""
        return self._transformed

    @property
    def link_count(self) -> int:
        """Total number of (split) links stored by the index."""
        return len(self._links)

    # -- payload currency -----------------------------------------------------------------
    def to_payload(self) -> IndexPayload:
        """The complete array-schema description of this index.

        The link chain is decomposed into six parallel flat arrays (the
        :class:`Link` dataclasses are rebuilt on restore); the link RMQ is
        a child payload, present only when the index holds links.
        """
        links = self._links
        arrays = {
            "suffix_array": self._suffix_array.array,
            "lcp": self._tree.lcp,
            "prefix": self._prefix,
            "rank_positions": self._rank_positions,
            "link_origin_left": self._link_origin_left,
            "link_origin_right": np.asarray(
                [link.origin_right for link in links], dtype=np.int64
            ),
            "link_origin_depth": np.asarray(
                [link.origin_depth for link in links], dtype=np.int64
            ),
            "link_target_depth": np.asarray(
                [link.target_depth for link in links], dtype=np.int64
            ),
            "link_position": np.asarray(
                [link.position for link in links], dtype=np.int64
            ),
            "link_probability": self._link_probabilities,
        }
        children = {"transformed": self._transformed.to_payload()}
        if self._link_rmq is not None:
            children["rmq_links"] = rmq_to_payload(self._link_rmq)
        return IndexPayload(
            schema=APPROXIMATE_INDEX_SCHEMA,
            meta={
                "string": uncertain_string_to_manifest(self._string),
                "tau_min": self._tau_min,
                "epsilon": self._epsilon,
                "link_count": len(links),
            },
            arrays=arrays,
            derived={"suffix_rank": self._suffix_array.rank},
            children=children,
        )

    @classmethod
    def from_payload(cls, payload: IndexPayload) -> "ApproximateSubstringIndex":
        """Restore an index from :meth:`to_payload` output (no construction)."""
        expect_schema(payload, APPROXIMATE_INDEX_SCHEMA)
        meta = payload.meta
        index = cls.__new__(cls)
        index._string = uncertain_string_from_manifest(meta["string"])
        index._tau_min = float(meta["tau_min"])
        index._epsilon = float(meta["epsilon"])
        index._transformed = TransformedString.from_payload(
            payload.children["transformed"]
        )
        index._suffix_array = SuffixArray(
            index._transformed.text, array=payload.arrays["suffix_array"]
        )
        index._tree = SuffixTree(index._suffix_array, lcp=payload.arrays["lcp"])
        index._prefix = payload.arrays["prefix"]
        index._rank_positions = payload.arrays["rank_positions"]
        arrays = payload.arrays
        index._links = [
            Link(
                origin_left=int(arrays["link_origin_left"][i]),
                origin_right=int(arrays["link_origin_right"][i]),
                origin_depth=int(arrays["link_origin_depth"][i]),
                target_depth=int(arrays["link_target_depth"][i]),
                position=int(arrays["link_position"][i]),
                probability=float(arrays["link_probability"][i]),
            )
            for i in range(int(meta["link_count"]))
        ]
        # Widen once at restore: the query path binary-searches this array
        # against suffix ranks that can exceed a compacted dtype's range, and
        # ``searchsorted`` would otherwise re-promote the haystack per query.
        index._link_origin_left = arrays["link_origin_left"].astype(np.int64, copy=False)
        index._link_probabilities = arrays["link_probability"]
        if len(index._links) > 0:
            index._link_rmq = restore_child_rmq(
                payload, "rmq_links", index._link_probabilities
            )
        else:
            index._link_rmq = None
        return index

    # -- queries --------------------------------------------------------------------------------
    def query(self, pattern: str, tau: float, *, verify: bool = False) -> List[Occurrence]:
        """Report positions where ``pattern`` occurs with probability ≥ ``tau − ε``.

        Guarantees (Section 7): every position with true probability ≥ ``tau``
        is reported; every reported position has true probability at least
        ``tau − ε``.  With ``verify=True`` candidates are re-checked against
        the original string and the answer becomes exact (probability
        strictly above ``tau``).
        """
        check_nonempty_pattern(pattern)
        threshold = check_threshold(tau, tau_min=self._tau_min)
        if self._link_rmq is None:
            return []
        interval = self._tree.pattern_range(pattern)
        if interval is None:
            return []
        sp, ep = interval
        length = len(pattern)
        relaxed_threshold = threshold - self._epsilon

        # Links whose origin range starts inside [sp, ep] form a contiguous
        # slice of the origin-sorted link array.
        first = int(np.searchsorted(self._link_origin_left, sp, side="left"))
        last = int(np.searchsorted(self._link_origin_left, ep, side="right")) - 1
        if first > last:
            return []

        reported: Dict[int, float] = {}
        for index in report_above_threshold(
            self._link_rmq, self._link_probabilities, first, last, relaxed_threshold
        ):
            link = self._links[index]
            if link.origin_right > ep:
                continue
            if link.origin_depth < length or link.target_depth >= length:
                continue
            previous = reported.get(link.position)
            if previous is None or link.probability > previous:
                reported[link.position] = link.probability

        occurrences: List[Occurrence] = []
        for position, probability in reported.items():
            if verify:
                exact = self._string.occurrence_probability(pattern, position)
                if exact <= threshold:
                    continue
                occurrences.append(Occurrence(position, exact))
            else:
                occurrences.append(Occurrence(position, probability))
        return sort_occurrences(occurrences)
