"""Index-free baselines (related work, Section 1.3).

Two comparison points are provided for the benchmarks and the test suite:

* :class:`OnlineDynamicProgrammingMatcher` — the algorithmic approach of
  Li et al. [20]: no preprocessing, each query scans the uncertain string
  and multiplies probabilities position by position (``O(n · m)`` per
  query, with early termination once the running product drops below the
  threshold).  This is the "no index" baseline.
* :class:`BruteForceOracle` — exhaustive verification used as ground truth
  in tests: it simply defers to the exact probability computation of the
  string/collection classes.
"""

from __future__ import annotations

import math
from typing import List, Optional

from .._validation import check_nonempty_pattern, check_threshold
from ..strings.collection import UncertainStringCollection
from ..strings.uncertain import UncertainString
from .base import ListingMatch, Occurrence, UncertainSubstringIndex, sort_occurrences
from .listing import RelevanceMetric, combine_relevance


class OnlineDynamicProgrammingMatcher(UncertainSubstringIndex):
    """Scan-based matcher requiring no index (Li et al. style baseline).

    Parameters
    ----------
    string:
        The uncertain string queries will run against.

    Examples
    --------
    >>> from repro.strings import UncertainString
    >>> s = UncertainString([{"a": 0.9, "b": 0.1}, {"a": 1.0}, {"b": 0.5, "c": 0.5}])
    >>> matcher = OnlineDynamicProgrammingMatcher(s)
    >>> [occ.position for occ in matcher.query("aa", 0.5)]
    [0]
    """

    def __init__(self, string: UncertainString):
        self._string = string

    @property
    def tau_min(self) -> float:
        """The online matcher supports any positive threshold."""
        return 0.0

    @property
    def string(self) -> UncertainString:
        """The string queries run against."""
        return self._string

    def nbytes(self) -> int:
        """The online matcher keeps no payload beyond the string itself."""
        return 0

    def query(self, pattern: str, tau: float) -> List[Occurrence]:
        """Report occurrences of ``pattern`` with probability > ``tau``.

        Performs an ``O(n · m)`` scan with early termination: the inner
        product over pattern characters stops as soon as it falls to or
        below the threshold.
        """
        check_nonempty_pattern(pattern)
        threshold = check_threshold(tau)
        log_threshold = math.log(threshold)
        string = self._string
        n = len(string)
        m = len(pattern)
        correlated = bool(string.correlations)
        occurrences: List[Occurrence] = []
        for start in range(n - m + 1):
            if correlated:
                # Correlation rules couple positions, so the incremental
                # early-exit product is not valid; evaluate exactly.
                value = string.log_occurrence_probability(pattern, start)
                if value > log_threshold:
                    occurrences.append(Occurrence(start, math.exp(value)))
                continue
            running = 0.0
            matched = True
            for offset, character in enumerate(pattern):
                probability = string[start + offset].probability(character)
                if probability <= 0.0:
                    matched = False
                    break
                running += math.log(probability)
                if running <= log_threshold:
                    matched = False
                    break
            if matched and running > log_threshold:
                occurrences.append(Occurrence(start, math.exp(running)))
        return sort_occurrences(occurrences)


class BruteForceOracle:
    """Exhaustive ground-truth answers for both query problems.

    Used by the test suite to validate every index; also handy when
    debugging an application because its answers are trivially correct.
    """

    def __init__(
        self,
        string: Optional[UncertainString] = None,
        collection: Optional[UncertainStringCollection] = None,
    ):
        self._string = string
        self._collection = collection

    # -- substring searching -------------------------------------------------------------
    def substring_occurrences(self, pattern: str, tau: float) -> List[Occurrence]:
        """All occurrences of ``pattern`` with probability > ``tau`` in the string."""
        if self._string is None:
            raise ValueError("this oracle was not given an uncertain string")
        check_nonempty_pattern(pattern)
        threshold = check_threshold(tau)
        occurrences = []
        for position in self._string.matching_positions(pattern, threshold):
            occurrences.append(
                Occurrence(position, self._string.occurrence_probability(pattern, position))
            )
        return sort_occurrences(occurrences)

    # -- string listing ---------------------------------------------------------------------
    def listing_matches(
        self, pattern: str, tau: float, *, metric: RelevanceMetric = "max"
    ) -> List[ListingMatch]:
        """All documents whose relevance for ``pattern`` exceeds ``tau``."""
        if self._collection is None:
            raise ValueError("this oracle was not given a collection")
        check_nonempty_pattern(pattern)
        threshold = check_threshold(tau)
        matches = []
        for identifier, document in enumerate(self._collection):
            probabilities = [
                document.occurrence_probability(pattern, position)
                for position in range(len(document) - len(pattern) + 1)
            ]
            relevance = combine_relevance(probabilities, metric)
            if relevance > threshold:
                matches.append(ListingMatch(identifier, relevance))
        return sorted(matches, key=lambda match: match.document)
