"""The efficient RMQ-based index for special uncertain strings (Section 4.2).

The index keeps, for every prefix length ``i`` up to ``⌈log2 n⌉``, the array
``C_i`` of window probabilities over lexicographic ranks and a range maximum
query structure ``RMQ_i`` over it.  A query for a short pattern (``m ≤
log n``) finds the pattern's suffix range and then repeatedly extracts the
maximum-probability entry, recursing on both sides until the maximum drops
below the threshold — ``O(m + occ)`` in total (Algorithm 2).

Long patterns (``m > log n``) use the paper's blocking scheme: the suffix
array is cut into blocks of ``m`` entries, only the per-block maximum is kept
(array ``PB_m`` with its own RMQ), and a query touches one block per output,
scanning the ``m`` entries inside each touched block — ``O(m · occ)``.
Because materializing ``PB_i`` for *every* ``i ∈ [log n, n]`` costs
``Θ(n²)`` array work, blocks are built only for the lengths listed in
``long_lengths``; other long patterns fall back to a vectorized scan of the
suffix range, which returns identical results (see DESIGN.md, substitution
table).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Literal, Optional, Tuple

import numpy as np

from .._validation import check_nonempty_pattern, check_threshold
from ..exceptions import PatternTooLongError, ValidationError
from ..payload import IndexPayload, expect_schema
from ..strings.correlation import CorrelationModel
from ..strings.serialization import (
    correlation_rules_from_manifest,
    correlation_rules_to_manifest,
    special_string_from_manifest,
    special_string_to_manifest,
)
from ..strings.special import SpecialUncertainString
from ..suffix.pattern_search import suffix_range
from ..suffix.rmq import make_rmq, rmq_to_payload
from ..suffix.suffix_array import SuffixArray
from .base import (
    Occurrence,
    UncertainSubstringIndex,
    blocked_candidate_ranks,
    occurrences_from_log_values,
    report_above_threshold,
    resolve_tau,
    restore_child_rmq,
    top_values_above_threshold,
)
from .cumulative import (
    NEGATIVE_INFINITY,
    apply_correlation_adjustment,
    correlation_adjusted_window_log_probability,
    cumulative_log_probabilities,
    prefix_length_log_probabilities,
)

LongPatternMode = Literal["fallback", "block", "error"]

#: Payload schema of this index kind (see :mod:`repro.payload`).
SPECIAL_INDEX_SCHEMA = "index/special"


class SpecialUncertainStringIndex(UncertainSubstringIndex):
    """Efficient substring-search index over a special uncertain string.

    Parameters
    ----------
    string:
        The special uncertain string to index.
    correlations:
        Optional correlation model (Algorithm 1's correlation branch is
        applied while building the ``C_i`` arrays).
    max_short_length:
        Largest pattern length answered by the per-length RMQ structures.
        Defaults to ``⌈log2 n⌉`` as in the paper.
    long_lengths:
        Pattern lengths above ``max_short_length`` for which the blocking
        structures of the paper are materialized.
    long_pattern_mode:
        What to do with a long pattern whose length has no blocking
        structure: ``"fallback"`` (default) scans the suffix range,
        ``"block"`` requires a materialized length and otherwise raises,
        ``"error"`` always raises.
    rmq_implementation:
        ``"sparse"`` (O(1) query, O(n log n) space) or ``"block"``
        (O(log n) query, O(n) space).

    Examples
    --------
    >>> from repro.strings import SpecialUncertainString
    >>> x = SpecialUncertainString([
    ...     ("b", 0.4), ("a", 0.7), ("n", 0.5), ("a", 0.8), ("n", 0.9), ("a", 0.6),
    ... ])
    >>> index = SpecialUncertainStringIndex(x)
    >>> [(occ.position, round(occ.probability, 3)) for occ in index.query("ana", 0.3)]
    [(3, 0.432)]
    """

    def __init__(
        self,
        string: SpecialUncertainString,
        *,
        correlations: Optional[CorrelationModel] = None,
        max_short_length: Optional[int] = None,
        long_lengths: Iterable[int] = (),
        long_pattern_mode: LongPatternMode = "fallback",
        rmq_implementation: Literal["sparse", "block"] = "sparse",
    ):
        self._string = string
        self._correlations = correlations if correlations is not None else CorrelationModel()
        self._correlations.validate_against_length(len(string))
        if long_pattern_mode not in ("fallback", "block", "error"):
            raise ValidationError(
                f"long_pattern_mode must be 'fallback', 'block' or 'error', got {long_pattern_mode!r}"
            )
        self._long_pattern_mode = long_pattern_mode
        self._rmq_implementation = rmq_implementation

        n = len(string)
        self._suffix_array = SuffixArray(string.text)
        self._prefix = cumulative_log_probabilities(string.probabilities)

        if max_short_length is None:
            max_short_length = max(1, math.ceil(math.log2(n + 1)))
        if max_short_length < 1:
            raise ValidationError(
                f"max_short_length must be at least 1, got {max_short_length}"
            )
        self._max_short_length = min(max_short_length, n)

        # Per-length C_i arrays and their RMQ structures (short patterns).
        self._short_values: Dict[int, np.ndarray] = {}
        self._short_rmq: Dict[int, object] = {}
        for length in range(1, self._max_short_length + 1):
            values = prefix_length_log_probabilities(
                self._prefix, self._suffix_array.array, length
            )
            values = apply_correlation_adjustment(
                values,
                self._suffix_array.array,
                length,
                self._correlations,
                string.text,
                string.probabilities,
            )
            self._short_values[length] = values
            self._short_rmq[length] = make_rmq(
                values, mode="max", implementation=rmq_implementation
            )

        # Blocking structures for selected long pattern lengths.
        self._block_maxima: Dict[int, np.ndarray] = {}
        self._block_rmq: Dict[int, object] = {}
        for length in sorted(set(int(value) for value in long_lengths)):
            if length <= self._max_short_length:
                continue
            if length > n:
                continue
            self._build_blocking_structure(length)

    # -- construction helpers -----------------------------------------------------------
    def _build_blocking_structure(self, length: int) -> None:
        values = prefix_length_log_probabilities(
            self._prefix, self._suffix_array.array, length
        )
        values = apply_correlation_adjustment(
            values,
            self._suffix_array.array,
            length,
            self._correlations,
            self._string.text,
            self._string.probabilities,
        )
        n = len(values)
        block_count = (n + length - 1) // length
        maxima = np.full(block_count, NEGATIVE_INFINITY, dtype=np.float64)
        for block in range(block_count):
            start = block * length
            end = min(start + length, n)
            maxima[block] = values[start:end].max()
        self._block_maxima[length] = maxima
        self._block_rmq[length] = make_rmq(
            maxima, mode="max", implementation=self._rmq_implementation
        )

    # -- metadata ------------------------------------------------------------------------
    @property
    def tau_min(self) -> float:
        """The special-string index supports any positive threshold."""
        return 0.0

    @property
    def string(self) -> SpecialUncertainString:
        """The indexed special uncertain string."""
        return self._string

    @property
    def max_short_length(self) -> int:
        """Largest pattern length answered through the per-length RMQ path."""
        return self._max_short_length

    @property
    def block_lengths(self) -> Tuple[int, ...]:
        """Pattern lengths for which blocking structures are materialized."""
        return tuple(sorted(self._block_maxima))

    # -- payload currency ----------------------------------------------------------------
    def to_payload(self) -> IndexPayload:
        """The complete array-schema description of this index.

        Per-length ``C_i`` arrays and block maxima are stored arrays; the
        per-length RMQ structures are child payloads (space-efficient —
        block optimum positions only, see
        :meth:`repro.suffix.rmq.SparseTableRMQ.to_payload`).
        """
        arrays = {
            "suffix_array": self._suffix_array.array,
            "prefix": self._prefix,
        }
        children = {}
        for length, values in self._short_values.items():
            arrays[f"short_values_{length}"] = values
            children[f"rmq_short_{length}"] = rmq_to_payload(self._short_rmq[length])
        for length, maxima in self._block_maxima.items():
            arrays[f"block_maxima_{length}"] = maxima
            children[f"rmq_block_{length}"] = rmq_to_payload(self._block_rmq[length])
        return IndexPayload(
            schema=SPECIAL_INDEX_SCHEMA,
            meta={
                "string": special_string_to_manifest(self._string),
                "correlations": correlation_rules_to_manifest(self._correlations),
                "max_short_length": self._max_short_length,
                "short_lengths": sorted(self._short_values),
                "block_lengths": sorted(self._block_maxima),
                "long_pattern_mode": self._long_pattern_mode,
                "rmq_implementation": self._rmq_implementation,
            },
            arrays=arrays,
            derived={"suffix_rank": self._suffix_array.rank},
            children=children,
        )

    @classmethod
    def from_payload(cls, payload: IndexPayload) -> "SpecialUncertainStringIndex":
        """Restore an index from :meth:`to_payload` output (no construction).

        A missing RMQ child (legacy version-1 archives) is rebuilt from its
        value array; present children restore through
        :func:`repro.suffix.rmq.rmq_from_payload` in O(n/b · log n) work.
        """
        expect_schema(payload, SPECIAL_INDEX_SCHEMA)
        meta = payload.meta
        index = cls.__new__(cls)
        index._string = special_string_from_manifest(meta["string"])
        index._correlations = correlation_rules_from_manifest(meta["correlations"])
        index._long_pattern_mode = meta["long_pattern_mode"]
        index._rmq_implementation = meta["rmq_implementation"]
        index._suffix_array = SuffixArray(
            index._string.text, array=payload.arrays["suffix_array"]
        )
        index._prefix = payload.arrays["prefix"]
        index._max_short_length = int(meta["max_short_length"])
        index._short_values = {
            int(length): payload.arrays[f"short_values_{length}"]
            for length in meta["short_lengths"]
        }
        implementation = meta["rmq_implementation"]
        index._short_rmq = {
            length: restore_child_rmq(
                payload, f"rmq_short_{length}", values, implementation=implementation
            )
            for length, values in index._short_values.items()
        }
        index._block_maxima = {
            int(length): payload.arrays[f"block_maxima_{length}"]
            for length in meta["block_lengths"]
        }
        index._block_rmq = {
            length: restore_child_rmq(
                payload, f"rmq_block_{length}", maxima, implementation=implementation
            )
            for length, maxima in index._block_maxima.items()
        }
        return index

    # -- queries ------------------------------------------------------------------------------
    def query(self, pattern: str, tau: float) -> List[Occurrence]:
        """Report all occurrences of ``pattern`` with probability > ``tau``."""
        check_nonempty_pattern(pattern)
        threshold = check_threshold(tau)
        if len(pattern) > len(self._string):
            return []
        interval = suffix_range(self._string.text, self._suffix_array.array, pattern)
        if interval is None:
            return []
        sp, ep = interval
        log_threshold = math.log(threshold)
        length = len(pattern)

        if length <= self._max_short_length:
            return self._query_short(sp, ep, length, log_threshold)
        if length in self._block_rmq:
            return self._query_blocked(sp, ep, length, log_threshold)
        if self._long_pattern_mode == "fallback":
            return self._query_scan(sp, ep, length, log_threshold)
        if self._long_pattern_mode == "block":
            raise PatternTooLongError(
                f"no blocking structure was built for pattern length {length}; "
                f"available lengths: {self.block_lengths}"
            )
        raise PatternTooLongError(
            f"pattern length {length} exceeds max_short_length={self._max_short_length}"
        )

    def top_k(self, pattern: str, k: int, *, tau: Optional[float] = None) -> List[Occurrence]:
        """Report the ``k`` most probable occurrences of ``pattern``.

        Results are ordered by decreasing probability (ties broken by
        position).  ``tau`` optionally floors the candidates considered;
        ``None`` resolves through :func:`repro.core.base.resolve_tau` (the
        unified default documented on the base class).
        """
        check_nonempty_pattern(pattern)
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        threshold = resolve_tau(tau, self.tau_min)
        if len(pattern) > len(self._string):
            return []
        interval = suffix_range(self._string.text, self._suffix_array.array, pattern)
        if interval is None:
            return []
        sp, ep = interval
        length = len(pattern)
        log_threshold = math.log(threshold) - 1e-12

        if length <= self._max_short_length and not self._correlations:
            values = self._short_values[length]
            rmq = self._short_rmq[length]
            ranks = top_values_above_threshold(
                rmq, values, sp, ep, k, log_threshold, include_ties=True
            )
            occurrences = [
                Occurrence(
                    int(self._suffix_array.array[rank]), math.exp(float(values[rank]))
                )
                for rank in ranks
            ]
        else:
            positions, log_values = self._scan_ranks(
                np.arange(sp, ep + 1, dtype=np.int64), length, log_threshold
            )
            occurrences = occurrences_from_log_values(positions, log_values)
        occurrences.sort(key=lambda occurrence: (-occurrence.probability, occurrence.position))
        return occurrences[:k]

    # -- query strategies ------------------------------------------------------------------------
    def _query_short(
        self, sp: int, ep: int, length: int, log_threshold: float
    ) -> List[Occurrence]:
        values = self._short_values[length]
        rmq = self._short_rmq[length]
        ranks = report_above_threshold(rmq, values, sp, ep, log_threshold)
        return occurrences_from_log_values(
            self._suffix_array.array[ranks], values[ranks]
        )

    def _query_blocked(
        self, sp: int, ep: int, length: int, log_threshold: float
    ) -> List[Occurrence]:
        ranks = blocked_candidate_ranks(
            self._block_rmq[length],
            self._block_maxima[length],
            sp,
            ep,
            length,
            log_threshold,
        )
        positions, values = self._scan_ranks(ranks, length, log_threshold)
        return occurrences_from_log_values(positions, values)

    def _query_scan(
        self, sp: int, ep: int, length: int, log_threshold: float
    ) -> List[Occurrence]:
        positions, values = self._scan_ranks(
            np.arange(sp, ep + 1, dtype=np.int64), length, log_threshold
        )
        return occurrences_from_log_values(positions, values)

    def _scan_ranks(
        self, ranks: np.ndarray, length: int, log_threshold: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Positions and window log-probabilities above the threshold.

        Array-native scan of the given lexicographic ranks: one gather into
        the suffix array, one cumulative-probability subtraction and one
        comparison — no per-rank Python work on the uncorrelated path.
        Correlated strings still walk rank by rank (every window needs the
        correlation adjustment), returning the same array shape.
        """
        # Widen before the window arithmetic: a compacted suffix array is
        # uint8/16/32 and ``positions + length`` can exceed its dtype range.
        positions = self._suffix_array.array[ranks].astype(np.int64, copy=False)
        if not self._correlations:
            in_range = positions + length <= len(self._string)
            candidates = positions[in_range]
            values = self._prefix[candidates + length] - self._prefix[candidates]
            keep = values > log_threshold
            return candidates[keep], values[keep]
        kept_positions: List[int] = []
        kept_values: List[float] = []
        for position in positions:
            value = correlation_adjusted_window_log_probability(
                self._prefix,
                int(position),
                length,
                self._correlations,
                self._string.text,
                self._string.probabilities,
            )
            if value > log_threshold:
                kept_positions.append(int(position))
                kept_values.append(value)
        return (
            np.asarray(kept_positions, dtype=np.int64),
            np.asarray(kept_values, dtype=np.float64),
        )
