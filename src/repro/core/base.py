"""Shared result types and helpers for the uncertain-string indexes.

Every index in :mod:`repro.core` answers queries with the same vocabulary:

* :class:`Occurrence` — one position of the indexed uncertain string where
  the query pattern occurs with probability above the threshold.
* :class:`ListingMatch` — one document of a collection that contains the
  pattern with relevance above the threshold (Section 6).

The module also hosts :func:`report_above_threshold`, the recursive
range-maximum reporting routine shared by the efficient indexes
(Algorithm 2 / Algorithm 4 of the paper): repeatedly extract the maximum of
a value array inside a suffix range and recurse on both sides until the
maximum drops below the threshold.
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

from .._validation import check_threshold

#: Smallest threshold substituted when a ``top_k`` caller passes ``tau=None``
#: to an index whose ``tau_min`` is zero (thresholds enter log space, so an
#: exact zero is not representable).  Every index resolves the default the
#: same way through :func:`resolve_tau`.
DEFAULT_TAU_FLOOR = 1e-9


def resolve_tau(tau: Optional[float], tau_min: float) -> float:
    """Resolve the unified ``tau=None`` default of the ``top_k`` methods.

    ``None`` means *everything the index can see*: the construction threshold
    ``tau_min`` when it is positive (an index cannot report occurrences below
    it), and :data:`DEFAULT_TAU_FLOOR` for indexes that support any positive
    threshold (``tau_min == 0``).  An explicit ``tau`` is validated and used
    as-is.
    """
    if tau is None:
        return max(float(tau_min), DEFAULT_TAU_FLOOR)
    return check_threshold(tau)


@dataclass(frozen=True, order=True)
class Occurrence:
    """One probable occurrence of a pattern in an uncertain string.

    Attributes
    ----------
    position:
        Zero-based starting position in the *original* uncertain string.
    probability:
        Probability of occurrence of the pattern at that position.
    """

    position: int
    probability: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", int(self.position))
        object.__setattr__(self, "probability", float(self.probability))


@dataclass(frozen=True, order=True)
class ListingMatch:
    """One document reported by the string-listing index.

    Attributes
    ----------
    document:
        Document identifier within the indexed collection.
    relevance:
        Relevance value of the pattern in the document under the index's
        configured relevance metric (Section 6).
    """

    document: int
    relevance: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "document", int(self.document))
        object.__setattr__(self, "relevance", float(self.relevance))


class SupportsRangeMaximum(Protocol):
    """Minimal protocol required of RMQ structures by the reporting routine."""

    def query(self, left: int, right: int) -> int:  # pragma: no cover - protocol
        ...


def report_above_threshold(
    rmq: SupportsRangeMaximum,
    values: np.ndarray,
    left: int,
    right: int,
    threshold: float,
) -> Iterator[int]:
    """Yield indices in ``[left, right]`` whose value exceeds ``threshold``.

    Implements the recursive range-maximum reporting of the paper
    (Algorithm 2): query the RMQ for the maximum of the range; when it
    exceeds the threshold, report it and recurse into the two sub-ranges on
    either side; otherwise prune the whole range.  The work is therefore
    proportional to the number of reported indices (each report spawns at
    most two further RMQ probes).

    Parameters
    ----------
    rmq:
        A range *maximum* query structure built over ``values``.
    values:
        The value array the RMQ was built over (used to validate maxima).
    left, right:
        Inclusive range to report from.  An empty range (``left > right``)
        yields nothing.
    threshold:
        Strict lower bound on reported values.
    """
    if left > right:
        return
    # Explicit stack instead of recursion: suffix ranges can contain hundreds
    # of thousands of entries and Python's recursion limit is modest.
    stack: List[Tuple[int, int]] = [(left, right)]
    while stack:
        low, high = stack.pop()
        if low > high:
            continue
        best = rmq.query(low, high)
        if values[best] <= threshold:
            continue
        yield best
        if best > low:
            stack.append((low, best - 1))
        if best < high:
            stack.append((best + 1, high))


#: Bound on the extra entries :func:`top_values_above_threshold` extracts to
#: resolve value ties at the ``k``-th place.  Tie classes up to this size get
#: a deterministic tie-break; beyond it (realistically only runs of certain
#: characters, where every window ties at probability 1.0) the selection
#: within the boundary tie class is unspecified — the alternative would be
#: O(occ) work on every ``top_k`` over deterministic text.
TIE_EXTRACTION_LIMIT = 1024


def top_values_above_threshold(
    rmq: SupportsRangeMaximum,
    values: np.ndarray,
    left: int,
    right: int,
    k: int,
    threshold: float,
    *,
    include_ties: bool = False,
) -> List[int]:
    """Indices of the ``k`` largest values above ``threshold`` in ``[left, right]``.

    Heap-driven variant of :func:`report_above_threshold`: the candidate
    ranges are kept in a max-heap keyed by their range maximum, so the
    ``k`` largest entries are extracted in ``O((k + 1) log k)`` RMQ probes
    without visiting the rest of the range.  Used by the ``top_k`` query
    methods of the indexes.

    With ``include_ties`` the extraction continues past ``k`` while further
    entries tie the ``k``-th value exactly, up to
    :data:`TIE_EXTRACTION_LIMIT` extra entries (``O(k + t)`` probes for a
    boundary tie class of size ``t``).  Callers that promise a
    deterministic tie-break need this: the heap alone pops ties in
    suffix-rank discovery order, so a truncated extraction would keep an
    arbitrary subset of a tie class.  The limit keeps degenerate inputs
    (deterministic text, every window probability 1.0) output-sensitive
    instead of extracting the whole suffix range.
    """
    if left > right or k <= 0:
        return []
    results: List[int] = []
    last_kept = 0.0
    limit = k + TIE_EXTRACTION_LIMIT if include_ties else k
    best = rmq.query(left, right)
    heap: List[Tuple[float, int, int, int]] = [(-float(values[best]), best, left, right)]
    while heap and len(results) < limit:
        value = -heap[0][0]
        if value <= threshold:
            break
        if len(results) >= k and value != last_kept:
            break
        _, index, low, high = heapq.heappop(heap)
        results.append(index)
        last_kept = value
        if index > low:
            candidate = rmq.query(low, index - 1)
            heapq.heappush(heap, (-float(values[candidate]), candidate, low, index - 1))
        if index < high:
            candidate = rmq.query(index + 1, high)
            heapq.heappush(heap, (-float(values[candidate]), candidate, index + 1, high))
    return results


class UncertainSubstringIndex(abc.ABC):
    """Abstract interface of every substring-searching index in the package.

    Concrete indexes implement :meth:`query` (threshold reporting) and may
    override :meth:`top_k` with an output-sensitive strategy; the base class
    provides a correct (query-then-sort) default so every index answers the
    same vocabulary.  The unified ``top_k`` signature is::

        top_k(pattern, k, *, tau=None)

    where ``tau=None`` resolves through :func:`resolve_tau` — ``tau_min`` for
    indexes with a construction threshold, :data:`DEFAULT_TAU_FLOOR`
    otherwise — and results are ordered by decreasing probability with ties
    broken by position.

    Space accounting is part of the interface: every index reports its
    payload through :meth:`nbytes`, and :meth:`space_report` breaks the
    footprint down by component (indexes with several components override
    it; the default reports a single ``total`` entry).
    """

    @property
    @abc.abstractmethod
    def tau_min(self) -> float:
        """Smallest query threshold the index supports."""

    @abc.abstractmethod
    def query(self, pattern: str, tau: float) -> List[Occurrence]:
        """Report occurrences of ``pattern`` with probability above ``tau``."""

    @abc.abstractmethod
    def nbytes(self) -> int:
        """Approximate memory footprint of the index payload in bytes."""

    def space_report(self) -> Dict[str, int]:
        """Byte sizes of the index components (at least a ``total`` entry)."""
        return {"total": int(self.nbytes())}

    def top_k(self, pattern: str, k: int, *, tau: Optional[float] = None) -> List[Occurrence]:
        """Report the ``k`` most probable occurrences of ``pattern``.

        Default implementation: query at the resolved threshold, sort by
        decreasing probability (ties by position) and keep the first ``k``.
        Indexes with per-length RMQ structures override this with the
        heap-driven ``O(k)``-probe extraction.

        The RMQ overrides include occurrences sitting exactly on ``tau``
        (they compare with a 1e-12 tolerance); the default mirrors that by
        querying a hair below the floor — clamped to ``tau_min``, since the
        public ``query`` cannot go beneath the construction threshold — so
        planner-substitutable indexes (e.g. special vs simple) agree.
        """
        if k <= 0:
            from ..exceptions import ValidationError

            raise ValidationError(f"k must be positive, got {k}")
        # An explicit tau below the construction threshold is an error, the
        # same one the overriding indexes raise — the clamp below is only a
        # tolerance adjustment, never a silent repair of an invalid request.
        if tau is not None:
            check_threshold(tau, tau_min=self.tau_min)
        floor = resolve_tau(tau, self.tau_min)
        adjusted = max(floor * (1.0 - 1e-12), self.tau_min, DEFAULT_TAU_FLOOR)
        occurrences = list(self.query(pattern, adjusted))
        occurrences.sort(key=lambda occurrence: (-occurrence.probability, occurrence.position))
        return occurrences[:k]

    def count(self, pattern: str, tau: float) -> int:
        """Number of occurrences of ``pattern`` with probability above ``tau``."""
        return len(self.query(pattern, tau))

    def exists(self, pattern: str, tau: float) -> bool:
        """Whether ``pattern`` occurs anywhere with probability above ``tau``."""
        return bool(self.query(pattern, tau))


def translate_match(
    match: Union[Occurrence, ListingMatch],
    *,
    position_offset: int = 0,
    document_offset: int = 0,
) -> Union[Occurrence, ListingMatch]:
    """Shift a match from shard-local to global coordinates.

    Sharded engines build each per-shard index over a slice of the input, so
    an :class:`Occurrence` reports a chunk-local position and a
    :class:`ListingMatch` a shard-local document identifier; this helper
    re-bases either onto the full input.  Probabilities and relevances are
    untouched — the value of a match depends only on the window content,
    never on where the window sits.
    """
    if isinstance(match, Occurrence):
        if position_offset == 0:
            return match
        return Occurrence(match.position + position_offset, match.probability)
    if isinstance(match, ListingMatch):
        if document_offset == 0:
            return match
        return ListingMatch(match.document + document_offset, match.relevance)
    raise TypeError(
        f"cannot translate a {type(match).__name__}; expected Occurrence or ListingMatch"
    )


def sort_occurrences(occurrences: Sequence[Occurrence]) -> List[Occurrence]:
    """Return occurrences sorted by position (the order the paper reports)."""
    return sorted(occurrences, key=lambda occurrence: occurrence.position)


def sort_listing_matches(matches: Sequence[ListingMatch]) -> List[ListingMatch]:
    """Return listing matches sorted by document identifier."""
    return sorted(matches, key=lambda match: match.document)
