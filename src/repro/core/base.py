"""Shared result types and helpers for the uncertain-string indexes.

Every index in :mod:`repro.core` answers queries with the same vocabulary:

* :class:`Occurrence` — one position of the indexed uncertain string where
  the query pattern occurs with probability above the threshold.
* :class:`ListingMatch` — one document of a collection that contains the
  pattern with relevance above the threshold (Section 6).

The module also hosts :func:`report_above_threshold`, the recursive
range-maximum reporting routine shared by the efficient indexes
(Algorithm 2 / Algorithm 4 of the paper): repeatedly extract the maximum of
a value array inside a suffix range and recurse on both sides until the
maximum drops below the threshold.
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass
from typing import Iterator, List, Protocol, Sequence, Tuple

import numpy as np


@dataclass(frozen=True, order=True)
class Occurrence:
    """One probable occurrence of a pattern in an uncertain string.

    Attributes
    ----------
    position:
        Zero-based starting position in the *original* uncertain string.
    probability:
        Probability of occurrence of the pattern at that position.
    """

    position: int
    probability: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", int(self.position))
        object.__setattr__(self, "probability", float(self.probability))


@dataclass(frozen=True, order=True)
class ListingMatch:
    """One document reported by the string-listing index.

    Attributes
    ----------
    document:
        Document identifier within the indexed collection.
    relevance:
        Relevance value of the pattern in the document under the index's
        configured relevance metric (Section 6).
    """

    document: int
    relevance: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "document", int(self.document))
        object.__setattr__(self, "relevance", float(self.relevance))


class SupportsRangeMaximum(Protocol):
    """Minimal protocol required of RMQ structures by the reporting routine."""

    def query(self, left: int, right: int) -> int:  # pragma: no cover - protocol
        ...


def report_above_threshold(
    rmq: SupportsRangeMaximum,
    values: np.ndarray,
    left: int,
    right: int,
    threshold: float,
) -> Iterator[int]:
    """Yield indices in ``[left, right]`` whose value exceeds ``threshold``.

    Implements the recursive range-maximum reporting of the paper
    (Algorithm 2): query the RMQ for the maximum of the range; when it
    exceeds the threshold, report it and recurse into the two sub-ranges on
    either side; otherwise prune the whole range.  The work is therefore
    proportional to the number of reported indices (each report spawns at
    most two further RMQ probes).

    Parameters
    ----------
    rmq:
        A range *maximum* query structure built over ``values``.
    values:
        The value array the RMQ was built over (used to validate maxima).
    left, right:
        Inclusive range to report from.  An empty range (``left > right``)
        yields nothing.
    threshold:
        Strict lower bound on reported values.
    """
    if left > right:
        return
    # Explicit stack instead of recursion: suffix ranges can contain hundreds
    # of thousands of entries and Python's recursion limit is modest.
    stack: List[Tuple[int, int]] = [(left, right)]
    while stack:
        low, high = stack.pop()
        if low > high:
            continue
        best = rmq.query(low, high)
        if values[best] <= threshold:
            continue
        yield best
        if best > low:
            stack.append((low, best - 1))
        if best < high:
            stack.append((best + 1, high))


def top_values_above_threshold(
    rmq: SupportsRangeMaximum,
    values: np.ndarray,
    left: int,
    right: int,
    k: int,
    threshold: float,
) -> List[int]:
    """Indices of the ``k`` largest values above ``threshold`` in ``[left, right]``.

    Heap-driven variant of :func:`report_above_threshold`: the candidate
    ranges are kept in a max-heap keyed by their range maximum, so the
    ``k`` largest entries are extracted in ``O((k + 1) log k)`` RMQ probes
    without visiting the rest of the range.  Used by the ``top_k`` query
    methods of the indexes.
    """
    if left > right or k <= 0:
        return []
    results: List[int] = []
    best = rmq.query(left, right)
    heap: List[Tuple[float, int, int, int]] = [(-float(values[best]), best, left, right)]
    while heap and len(results) < k:
        negative_value, index, low, high = heapq.heappop(heap)
        if -negative_value <= threshold:
            break
        results.append(index)
        if index > low:
            candidate = rmq.query(low, index - 1)
            heapq.heappush(heap, (-float(values[candidate]), candidate, low, index - 1))
        if index < high:
            candidate = rmq.query(index + 1, high)
            heapq.heappush(heap, (-float(values[candidate]), candidate, index + 1, high))
    return results


class UncertainSubstringIndex(abc.ABC):
    """Abstract interface of every substring-searching index in the package."""

    @property
    @abc.abstractmethod
    def tau_min(self) -> float:
        """Smallest query threshold the index supports."""

    @abc.abstractmethod
    def query(self, pattern: str, tau: float) -> List[Occurrence]:
        """Report occurrences of ``pattern`` with probability above ``tau``."""

    def count(self, pattern: str, tau: float) -> int:
        """Number of occurrences of ``pattern`` with probability above ``tau``."""
        return len(self.query(pattern, tau))

    def exists(self, pattern: str, tau: float) -> bool:
        """Whether ``pattern`` occurs anywhere with probability above ``tau``."""
        return bool(self.query(pattern, tau))


def sort_occurrences(occurrences: Sequence[Occurrence]) -> List[Occurrence]:
    """Return occurrences sorted by position (the order the paper reports)."""
    return sorted(occurrences, key=lambda occurrence: occurrence.position)


def sort_listing_matches(matches: Sequence[ListingMatch]) -> List[ListingMatch]:
    """Return listing matches sorted by document identifier."""
    return sorted(matches, key=lambda match: match.document)
