"""Shared result types and helpers for the uncertain-string indexes.

Every index in :mod:`repro.core` answers queries with the same vocabulary:

* :class:`Occurrence` — one position of the indexed uncertain string where
  the query pattern occurs with probability above the threshold.
* :class:`ListingMatch` — one document of a collection that contains the
  pattern with relevance above the threshold (Section 6).

The module also hosts the range-maximum reporting kernels shared by the
efficient indexes (Algorithm 2 / Algorithm 4 of the paper): repeatedly
extract the maximum of a value array inside a suffix range and recurse on
both sides until the maximum drops below the threshold.  The production
kernels — :func:`report_above_threshold` and
:func:`top_values_above_threshold` — are *vectorized*: they drive the whole
frontier of live sub-ranges through ``rmq.query_batch`` and return numpy
rank arrays, so no Python-level RMQ probe runs per reported occurrence.
The original per-probe implementations remain as
:func:`report_above_threshold_scalar` /
:func:`top_values_above_threshold_scalar`, the reference the property-based
equivalence suite pins the vectorized kernels against.
"""

from __future__ import annotations

# repro-check: hot-path — the reporting kernels here must stay vectorized;
# per-element Python work is only allowed in the *_scalar reference twins.

import abc
import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

from .._validation import check_threshold
from ..payload import IndexPayload

#: Smallest threshold substituted when a ``top_k`` caller passes ``tau=None``
#: to an index whose ``tau_min`` is zero (thresholds enter log space, so an
#: exact zero is not representable).  Every index resolves the default the
#: same way through :func:`resolve_tau`.
DEFAULT_TAU_FLOOR = 1e-9


def resolve_tau(tau: Optional[float], tau_min: float) -> float:
    """Resolve the unified ``tau=None`` default of the ``top_k`` methods.

    ``None`` means *everything the index can see*: the construction threshold
    ``tau_min`` when it is positive (an index cannot report occurrences below
    it), and :data:`DEFAULT_TAU_FLOOR` for indexes that support any positive
    threshold (``tau_min == 0``).  An explicit ``tau`` is validated and used
    as-is.
    """
    if tau is None:
        return max(float(tau_min), DEFAULT_TAU_FLOOR)
    return check_threshold(tau)


@dataclass(frozen=True, order=True)
class Occurrence:
    """One probable occurrence of a pattern in an uncertain string.

    Attributes
    ----------
    position:
        Zero-based starting position in the *original* uncertain string.
    probability:
        Probability of occurrence of the pattern at that position.
    """

    position: int
    probability: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", int(self.position))
        object.__setattr__(self, "probability", float(self.probability))


@dataclass(frozen=True, order=True)
class ListingMatch:
    """One document reported by the string-listing index.

    Attributes
    ----------
    document:
        Document identifier within the indexed collection.
    relevance:
        Relevance value of the pattern in the document under the index's
        configured relevance metric (Section 6).
    """

    document: int
    relevance: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "document", int(self.document))
        object.__setattr__(self, "relevance", float(self.relevance))


class SupportsRangeMaximum(Protocol):
    """Minimal protocol required of RMQ structures by the reporting routine."""

    def query(self, left: int, right: int) -> int:  # pragma: no cover - protocol
        ...

    def query_batch(
        self, lefts: Sequence[int], rights: Sequence[int]
    ) -> np.ndarray:  # pragma: no cover - protocol
        ...


def report_above_threshold_scalar(
    rmq: SupportsRangeMaximum,
    values: np.ndarray,
    left: int,
    right: int,
    threshold: float,
) -> Iterator[int]:
    """Yield indices in ``[left, right]`` whose value exceeds ``threshold``.

    Scalar reference implementation of the recursive range-maximum
    reporting of the paper (Algorithm 2): query the RMQ for the maximum of
    the range; when it exceeds the threshold, report it and recurse into
    the two sub-ranges on either side; otherwise prune the whole range.
    The work is proportional to the number of reported indices (each
    report spawns at most two further RMQ probes), but every probe is a
    Python-level call — the production path is the vectorized
    :func:`report_above_threshold`, which the equivalence test suite pins
    to this generator.
    """
    if left > right:
        return
    # Explicit stack instead of recursion: suffix ranges can contain hundreds
    # of thousands of entries and Python's recursion limit is modest.
    stack: List[Tuple[int, int]] = [(left, right)]
    while stack:
        low, high = stack.pop()
        if low > high:
            continue
        best = rmq.query(low, high)
        if values[best] <= threshold:
            continue
        yield best
        if best > low:
            stack.append((low, best - 1))
        if best < high:
            stack.append((best + 1, high))


def report_above_threshold(
    rmq: SupportsRangeMaximum,
    values: np.ndarray,
    left: int,
    right: int,
    threshold: float,
) -> np.ndarray:
    """Indices in ``[left, right]`` whose value exceeds ``threshold``.

    Vectorized reporting kernel (Algorithm 2, batched): instead of probing
    the RMQ once per reported index, the whole *frontier* of live
    sub-ranges is answered by one :meth:`query_batch` call per round.
    Every round reports all frontier maxima above the threshold and splits
    their ranges; the number of Python-level rounds is the depth of the
    reporting recursion (logarithmic in the output size for typical value
    distributions) while the total RMQ work stays ``O(occ)``.

    Returns the reported indices as an ``int64`` array.  The set of
    indices is exactly what :func:`report_above_threshold_scalar` yields,
    but the order is frontier (breadth-first) order — callers sort by
    position/document before reporting, so no public answer depends on it.

    Parameters
    ----------
    rmq:
        A range *maximum* query structure built over ``values``.
    values:
        The value array the RMQ was built over (used to validate maxima).
    left, right:
        Inclusive range to report from.  An empty range (``left > right``)
        reports nothing.
    threshold:
        Strict lower bound on reported values.
    """
    if left > right:
        return np.empty(0, dtype=np.int64)
    lows = np.array([left], dtype=np.int64)
    highs = np.array([right], dtype=np.int64)
    reported: List[np.ndarray] = []
    while lows.size:
        best = rmq.query_batch(lows, highs)
        keep = values[best] > threshold
        lows, highs, best = lows[keep], highs[keep], best[keep]
        if best.size == 0:
            break
        reported.append(best)
        child_lows = np.concatenate([lows, best + 1])
        child_highs = np.concatenate([best - 1, highs])
        nonempty = child_lows <= child_highs
        lows = child_lows[nonempty]
        highs = child_highs[nonempty]
    if not reported:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(reported)


#: Bound on the extra entries :func:`top_values_above_threshold` extracts to
#: resolve value ties at the ``k``-th place.  Tie classes up to this size get
#: a deterministic tie-break; beyond it (realistically only runs of certain
#: characters, where every window ties at probability 1.0) the selection
#: within the boundary tie class is unspecified — the alternative would be
#: O(occ) work on every ``top_k`` over deterministic text.
TIE_EXTRACTION_LIMIT = 1024


def top_values_above_threshold_scalar(
    rmq: SupportsRangeMaximum,
    values: np.ndarray,
    left: int,
    right: int,
    k: int,
    threshold: float,
    *,
    include_ties: bool = False,
) -> List[int]:
    """Indices of the ``k`` largest values above ``threshold`` in ``[left, right]``.

    Scalar reference implementation, heap-driven: the candidate ranges are
    kept in a max-heap keyed by their range maximum, so the ``k`` largest
    entries are extracted in ``O((k + 1) log k)`` RMQ probes without
    visiting the rest of the range — but every probe is a Python-level
    call.  The production path is the batched
    :func:`top_values_above_threshold`, pinned to this one by the
    equivalence test suite.

    With ``include_ties`` the extraction continues past ``k`` while further
    entries tie the ``k``-th value exactly, up to
    :data:`TIE_EXTRACTION_LIMIT` extra entries (``O(k + t)`` probes for a
    boundary tie class of size ``t``).  Callers that promise a
    deterministic tie-break need this: the heap alone pops ties in
    suffix-rank discovery order, so a truncated extraction would keep an
    arbitrary subset of a tie class.  The limit keeps degenerate inputs
    (deterministic text, every window probability 1.0) output-sensitive
    instead of extracting the whole suffix range.
    """
    if left > right or k <= 0:
        return []
    results: List[int] = []
    last_kept = 0.0
    limit = k + TIE_EXTRACTION_LIMIT if include_ties else k
    best = rmq.query(left, right)
    heap: List[Tuple[float, int, int, int]] = [(-float(values[best]), best, left, right)]
    while heap and len(results) < limit:
        value = -heap[0][0]
        if value <= threshold:
            break
        if len(results) >= k and value != last_kept:
            break
        _, index, low, high = heapq.heappop(heap)
        results.append(index)
        last_kept = value
        if index > low:
            candidate = rmq.query(low, index - 1)
            heapq.heappush(heap, (-float(values[candidate]), candidate, low, index - 1))
        if index < high:
            candidate = rmq.query(index + 1, high)
            heapq.heappush(heap, (-float(values[candidate]), candidate, index + 1, high))
    return results


def _sort_by_value_then_rank(
    rank_chunks: List[np.ndarray], value_chunks: List[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate popped chunks and sort by ``(-value, rank)``.

    Shared by the in-loop stop check and the final truncation of
    :func:`top_values_above_threshold`, so the early-stop bound and the
    returned prefix always use the same ordering.
    """
    ranks = np.concatenate(rank_chunks)
    ordered_values = np.concatenate(value_chunks)
    order = np.lexsort((ranks, -ordered_values))
    return ranks[order], ordered_values[order]


def top_values_above_threshold(
    rmq: SupportsRangeMaximum,
    values: np.ndarray,
    left: int,
    right: int,
    k: int,
    threshold: float,
    *,
    include_ties: bool = False,
) -> np.ndarray:
    """Indices of the ``k`` largest values above ``threshold`` in ``[left, right]``.

    Batched variant of :func:`top_values_above_threshold_scalar`: the
    frontier of candidate ranges lives in parallel numpy arrays, every
    round pops the best ``p`` frontier entries at once (``p`` doubling each
    round, so the number of Python-level rounds is ``O(log k)``) and
    answers all of their children with a single :meth:`query_batch` call.
    The extraction stops as soon as no frontier maximum can still reach the
    result, using the same threshold / ``k``-th-value / tie rules as the
    scalar reference.

    Returns an ``int64`` array of indices sorted by ``(-value, index)``.
    With an RMQ whose ``query`` returns the *leftmost* optimum (the sparse
    table does), this is exactly the scalar heap's pop order; block RMQs
    may discover a within-tie-class member in a different order, but with
    ``include_ties`` the returned *set* is identical whenever the boundary
    tie class fits the :data:`TIE_EXTRACTION_LIMIT` budget — the same
    caveat the scalar version documents.  Without ``include_ties`` a tie
    class straddling the ``k`` boundary is truncated to its smallest-index
    members here versus heap-discovery-order members in the scalar
    reference (identical values either way); every index calls with
    ``include_ties=True``, where both kernels keep the whole class.
    """
    if left > right or k <= 0:
        return np.empty(0, dtype=np.int64)
    limit = k + TIE_EXTRACTION_LIMIT if include_ties else k

    lows = np.array([left], dtype=np.int64)
    highs = np.array([right], dtype=np.int64)
    args = rmq.query_batch(lows, highs)
    vals = values[args]
    keep = vals > threshold
    lows, highs, args, vals = lows[keep], highs[keep], args[keep], vals[keep]

    popped_ranks: List[np.ndarray] = []
    popped_vals: List[np.ndarray] = []
    count = 0
    pop_budget = 1
    while args.size:
        if count >= k:
            sorted_ranks, sorted_vals = _sort_by_value_then_rank(
                popped_ranks, popped_vals
            )
            frontier_max = vals.max()
            if count >= limit:
                bound_val = sorted_vals[limit - 1]
                if frontier_max < bound_val:
                    break
                if frontier_max == bound_val:
                    # Only a same-valued entry at a smaller index could still
                    # displace the current limit-boundary entry.
                    tied = vals == frontier_max
                    if int(args[tied].min()) > int(sorted_ranks[limit - 1]):
                        break
            elif frontier_max < sorted_vals[k - 1]:
                # Strictly below the k-th value: nothing left to report
                # (equal values continue — they are boundary ties).
                break
        pop = min(pop_budget, args.size)
        pop_budget *= 2
        order = np.lexsort((args, -vals))
        best, rest = order[:pop], order[pop:]
        popped_ranks.append(args[best])
        popped_vals.append(vals[best])
        count += pop
        child_lows = np.concatenate([lows[best], args[best] + 1])
        child_highs = np.concatenate([args[best] - 1, highs[best]])
        nonempty = child_lows <= child_highs
        child_lows = child_lows[nonempty]
        child_highs = child_highs[nonempty]
        child_args = rmq.query_batch(child_lows, child_highs)
        child_vals = values[child_args]
        child_keep = child_vals > threshold
        lows = np.concatenate([lows[rest], child_lows[child_keep]])
        highs = np.concatenate([highs[rest], child_highs[child_keep]])
        args = np.concatenate([args[rest], child_args[child_keep]])
        vals = np.concatenate([vals[rest], child_vals[child_keep]])
    if count == 0:
        return np.empty(0, dtype=np.int64)
    sorted_ranks, sorted_vals = _sort_by_value_then_rank(popped_ranks, popped_vals)
    keep_count = min(k, len(sorted_ranks))
    if include_ties and len(sorted_ranks) > keep_count:
        # Extend through the boundary tie class (values sorted descending,
        # so the tie class is the contiguous run equal to the k-th value).
        boundary = sorted_vals[keep_count - 1]
        tie_end = int(np.searchsorted(-sorted_vals, -boundary, side="right"))
        keep_count = min(limit, max(keep_count, tie_end), len(sorted_ranks))
    return sorted_ranks[:keep_count]


def restore_child_rmq(
    payload: IndexPayload,
    name: str,
    values: np.ndarray,
    *,
    implementation: str = "sparse",
) -> "SupportsRangeMaximum":
    """Restore (or rebuild) the RMQ stored as child ``name`` of ``payload``.

    When the child payload is present the structure restores in
    O(n/b · log n) work through :func:`repro.suffix.rmq.rmq_from_payload`;
    an absent child — a payload assembled from a legacy version-1 archive —
    falls back to rebuilding from the value array, exactly as the original
    loader did.
    """
    from ..suffix.rmq import make_rmq, rmq_from_payload

    child = payload.children.get(name)
    if child is not None:
        return rmq_from_payload(values, child)
    return make_rmq(values, mode="max", implementation=implementation)


class PayloadSerializable:
    """Mixin deriving space accounting from the payload schema.

    Indexes that implement :meth:`to_payload` — the single definition of
    "what this index is made of" (see :mod:`repro.payload`) — get
    :meth:`nbytes` and :meth:`space_report` for free: the footprint is the
    payload's arrays (stored + derived, recursively through children), and
    the component breakdown is the payload's name structure.  Nothing is
    hand-maintained per kind, so persistence, IPC and space accounting can
    never disagree about an index's contents.
    """

    def to_payload(self) -> IndexPayload:
        """The versioned array-schema payload describing this structure."""
        raise NotImplementedError(
            f"{type(self).__name__} does not define a payload schema"
        )

    def nbytes(self) -> int:
        """Approximate memory footprint of the index payload in bytes."""
        return int(self.space_report()["total"])

    def space_report(self) -> Dict[str, int]:
        """Byte sizes of the index components (derived from the payload schema).

        Computed once and cached: indexes are immutable after construction
        (hot swaps replace the whole index object), and deriving the
        report means building the payload — including its JSON-safe input
        manifest — which is O(index size).  Only the small name → bytes
        dict is retained; the payload itself is dropped.
        """
        cached = self.__dict__.get("_space_report_cache")
        if cached is None:
            try:
                cached = self.to_payload().space_report()
            except NotImplementedError:
                # Structures without a payload schema (baselines) that
                # override nbytes() still answer the interface with a
                # single total.
                if type(self).nbytes is PayloadSerializable.nbytes:
                    raise
                cached = {"total": int(self.nbytes())}
            self.__dict__["_space_report_cache"] = cached
        return dict(cached)


class UncertainSubstringIndex(PayloadSerializable, abc.ABC):
    """Abstract interface of every substring-searching index in the package.

    Concrete indexes implement :meth:`query` (threshold reporting) and may
    override :meth:`top_k` with an output-sensitive strategy; the base class
    provides a correct (query-then-sort) default so every index answers the
    same vocabulary.  The unified ``top_k`` signature is::

        top_k(pattern, k, *, tau=None)

    where ``tau=None`` resolves through :func:`resolve_tau` — ``tau_min`` for
    indexes with a construction threshold, :data:`DEFAULT_TAU_FLOOR`
    otherwise — and results are ordered by decreasing probability with ties
    broken by position.

    Space accounting is part of the interface, derived from the payload
    schema by :class:`PayloadSerializable`: indexes that define
    :meth:`to_payload` report :meth:`nbytes` / :meth:`space_report`
    automatically; structures without a payload schema (the baselines)
    override :meth:`nbytes` directly.
    """

    @property
    @abc.abstractmethod
    def tau_min(self) -> float:
        """Smallest query threshold the index supports."""

    @abc.abstractmethod
    def query(self, pattern: str, tau: float) -> List[Occurrence]:
        """Report occurrences of ``pattern`` with probability above ``tau``."""

    def top_k(self, pattern: str, k: int, *, tau: Optional[float] = None) -> List[Occurrence]:
        """Report the ``k`` most probable occurrences of ``pattern``.

        Default implementation: query at the resolved threshold, sort by
        decreasing probability (ties by position) and keep the first ``k``.
        Indexes with per-length RMQ structures override this with the
        heap-driven ``O(k)``-probe extraction.

        The RMQ overrides include occurrences sitting exactly on ``tau``
        (they compare with a 1e-12 tolerance); the default mirrors that by
        querying a hair below the floor — clamped to ``tau_min``, since the
        public ``query`` cannot go beneath the construction threshold — so
        planner-substitutable indexes (e.g. special vs simple) agree.
        """
        if k <= 0:
            from ..exceptions import ValidationError

            raise ValidationError(f"k must be positive, got {k}")
        # An explicit tau below the construction threshold is an error, the
        # same one the overriding indexes raise — the clamp below is only a
        # tolerance adjustment, never a silent repair of an invalid request.
        if tau is not None:
            check_threshold(tau, tau_min=self.tau_min)
        floor = resolve_tau(tau, self.tau_min)
        adjusted = max(floor * (1.0 - 1e-12), self.tau_min, DEFAULT_TAU_FLOOR)
        occurrences = list(self.query(pattern, adjusted))
        occurrences.sort(key=lambda occurrence: (-occurrence.probability, occurrence.position))
        return occurrences[:k]

    def count(self, pattern: str, tau: float) -> int:
        """Number of occurrences of ``pattern`` with probability above ``tau``."""
        return len(self.query(pattern, tau))

    def exists(self, pattern: str, tau: float) -> bool:
        """Whether ``pattern`` occurs anywhere with probability above ``tau``."""
        return bool(self.query(pattern, tau))


def translate_match(
    match: Union[Occurrence, ListingMatch],
    *,
    position_offset: int = 0,
    document_offset: int = 0,
) -> Union[Occurrence, ListingMatch]:
    """Shift a match from shard-local to global coordinates.

    Sharded engines build each per-shard index over a slice of the input, so
    an :class:`Occurrence` reports a chunk-local position and a
    :class:`ListingMatch` a shard-local document identifier; this helper
    re-bases either onto the full input.  Probabilities and relevances are
    untouched — the value of a match depends only on the window content,
    never on where the window sits.
    """
    if isinstance(match, Occurrence):
        if position_offset == 0:
            return match
        return Occurrence(match.position + position_offset, match.probability)
    if isinstance(match, ListingMatch):
        if document_offset == 0:
            return match
        return ListingMatch(match.document + document_offset, match.relevance)
    raise TypeError(
        f"cannot translate a {type(match).__name__}; expected Occurrence or ListingMatch"
    )


def matches_to_arrays(
    matches: Sequence[Union[Occurrence, ListingMatch]],
) -> Tuple[str, np.ndarray, np.ndarray]:
    """Decompose a match list into ``(kind, ids, values)`` array payloads.

    The inverse of :func:`matches_from_arrays`; together they are the
    process-boundary wire format of the multi-process shard workers: a
    worker answers with two flat ndarrays instead of pickling one dataclass
    object per match, and the parent rebuilds the objects at the merge
    boundary.  ``kind`` is ``"occurrence"`` or ``"listing"``; ``ids`` holds
    positions (occurrences) or document identifiers (listing matches) and
    ``values`` the probabilities / relevances.  Order is preserved, and the
    ``int`` / ``float`` fields round-trip exactly (int64 / float64), so the
    rebuilt matches compare equal to the originals.
    """
    if matches and isinstance(matches[0], ListingMatch):
        kind = "listing"
        ids = np.fromiter((match.document for match in matches), dtype=np.int64, count=len(matches))
        values = np.fromiter((match.relevance for match in matches), dtype=np.float64, count=len(matches))
        return kind, ids, values
    ids = np.fromiter((match.position for match in matches), dtype=np.int64, count=len(matches))
    values = np.fromiter((match.probability for match in matches), dtype=np.float64, count=len(matches))
    return "occurrence", ids, values


def matches_from_arrays(
    kind: str, ids: np.ndarray, values: np.ndarray
) -> List[Union[Occurrence, ListingMatch]]:
    """Rebuild the match list :func:`matches_to_arrays` decomposed."""
    if kind == "occurrence":
        return [
            Occurrence(int(position), float(value))
            for position, value in zip(ids, values)
        ]
    if kind == "listing":
        return [
            ListingMatch(int(document), float(value))
            for document, value in zip(ids, values)
        ]
    raise ValueError(f"unknown match payload kind {kind!r}")


def expand_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate the inclusive integer ranges ``[starts[i], ends[i]]``.

    Vectorized replacement for ``concatenate([arange(s, e + 1), ...])``:
    the blocked query paths use it to expand every touched block into its
    member ranks without a Python loop per block.  Empty ranges
    (``start > end``) are skipped.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    lengths = ends - starts + 1
    keep = lengths > 0
    starts, lengths = starts[keep], lengths[keep]
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    total = int(lengths.sum())
    # Position within the output minus the start offset of its own range
    # yields the per-range local index.
    range_offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    return np.repeat(starts, lengths) + np.arange(total, dtype=np.int64) - range_offsets


def blocked_candidate_ranks(
    rmq: SupportsRangeMaximum,
    maxima: np.ndarray,
    sp: int,
    ep: int,
    length: int,
    threshold: float,
) -> np.ndarray:
    """Ranks inside ``[sp, ep]`` worth scanning under the blocking scheme.

    Shared core of the long-pattern blocked query paths: report the blocks
    whose maximum clears the threshold, always add the two boundary blocks
    (their maxima may sit outside ``[sp, ep]``, so they are scanned
    unconditionally — no in-range occurrence may be missed), deduplicate,
    and expand every block into its member ranks clamped to the suffix
    range.  Callers filter the returned ranks by their own value arrays.
    """
    first_block = sp // length
    last_block = ep // length
    reported_blocks = report_above_threshold(
        rmq, maxima, first_block, last_block, threshold
    )
    blocks = np.unique(
        np.concatenate(
            [reported_blocks, np.array([first_block, last_block], dtype=np.int64)]
        )
    )
    return expand_ranges(
        np.maximum(sp, blocks * length),
        np.minimum(ep, (blocks + 1) * length - 1),
    )


def occurrences_from_log_values(  # repro-check: allow(hot-path-purity) — API boundary
    positions: np.ndarray, log_values: np.ndarray
) -> List[Occurrence]:
    """Build position-sorted :class:`Occurrence` objects from parallel arrays.

    This is the public API boundary of the vectorized query pipeline: the
    internal paths carry positions and log-probabilities as numpy arrays
    end-to-end, and only the final survivors become objects here.  The
    per-element ``math.exp`` matches the scalar *RMQ* path's float
    conversion bit-for-bit; the old scan fallbacks used scalar ``np.exp``,
    which disagrees with ``math.exp`` in the last ulp on a few percent of
    inputs, so routing every path through this helper also unifies a
    pre-existing ±1-ulp inconsistency between the short-pattern and
    fallback answers.
    """
    order = np.argsort(positions, kind="stable")
    return [
        Occurrence(int(position), math.exp(float(value)))
        for position, value in zip(positions[order], log_values[order])
    ]


def listing_matches_from_arrays(
    documents: np.ndarray, relevances: np.ndarray
) -> List[ListingMatch]:
    """Build document-sorted :class:`ListingMatch` objects from parallel arrays.

    Array-native counterpart of :func:`occurrences_from_log_values` for the
    listing index (relevances are already linear, no ``exp``).
    """
    order = np.argsort(documents, kind="stable")
    return [
        ListingMatch(int(document), float(relevance))
        for document, relevance in zip(documents[order], relevances[order])
    ]


def sort_occurrences(occurrences: Sequence[Occurrence]) -> List[Occurrence]:
    """Return occurrences sorted by position (the order the paper reports)."""
    return sorted(occurrences, key=lambda occurrence: occurrence.position)


def sort_listing_matches(matches: Sequence[ListingMatch]) -> List[ListingMatch]:
    """Return listing matches sorted by document identifier."""
    return sorted(matches, key=lambda match: match.document)
