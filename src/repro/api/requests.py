"""Unified query vocabulary of the :mod:`repro.api` façade.

Every index variant answers the same request shape:

* :class:`SearchRequest` — an immutable ``(pattern, tau, top_k)`` triple
  with the unified ``tau`` semantics of :func:`repro.core.base.resolve_tau`
  (``None`` means "everything the index can see": ``tau_min`` for indexes
  with a construction threshold, the tiny positive floor otherwise).
* :class:`SearchResult` — a lazy, pageable view over the answer.  Nothing
  is computed until the result is first touched, so building a large batch
  of requests costs nothing until each answer is actually consumed, and a
  batch engine can share one evaluation across duplicated requests.

Results hold either :class:`repro.core.base.Occurrence` values (substring
search) or :class:`repro.core.base.ListingMatch` values (document listing);
the sequence protocol, paging and counting behave identically for both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Sequence, Tuple, Union, overload

from .._validation import check_nonempty_pattern, check_threshold
from ..core.base import ListingMatch, Occurrence, resolve_tau
from ..exceptions import ValidationError

if TYPE_CHECKING:
    from ..obs.trace import Trace

Match = Union[Occurrence, ListingMatch]


class PartialAnswer(List[Match]):
    """A degraded answer: matches from the healthy shards only.

    A :class:`~repro.api.sharding.ShardedEngine` running with
    ``partial=True`` substitutes this for a plain match list when one or
    more shards still fail after crash recovery: it behaves exactly like
    the list it is, but carries :attr:`failed_shards` so every layer above
    (results, the serving service, the HTTP wire shape) can tell a
    complete answer from a degraded one.  Partial answers are never
    cached (:meth:`~repro.api.cache.ResultCache.wrap` skips them) — the
    next request re-asks the shards instead of pinning the degraded
    answer for the cache's lifetime.
    """

    __slots__ = ("failed_shards",)

    def __init__(self, matches: Sequence[Match], failed_shards: Sequence[int]) -> None:
        super().__init__(matches)
        self.failed_shards: Tuple[int, ...] = tuple(failed_shards)


@dataclass(frozen=True)
class SearchRequest:
    """One threshold query against an :class:`repro.api.Engine`.

    Attributes
    ----------
    pattern:
        The deterministic pattern to search for (non-empty).
    tau:
        Probability (or relevance) threshold.  ``None`` resolves to the
        index's minimum supported threshold — see
        :func:`repro.core.base.resolve_tau`.
    top_k:
        When set, only the ``top_k`` most probable (most relevant) answers
        are produced, in decreasing probability order; when ``None`` all
        answers above the threshold are reported in position (document)
        order.
    timeout_ms:
        Optional end-to-end deadline budget in milliseconds.  ``None``
        (default) means unbounded.  A budgeted request raises
        :class:`~repro.exceptions.DeadlineExceededError` (HTTP 504) once
        the budget is spent instead of waiting: the serving tier stops
        waiting for the answer, and a sharded engine stops waiting on its
        worker futures.  The budget never changes the *answer* — equal
        ``(pattern, tau, top_k)`` requests share cache entries and batch
        deduplication regardless of their budgets.
    trace:
        Optional :class:`repro.obs.trace.Trace` collecting per-stage span
        timings for this request.  Excluded from equality, hashing and
        ``repr`` so a traced request dedupes, caches and batch-refines
        byte-identically to an untraced one; ``None`` (default) keeps
        every layer on its zero-overhead fast path.
    """

    pattern: str
    tau: Optional[float] = None
    top_k: Optional[int] = None
    timeout_ms: Optional[float] = None
    trace: Optional["Trace"] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        check_nonempty_pattern(self.pattern)
        if self.tau is not None:
            check_threshold(self.tau)
        if self.top_k is not None and self.top_k <= 0:
            raise ValidationError(f"top_k must be positive, got {self.top_k}")
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ValidationError(
                f"timeout_ms must be positive (or None), got {self.timeout_ms}"
            )

    def resolve_tau(self, tau_min: float) -> float:
        """Concrete threshold this request uses against an index with ``tau_min``."""
        return resolve_tau(self.tau, tau_min)

    @staticmethod
    def coerce(
        request: Union["SearchRequest", str],
        *,
        tau: Optional[float] = None,
        top_k: Optional[int] = None,
    ) -> "SearchRequest":
        """Accept a bare pattern or an existing request (with overrides)."""
        if isinstance(request, SearchRequest):
            if tau is None and top_k is None:
                return request
            return SearchRequest(
                request.pattern,
                tau=request.tau if tau is None else tau,
                top_k=request.top_k if top_k is None else top_k,
                timeout_ms=request.timeout_ms,
                trace=request.trace,
            )
        return SearchRequest(request, tau=tau, top_k=top_k)


class SearchResult(Sequence[Match]):
    """Lazy, pageable answer to one :class:`SearchRequest`.

    The underlying query runs on first access and its answer is cached, so
    a result can be handed around, paged and re-read without repeating any
    index work — and a result that is never touched never costs anything.

    Examples
    --------
    >>> from repro import UncertainString, build_index
    >>> engine = build_index(UncertainString([{"a": 0.9, "b": 0.1}, {"a": 1.0}]),
    ...                      tau_min=0.05)
    >>> result = engine.search("aa", tau=0.5)
    >>> result.count
    1
    >>> [occ.position for occ in result]
    [0]
    """

    def __init__(
        self, request: SearchRequest, evaluate: Callable[[], List[Match]]
    ) -> None:
        self._request = request
        self._evaluate = evaluate
        self._matches: Optional[List[Match]] = None

    # -- laziness -------------------------------------------------------------------
    @property
    def request(self) -> SearchRequest:
        """The request this result answers."""
        return self._request

    @property
    def evaluated(self) -> bool:
        """Whether the underlying query has run yet."""
        return self._matches is not None

    @property
    def matches(self) -> List[Match]:
        """The full answer (runs the query on first access, then caches)."""
        if self._matches is None:
            value = self._evaluate()
            # A PartialAnswer is already a fresh list and must keep its
            # failed-shard metadata; anything else is defensively copied.
            self._matches = value if isinstance(value, PartialAnswer) else list(value)
        return self._matches

    # -- degradation metadata ---------------------------------------------------------
    @property
    def partial(self) -> bool:
        """Whether this answer is degraded (some shards failed to answer).

        Only ``True`` for answers produced by a sharded engine running in
        ``partial=True`` mode while one or more shards stayed down after
        crash recovery; see :class:`PartialAnswer`.  Accessing this
        evaluates the result.
        """
        return isinstance(self.matches, PartialAnswer)

    @property
    def failed_shards(self) -> Tuple[int, ...]:
        """Shard ordinals missing from a partial answer (empty when complete)."""
        matches = self.matches
        if isinstance(matches, PartialAnswer):
            return matches.failed_shards
        return ()

    # -- sequence protocol ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self) -> Iterator[Match]:
        return iter(self.matches)

    @overload
    def __getitem__(self, item: int) -> Match: ...

    @overload
    def __getitem__(self, item: slice) -> List[Match]: ...

    def __getitem__(self, item: Union[int, slice]) -> Union[Match, List[Match]]:
        return self.matches[item]

    def __repr__(self) -> str:
        matches = self._matches
        state = f"{len(matches)} matches" if matches is not None else "pending"
        return f"SearchResult(pattern={self._request.pattern!r}, {state})"

    # -- conveniences ---------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of matches."""
        return len(self.matches)

    @property
    def exists(self) -> bool:
        """Whether at least one match was found."""
        return bool(self.matches)

    def page(self, offset: int = 0, limit: Optional[int] = None) -> List[Match]:
        """One page of the answer (``offset`` into the match list, ``limit`` long)."""
        if offset < 0:
            raise ValidationError(f"offset must be non-negative, got {offset}")
        if limit is not None and limit < 0:
            raise ValidationError(f"limit must be non-negative, got {limit}")
        matches = self.matches
        if limit is None:
            return matches[offset:]
        return matches[offset : offset + limit]

    def pages(self, size: int) -> Iterator[List[Match]]:
        """Iterate the answer in pages of ``size`` matches."""
        if size <= 0:
            raise ValidationError(f"page size must be positive, got {size}")
        matches = self.matches
        for offset in range(0, len(matches), size):
            yield matches[offset : offset + size]

    def positions(self) -> List[int]:
        """Positions (or document identifiers) of the matches, in answer order."""
        return [
            match.position if isinstance(match, Occurrence) else match.document
            for match in self.matches
        ]
