"""The unified front door to the package (engine, planner, persistence).

Most callers need exactly three names:

* :func:`build_index` — hand it whatever you have (a plain string, an
  :class:`~repro.strings.UncertainString`, a
  :class:`~repro.strings.SpecialUncertainString`, an
  :class:`~repro.strings.UncertainStringCollection` or a sequence of
  documents) and get back an :class:`Engine` wrapping the index variant
  the planner selected for that input shape;
* :meth:`Engine.search` / :meth:`Engine.search_many` — the unified
  :class:`SearchRequest` → :class:`SearchResult` query vocabulary with
  consistent ``tau`` semantics, lazy pageable results and batch
  amortization;
* :meth:`Engine.save` / :func:`load_index` — versioned ``.npz``
  persistence so indexes are built offline and served hot.

The :mod:`repro.core` classes stay public for callers that need
variant-specific control; ``Engine.index`` exposes the wrapped instance.
"""

from .batch import execute_batch
from .engine import Engine, build_index, load_index
from .persistence import (
    FORMAT_NAME,
    FORMAT_VERSION,
    load_index_payload,
    read_manifest,
    save_index_payload,
)
from .planner import (
    DEFAULT_TAU_MIN,
    INDEX_CLASSES,
    IndexPlan,
    normalize_input,
    plan_index,
)
from .requests import SearchRequest, SearchResult

__all__ = [
    "DEFAULT_TAU_MIN",
    "Engine",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "INDEX_CLASSES",
    "IndexPlan",
    "SearchRequest",
    "SearchResult",
    "build_index",
    "execute_batch",
    "load_index",
    "load_index_payload",
    "normalize_input",
    "plan_index",
    "read_manifest",
    "save_index_payload",
]
