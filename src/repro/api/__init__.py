"""The unified front door to the package (engine, planner, persistence).

Most callers need exactly three names:

* :func:`build_index` — hand it whatever you have (a plain string, an
  :class:`~repro.strings.UncertainString`, a
  :class:`~repro.strings.SpecialUncertainString`, an
  :class:`~repro.strings.UncertainStringCollection` or a sequence of
  documents) and get back an :class:`Engine` wrapping the index variant
  the planner selected for that input shape;
* :meth:`Engine.search` / :meth:`Engine.search_many` — the unified
  :class:`SearchRequest` → :class:`SearchResult` query vocabulary with
  consistent ``tau`` semantics, lazy pageable results, batch
  amortization and an LRU result cache on the hot path;
* :meth:`Engine.save` / :func:`load_index` — versioned ``.npz``
  persistence so indexes are built offline and served hot.

Scale-out callers add :func:`build_sharded_index` — the same vocabulary
over a :class:`ShardedEngine` that partitions the input (documents, or
overlapping string chunks), fans queries out across per-shard engines on a
thread pool, and merges globally correct answers.  ``load_index`` restores
both engine shapes.

The :mod:`repro.core` classes stay public for callers that need
variant-specific control; ``Engine.index`` exposes the wrapped instance.
"""

from .batch import execute_batch
from .cache import DEFAULT_CACHE_SIZE, ResultCache
from .engine import Engine, build_index, load_index
from .persistence import (
    FORMAT_NAME,
    FORMAT_VERSION,
    ShardedArchive,
    index_from_payload,
    index_to_payload,
    is_sharded_archive,
    load_index_payload,
    load_sharded_payload,
    read_manifest,
    read_sharded_manifest,
    save_index_payload,
    save_sharded_payload,
    SHARDED_FORMAT_NAME,
    SHARDED_FORMAT_VERSION,
)
from .planner import (
    CALIBRATION_WINDOW,
    DEFAULT_MAX_PATTERN_LEN,
    DEFAULT_TAU_MIN,
    INDEX_CLASSES,
    IndexPlan,
    ShardSpec,
    calibration_snapshot,
    normalize_input,
    plan_index,
    record_build_observation,
    reset_calibration,
    shard_input,
)
from .requests import SearchRequest, SearchResult
from .sharding import ShardedEngine, build_sharded_index

__all__ = [
    "CALIBRATION_WINDOW",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_MAX_PATTERN_LEN",
    "DEFAULT_TAU_MIN",
    "Engine",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "INDEX_CLASSES",
    "IndexPlan",
    "ResultCache",
    "SHARDED_FORMAT_NAME",
    "SHARDED_FORMAT_VERSION",
    "SearchRequest",
    "SearchResult",
    "ShardSpec",
    "ShardedArchive",
    "ShardedEngine",
    "build_index",
    "build_sharded_index",
    "calibration_snapshot",
    "execute_batch",
    "index_from_payload",
    "index_to_payload",
    "is_sharded_archive",
    "load_index",
    "load_index_payload",
    "load_sharded_payload",
    "normalize_input",
    "plan_index",
    "read_manifest",
    "read_sharded_manifest",
    "record_build_observation",
    "reset_calibration",
    "save_index_payload",
    "save_sharded_payload",
    "shard_input",
]
