"""Shared-memory export of index payloads for process workers.

``query_executor="process"`` needs every worker to hold its shards'
indexes.  Shards loaded from disk already share physical pages through
``mmap``; shards *built in memory* used to ship their whole
:class:`~repro.payload.IndexPayload` through the pool initializer —
pickling every stored array once per worker, and holding per-worker heap
copies of data the parent already has.  This module replaces that copy
with one :mod:`multiprocessing.shared_memory` block per index:

* :class:`SharedPayloadExport` lays the payload's stored arrays (plus its
  JSON manifest) out in a single shared block, 64-byte aligned, and hands
  out a tiny :meth:`~SharedPayloadExport.spec` — block name, manifest
  span, ``{path: (offset, dtype, shape)}`` layout — whose pickled size is
  O(number of arrays), independent of the index size.
* :func:`attach_payload` is the worker side: attach to the block by name
  and rebuild the payload from zero-copy read-only ndarray views over
  ``shm.buf``.  Every worker's view of the index is the same physical
  memory.
* :func:`export_for_index` caches exports per live index object
  (weak-keyed), so replicas serving the same in-RAM build — and a crashed
  pool rebuilt for the same engine — share one block instead of exporting
  again.  Exports are reference counted: :meth:`~SharedPayloadExport.release`
  unlinks the block when the last owner lets go.

Lifecycle (CPython 3.11 semantics): the parent creates the block, workers
attach by name, and the parent unlinks once released — attach-side
resource-tracker registrations land in the one tracker process the pool
shares with the parent, so a block that is unlinked before the tree exits
is never reported leaked.  On POSIX the segment's memory survives until
the last mapping closes, so unlinking while workers still run is safe.
"""

from __future__ import annotations

import json
import threading
import weakref
from multiprocessing import shared_memory
from typing import Any, Dict, Tuple

import numpy as np

from ..exceptions import ValidationError
from ..payload import IndexPayload

#: Offset alignment for every array in an export block — cache-line sized,
#: and a multiple of every numpy itemsize, so views are always aligned.
BLOCK_ALIGN = 64

#: ``{path: (offset, dtype-string, shape)}`` — one entry per stored array.
ShmLayout = Dict[str, Tuple[int, str, Tuple[int, ...]]]


def _align_up(offset: int) -> int:
    return (offset + BLOCK_ALIGN - 1) // BLOCK_ALIGN * BLOCK_ALIGN


class SharedPayloadExport:
    """One payload's stored arrays in one shared-memory block.

    The block holds the payload's JSON manifest first, then every stored
    array at a 64-byte-aligned offset.  Instances are reference counted
    (:meth:`acquire` / :meth:`release`); the block is closed and unlinked
    when the count reaches zero.  Exports are created through
    :func:`export_for_index`, which deduplicates them per index object.
    """

    def __init__(self, payload: IndexPayload) -> None:
        manifest_bytes = json.dumps(payload.manifest()).encode("utf-8")
        flat = payload.flatten()
        layout: ShmLayout = {}
        placements = []
        offset = _align_up(len(manifest_bytes))
        for path, array in flat.items():
            contiguous = np.ascontiguousarray(array)
            if contiguous.nbytes == 0:
                layout[path] = (0, str(contiguous.dtype), tuple(contiguous.shape))
                continue
            layout[path] = (offset, str(contiguous.dtype), tuple(contiguous.shape))
            placements.append((offset, contiguous))
            offset = _align_up(offset + contiguous.nbytes)
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        buffer = self._shm.buf
        buffer[: len(manifest_bytes)] = manifest_bytes
        for start, contiguous in placements:
            destination = np.ndarray(
                contiguous.shape, dtype=contiguous.dtype, buffer=buffer, offset=start
            )
            destination[...] = contiguous
        self._manifest_span = (0, len(manifest_bytes))
        self._layout = layout
        self._block_nbytes = self._shm.size
        self._lock = threading.Lock()
        self._refs = 0
        self._closed = False

    # -- introspection -------------------------------------------------------------
    @property
    def name(self) -> str:
        """The shared-memory block name workers attach by."""
        return self._shm.name

    @property
    def block_nbytes(self) -> int:
        """Size of the shared block (manifest + aligned arrays)."""
        return self._block_nbytes

    @property
    def closed(self) -> bool:
        """Whether the block has been unlinked (export unusable)."""
        with self._lock:
            return self._closed

    def spec(self) -> Tuple[str, str, Tuple[int, int], ShmLayout]:
        """The worker initialization spec: ``("shm", name, manifest_span, layout)``.

        Pickles in O(number of arrays) bytes — the data itself never
        crosses the process boundary.
        """
        return ("shm", self.name, self._manifest_span, dict(self._layout))

    # -- lifecycle -----------------------------------------------------------------
    def acquire(self) -> "SharedPayloadExport":
        """Take a reference; the block outlives every acquirer."""
        with self._lock:
            if self._closed:
                raise ValidationError(
                    f"shared-memory export {self.name} is already closed"
                )
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop a reference; the last release closes and unlinks the block."""
        with self._lock:
            if self._closed:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # another owner of the name got there first
            pass


def attach_payload(
    name: str, manifest_span: Tuple[int, int], layout: ShmLayout
) -> Tuple[shared_memory.SharedMemory, IndexPayload]:
    """Worker side: rebuild a payload as zero-copy views over a shared block.

    Returns the :class:`~multiprocessing.shared_memory.SharedMemory`
    handle together with the payload — the caller must keep the handle
    alive for as long as any view (or the index built from them) is in
    use, and ``close()`` it afterwards.
    """
    block = shared_memory.SharedMemory(name=name)
    start, length = manifest_span
    manifest = json.loads(bytes(block.buf[start : start + length]).decode("utf-8"))
    arrays: Dict[str, np.ndarray] = {}
    for path, (offset, dtype, shape) in layout.items():
        view: np.ndarray = np.ndarray(
            tuple(shape), dtype=np.dtype(dtype), buffer=block.buf, offset=offset
        )
        view.flags.writeable = False
        arrays[path] = view
    return block, IndexPayload.from_manifest(manifest, arrays)


# ---------------------------------------------------------------------------
# Per-index export cache: replicas (and rebuilt pools) share one block
# ---------------------------------------------------------------------------
_EXPORTS: "weakref.WeakKeyDictionary[Any, SharedPayloadExport]" = (
    weakref.WeakKeyDictionary()
)
_EXPORTS_LOCK = threading.Lock()


def export_for_index(index: Any) -> SharedPayloadExport:
    """The shared export for ``index``, created on first use (acquired).

    Keyed weakly by the index object itself: every engine/replica serving
    the same in-RAM index gets the same block, each holding one reference.
    The caller owns exactly one :meth:`SharedPayloadExport.release`.
    """
    from .persistence import index_to_payload

    with _EXPORTS_LOCK:
        export = _EXPORTS.get(index)
        if export is None or export.closed:
            export = SharedPayloadExport(index_to_payload(index))
            _EXPORTS[index] = export
        return export.acquire()
