"""The :class:`Engine` façade and the :func:`build_index` factory.

This module is the documented front door of the package: callers hand
:func:`build_index` whatever they have — a plain string, an
:class:`~repro.strings.UncertainString`, a
:class:`~repro.strings.SpecialUncertainString`, a collection or a sequence
of documents — and get back an :class:`Engine` wrapping the index the
planner selected (see :mod:`repro.api.planner`).  The engine answers the
unified :class:`~repro.api.requests.SearchRequest` vocabulary, batches
queries through :func:`repro.api.batch.execute_batch`, and persists itself
with :meth:`Engine.save` / :func:`load_index`.

The underlying :mod:`repro.core` classes remain public and unchanged —
the engine is a façade, not a replacement — and ``engine.index`` exposes
the wrapped instance for callers that need variant-specific extras.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Union

from ..core.listing import UncertainStringListingIndex
from ..obs.profile import active_profiler
from ..strings.special import SpecialUncertainString
from ..strings.uncertain import UncertainString
from .batch import execute_batch
from .cache import DEFAULT_CACHE_SIZE, CacheKey, ResultCache
from .persistence import (
    FORMAT_VERSION,
    index_from_payload,
    index_to_payload,
    is_sharded_archive,
    load_index_payload,
    save_index_payload,
)
from .planner import (
    IndexInput,
    IndexPlan,
    normalize_input,
    plan_index,
    record_build_observation,
)
from .requests import Match, SearchRequest, SearchResult


class QueryEngine:
    """The query surface shared by :class:`Engine` and ``ShardedEngine``.

    Subclasses provide ``_evaluate(request)`` (the actual index work), a
    ``_cache`` attribute (:class:`~repro.api.cache.ResultCache`), the
    ``kind`` / ``tau_min`` / ``is_listing`` properties and
    :meth:`_refine_allowed`; this base turns those into the full public
    vocabulary — ``search`` / ``search_many`` / ``query`` / ``top_k`` /
    ``count`` / ``exists`` — with one cache-key shape and one caching
    policy, so the two engine types cannot drift apart.
    """

    _cache: ResultCache

    def _evaluate(self, request: SearchRequest) -> List[Match]:
        raise NotImplementedError

    def _refine_allowed(self) -> bool:
        """Whether batch threshold refinement is exact on this engine."""
        raise NotImplementedError

    def _cache_key(self, request: SearchRequest) -> CacheKey:
        return (request.pattern, request.tau, request.top_k, self.kind)

    def search(
        self,
        request: Union[SearchRequest, str],
        *,
        tau: Optional[float] = None,
        top_k: Optional[int] = None,
    ) -> SearchResult:
        """Answer one request (lazily — the query runs on first access).

        ``request`` may be a bare pattern (with ``tau`` / ``top_k`` given as
        keywords) or a :class:`SearchRequest`.  Evaluation routes through
        the result cache: a repeated request never touches the index.
        """
        normalized = SearchRequest.coerce(request, tau=tau, top_k=top_k)
        return SearchResult(normalized, self._wrapped_compute(normalized))

    def _wrapped_compute(self, request: SearchRequest) -> Callable[[], List[Match]]:
        """The cached evaluation closure, with a ``cache`` span when traced.

        The cache span's ``hit`` meta is derived from whether the wrapped
        computation added any records to the trace: a cache hit never
        reaches ``_evaluate``, so the record count stays unchanged.
        """
        compute = self._cache.wrap(
            self._cache_key(request), lambda: self._evaluate(request)
        )
        trace = request.trace
        if trace is None:
            return compute

        def traced() -> List[Match]:
            before = trace.size()
            with trace.span("cache", parent="evaluate") as meta:
                value = compute()
                meta["hit"] = trace.size() == before
            return value

        return traced

    def search_many(
        self,
        requests: Sequence[Union[SearchRequest, str]],
        *,
        tau: Optional[float] = None,
    ) -> List[SearchResult]:
        """Answer a batch of requests, amortizing work across them.

        Identical requests share one evaluation; engines whose index
        compares match values in linear space additionally share one
        traversal per pattern at the lowest threshold (see
        :mod:`repro.api.batch` and :meth:`_refine_allowed`).  Every result
        — direct or refined — reads and writes the result cache under its
        own key, so a repeated batch is answered entirely from memory.
        Results come back in request order and stay lazy until consumed.
        """
        return execute_batch(
            requests,
            self._evaluate,
            self.tau_min,
            default_tau=tau,
            refine_tau=self._refine_allowed(),
            cache=self._cache,
            cache_key=self._cache_key,
        )

    def query(self, pattern: str, tau: Optional[float] = None) -> List[Match]:
        """Eager threshold query (the classic ``index.query`` shape)."""
        return self.search(pattern, tau=tau).matches

    def top_k(self, pattern: str, k: int, *, tau: Optional[float] = None) -> List[Match]:
        """The ``k`` most probable (most relevant) matches of ``pattern``."""
        return self.search(pattern, tau=tau, top_k=k).matches

    def count(self, pattern: str, tau: Optional[float] = None) -> int:
        """Number of matches of ``pattern`` above the threshold."""
        return self.search(pattern, tau=tau).count

    def exists(self, pattern: str, tau: Optional[float] = None) -> bool:
        """Whether ``pattern`` matches anywhere above the threshold."""
        return self.search(pattern, tau=tau).exists


class Engine(QueryEngine):
    """One built index behind the unified query vocabulary.

    Engines are normally created through :func:`build_index` (which plans
    and constructs the index) or :func:`load_index` (which restores a
    saved one); the constructor accepts any already-built core index plus
    the plan describing it.

    Every engine carries an LRU :class:`~repro.api.cache.ResultCache` on
    its evaluation path (``cache_size=0`` disables it): repeated requests —
    single or batched — are answered from memory without touching the
    index, and hit/miss/eviction counters surface in :meth:`describe`.
    """

    def __init__(
        self,
        index: Any,
        plan: IndexPlan,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_ttl_seconds: Optional[float] = None,
    ) -> None:
        self._index = index
        self._plan = plan
        self._cache = ResultCache(cache_size, ttl_seconds=cache_ttl_seconds)

    # -- introspection -----------------------------------------------------------------
    @property
    def index(self) -> Any:
        """The wrapped :mod:`repro.core` index instance."""
        return self._index

    @property
    def plan(self) -> IndexPlan:
        """The plan that selected (or restored) this index."""
        return self._plan

    @property
    def kind(self) -> str:
        """Index kind: special / simple / general / approximate / listing."""
        return self._plan.kind

    @property
    def tau_min(self) -> float:
        """Smallest query threshold the wrapped index supports."""
        return float(self._index.tau_min)

    @property
    def is_listing(self) -> bool:
        """Whether results carry ListingMatch (documents) instead of Occurrence."""
        return self._plan.kind == "listing"

    @property
    def cache(self) -> ResultCache:
        """The engine's LRU result cache (disabled when ``cache_size=0``)."""
        return self._cache

    def describe(self) -> dict:
        """Summary of the engine: kind, selection reason, profile, cache, space."""
        return {
            "kind": self.kind,
            "reason": self._plan.reason,
            "tau_min": self.tau_min,
            "profile": dict(self._plan.profile),
            # Space-estimate accuracy (planner feedback): present once the
            # engine was built through build_index over a planned estimate,
            # None for hand-made or restored plans.  "calibration" is the
            # per-kind multiplicative correction the planner applied to
            # this plan's estimate (fed by past estimate_error
            # observations over a decay window).  kind/reason live at the
            # top level already and are not repeated here.
            "plan": {
                "estimate_error": self._plan.profile.get("estimate_error"),
                "calibration": self._plan.profile.get("calibration"),
            },
            "cache": self._cache.stats(),
            "space_report": self.space_report(),
        }

    def space_report(self) -> dict:
        """Byte sizes of the wrapped index's components."""
        return self._index.space_report()

    def nbytes(self) -> int:
        """Total approximate memory footprint of the wrapped index."""
        return int(self._index.nbytes())

    def __repr__(self) -> str:
        return f"Engine(kind={self.kind!r}, tau_min={self.tau_min}, nbytes={self.nbytes()})"

    # -- queries -----------------------------------------------------------------------
    def _evaluate(self, request: SearchRequest) -> List[Match]:
        trace = request.trace
        profiler = active_profiler()
        if trace is None and profiler is None:
            # Zero-overhead fast path: no timers unless someone is looking.
            if request.top_k is not None:
                return self._index.top_k(
                    request.pattern, request.top_k, tau=request.tau
                )
            return self._index.query(
                request.pattern, request.resolve_tau(self.tau_min)
            )
        start = time.perf_counter()
        if request.top_k is not None:
            matches = self._index.top_k(request.pattern, request.top_k, tau=request.tau)
        else:
            matches = self._index.query(request.pattern, request.resolve_tau(self.tau_min))
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        if trace is not None:
            trace.add("kernel", elapsed_ms, parent="cache",
                      kind=self.kind, matches=len(matches))
        if profiler is not None and profiler.should_sample():
            profiler.observe(self.kind, elapsed_ms)
        return matches

    def _refine_allowed(self) -> bool:
        # Refinement is exact only when the index both stores and compares
        # the reported relevance directly: the listing index without the
        # correlated-collection verification step (which prunes candidates
        # on pre-verification values a filter over reported relevance
        # cannot reproduce).  The substring indexes compare in log space —
        # see :mod:`repro.api.batch` for the full argument.
        return self.is_listing and not self._index.needs_verification

    # -- index replacement --------------------------------------------------------------
    def replace_index(self, index: Any, plan: Optional[IndexPlan] = None) -> None:
        """Swap the wrapped index in place, invalidating the result cache.

        A serving deployment that rebuilds or reloads its index without
        restarting (e.g. behind an :class:`~repro.serving.AsyncSearchService`)
        must not answer new requests from results the *old* index produced;
        this bumps the cache's generation tag
        (:meth:`~repro.api.cache.ResultCache.bump_generation`) so every
        previously cached entry becomes unreachable in O(1).
        """
        self._index = index
        if plan is not None:
            self._plan = plan
        self._cache.bump_generation()

    # -- persistence -------------------------------------------------------------------
    def save(
        self,
        path: Union[str, Path],
        *,
        version: int = FORMAT_VERSION,
        compress: Optional[bool] = None,
        compact: bool = False,
    ) -> Path:
        """Serialize the engine to a versioned ``.npz`` archive.

        The archive stores every numpy component (suffix arrays, LCP,
        cumulative tables, per-length value arrays, links) plus a JSON
        manifest with the format version, the plan and the indexed string,
        so :func:`load_index` restores an engine whose answers are
        byte-identical to this one without re-running construction.  The
        default (version-3) archive is the index's
        :class:`~repro.payload.IndexPayload` written as an uncompressed
        zip — space-efficient RMQ payloads, memory-mappable; see
        :func:`repro.api.persistence.save_index_payload` for the knobs
        (``version=1|2`` writes the legacy layouts; ``compact=True``
        writes narrowed dtypes + bit-packed booleans with byte-identical
        answers on restore).
        """
        return save_index_payload(
            self._index,
            self._plan,
            path,
            version=version,
            compress=compress,
            compact=compact,
        )

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_ttl_seconds: Optional[float] = None,
        mmap: bool = False,
    ) -> "Engine":
        """Restore an engine saved with :meth:`save`.

        ``mmap=True`` opens the heavy arrays as read-only memory maps into
        the archive (zero-copy cold start; concurrent processes share the
        pages) — see :func:`repro.api.persistence.load_index_payload`.
        """
        index, plan = load_index_payload(path, mmap=mmap)
        return cls(
            index, plan, cache_size=cache_size, cache_ttl_seconds=cache_ttl_seconds
        )


def build_index(
    data: IndexInput,
    *,
    tau_min: Optional[float] = None,
    kind: str = "auto",
    space_budget_bytes: Optional[int] = None,
    epsilon: Optional[float] = None,
    metric: str = "max",
    cache_size: int = DEFAULT_CACHE_SIZE,
    cache_ttl_seconds: Optional[float] = None,
    compact: bool = False,
    **options: Any,
) -> Engine:
    """Plan, build and wrap the right index for ``data``.

    This is the package's front door: it accepts a plain string, an
    :class:`UncertainString`, a :class:`SpecialUncertainString`, an
    :class:`UncertainStringCollection` or a sequence of documents, runs
    :func:`repro.api.planner.plan_index` (honouring ``kind=...``
    overrides), constructs the selected :mod:`repro.core` index and
    returns it wrapped in an :class:`Engine`.

    ``compact=True`` re-materializes the freshly built index from its
    dtype-minimized payload (:meth:`repro.payload.IndexPayload.compact`):
    every stored integer array is narrowed to the smallest dtype that
    holds its value range and bulky derived tables are rebuilt in their
    compact form, typically shrinking the in-RAM footprint several-fold
    while keeping answers byte-identical (probabilities stay float64).

    Examples
    --------
    >>> from repro import UncertainString, build_index
    >>> engine = build_index(UncertainString([
    ...     {"A": 0.6, "C": 0.4}, {"T": 1.0}, {"A": 0.5, "G": 0.5},
    ... ]), tau_min=0.1)
    >>> engine.kind
    'general'
    >>> [occ.position for occ in engine.search("AT", tau=0.3)]
    [0]
    """
    # Normalize once: plan_index passes already-canonical inputs through, so
    # the planner profiles the exact object the index is built over.
    normalized = normalize_input(data)
    plan = plan_index(
        normalized,
        tau_min=tau_min,
        kind=kind,
        space_budget_bytes=space_budget_bytes,
        epsilon=epsilon,
        metric=metric,
        **options,
    )
    index = _construct(plan, normalized)
    if compact:
        # Round-trip through the dtype-minimized payload: narrowing is a
        # property of the stored arrays, so restore-from-compact yields an
        # index whose in-RAM arrays carry the narrow dtypes directly.
        index = index_from_payload(index_to_payload(index).compact())
    # Planner feedback: record the measured footprint against the coarse
    # estimate so describe()["plan"]["estimate_error"] makes space-budget
    # routing accuracy observable.
    record_build_observation(plan, index.nbytes())
    return Engine(
        index, plan, cache_size=cache_size, cache_ttl_seconds=cache_ttl_seconds
    )


def _construct(plan: IndexPlan, normalized: Any) -> Any:
    """Instantiate the planned index class with the right input shape.

    ``plan.prepared_input`` carries the exact constructor argument the
    planner already derived (special-string view, converted string, the
    collection); the fallbacks below only run for hand-made plans.
    """
    options = dict(plan.options)
    if plan.kind == "listing":
        collection = plan.prepared_input if plan.prepared_input is not None else normalized
        return UncertainStringListingIndex(collection, plan.tau_min, **options)
    if plan.kind in ("special", "simple"):
        string = plan.prepared_input
        if string is None:
            string = normalized
            if isinstance(string, UncertainString):
                from .planner import _special_view

                string = _special_view(string)
        return plan.index_class(string, **options)
    # general / approximate indexes take a general uncertain string.
    string = plan.prepared_input
    if string is None:
        string = normalized
        if isinstance(string, SpecialUncertainString):
            string = string.to_uncertain_string()
    return plan.index_class(string, plan.tau_min, **options)


def load_index(
    path: Union[str, Path],
    *,
    cache_size: int = DEFAULT_CACHE_SIZE,
    cache_ttl_seconds: Optional[float] = None,
    mmap: bool = False,
    query_executor: str = "thread",
) -> Any:
    """Restore any saved engine — plain ``.npz`` archive or sharded directory.

    Dispatches on the archive shape: a directory holding a shard manifest
    restores a :class:`~repro.api.sharding.ShardedEngine`, everything else
    an :class:`Engine` — so callers round-trip both engine types through
    one function.

    ``mmap=True`` opens every archive memory-mapped (zero-copy cold start,
    page-cache sharing across processes).  ``query_executor`` selects the
    sharded engine's fan-out mode (``"thread"`` or ``"process"``; ignored
    for unsharded archives) — combined with ``mmap=True`` the process
    workers each map the same shard archives, so a fleet of workers holds
    one physical copy of the index.
    """
    if is_sharded_archive(path):
        from .sharding import ShardedEngine

        return ShardedEngine.load(
            path,
            cache_size=cache_size,
            cache_ttl_seconds=cache_ttl_seconds,
            mmap=mmap,
            query_executor=query_executor,
        )
    return Engine.load(
        path, cache_size=cache_size, cache_ttl_seconds=cache_ttl_seconds, mmap=mmap
    )
