"""LRU result caching for the hot query path of the :mod:`repro.api` engines.

Serving traffic repeats itself: the same ``(pattern, tau, top_k)`` triples
arrive over and over, and every index in the package answers a repeated
request with exactly the same matches (queries are pure functions of the
built index).  :class:`ResultCache` exploits that — it is a thread-safe LRU
sitting in front of ``Engine._evaluate`` (and the merged evaluation of
``ShardedEngine``), keyed on ``(pattern, tau, top_k, kind)``.

Design constraints, in order:

* **Immutability** — cached values are stored as tuples and copied into a
  fresh list on every hit, so no caller (pagination included) can mutate a
  cached answer; :class:`~repro.api.requests.SearchResult` already never
  mutates its match list, the copy guards against callers reaching into
  ``result.matches`` directly.
* **Laziness** — :meth:`wrap` returns an evaluation *closure*, so the cache
  is only consulted when a lazy result is actually touched.  Untouched
  results cost neither a lookup nor a counter tick, and batch deduplication
  (:mod:`repro.api.batch`) composes: each distinct request probes the cache
  exactly once per evaluation.
* **Observability** — hit / miss / eviction counters live in a
  :class:`repro.obs.metrics.MetricsRegistry` that shares the cache's own
  lock, so :meth:`stats` is a tear-free snapshot and ``/metrics`` can
  scrape the same counters (``cache_*`` names in ``METRIC_TABLE``); the
  legacy :meth:`stats` dict shape is preserved as a view over the
  registry, because a serving cache nobody can measure is a serving
  cache nobody can size.

Two invalidation mechanisms exist for serving deployments whose index is
not immutable-forever:

* **Generation tags** — every entry is stored under the cache's current
  *generation*; :meth:`bump_generation` makes every existing entry
  unreachable in O(1), so an engine whose index was reloaded or replaced
  can never serve a stale hit (the old entries age out through ordinary
  LRU eviction).  ``Engine.replace_index`` bumps the generation
  automatically.
* **TTL** — an optional ``ttl_seconds`` bounds the lifetime of every
  entry; expired entries count as misses (and as ``expirations`` in
  :meth:`stats`) and are dropped on access.  Expired entries are also
  purged eagerly on every :meth:`put` and :meth:`stats` call — an entry
  past its TTL must not keep occupying LRU capacity (evicting live
  entries) or inflate the reported occupancy.  The clock is injectable
  for deterministic tests.

Errors are never cached: an evaluation that raises (e.g. a
:class:`~repro.exceptions.ThresholdError` for a ``tau`` below ``tau_min``)
propagates without touching the stored entries, and the failed lookup is
counted as a miss.  Neither are **partial answers**
(:class:`~repro.api.requests.PartialAnswer`, produced by a degraded
sharded engine): a transient shard outage must cost a re-evaluation on
the next request, never a cached degraded answer served until eviction.

:meth:`get` carries the ``cache-access`` fault-injection site
(:mod:`repro.faults`) — a no-op unless a chaos plan is installed.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from ..exceptions import ValidationError
from ..faults import SITE_CACHE_ACCESS, fire
from ..obs.metrics import MetricsRegistry
from .requests import PartialAnswer

#: Default number of distinct request keys an engine keeps hot.
DEFAULT_CACHE_SIZE = 1024

#: Cache keys are ``(pattern, tau, top_k, kind)`` tuples; typed loosely so
#: the sharded engine can reuse the same cache with its own key shape.
CacheKey = Hashable

#: Internal storage key: the caller's key tagged with the generation it was
#: written under.
_StoredKey = Tuple[int, CacheKey]


class ResultCache:
    """A bounded, thread-safe LRU over evaluated match lists.

    Parameters
    ----------
    capacity:
        Maximum number of distinct keys to retain.  ``0`` disables the
        cache entirely — :meth:`wrap` then returns the computation
        unchanged, so a disabled cache costs nothing on the query path.
    ttl_seconds:
        Optional maximum entry age.  ``None`` (default) means entries
        never expire; a positive value drops entries older than that on
        access, counting an expiration plus a miss.
    clock:
        Monotonic time source used for TTL stamps (defaults to
        :func:`time.monotonic`); injectable so TTL behaviour is testable
        without sleeping.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_SIZE,
        *,
        ttl_seconds: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 0:
            raise ValidationError(f"cache capacity must be >= 0, got {capacity}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValidationError(
                f"ttl_seconds must be positive (or None), got {ttl_seconds}"
            )
        self._capacity = int(capacity)
        self._ttl_seconds = ttl_seconds
        self._clock = clock if clock is not None else time.monotonic
        self._entries: "OrderedDict[_StoredKey, Tuple[Tuple, float]]" = OrderedDict()  # guarded-by: _lock
        # Re-entrant so registry updates made while the cache lock is
        # already held (and stats() snapshots) serialize on one monitor.
        self._lock = threading.RLock()
        self._generation = 0  # guarded-by: _lock
        self._metrics = MetricsRegistry(lock=self._lock)
        self._hits = self._metrics.counter("cache_hits_total")
        self._misses = self._metrics.counter("cache_misses_total")
        self._evictions = self._metrics.counter("cache_evictions_total")
        self._expirations = self._metrics.counter("cache_expirations_total")
        self._metrics.gauge("cache_size_count", fn=lambda: float(len(self._entries)))
        self._metrics.gauge("cache_generation_count", fn=lambda: float(self._generation))

    # -- configuration ------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of entries retained."""
        return self._capacity

    @property
    def enabled(self) -> bool:
        """Whether the cache retains anything at all."""
        return self._capacity > 0

    @property
    def ttl_seconds(self) -> Optional[float]:
        """Maximum entry age (``None``: entries never expire)."""
        return self._ttl_seconds

    @property
    def generation(self) -> int:
        """The index-generation tag current entries are stored under."""
        return self._generation

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ResultCache(capacity={self._capacity}, size={len(self._entries)}, "
            f"hits={self._hits.value}, misses={self._misses.value}, "
            f"generation={self._generation})"
        )

    def _expired_keys(self) -> List[_StoredKey]:
        """Stored keys past their TTL (read-only; caller holds ``_lock``).

        :meth:`put` and :meth:`stats` purge these eagerly so expired
        entries cannot occupy LRU capacity (evicting live entries) or
        inflate the reported size; each dropped entry counts an
        expiration, the same counter the lazy drop in :meth:`get` ticks.
        """
        if self._ttl_seconds is None or not self._entries:
            return []
        now = self._clock()
        return [
            stored
            for stored, (_, stamp) in self._entries.items()
            if now - stamp > self._ttl_seconds
        ]

    # -- core operations ----------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[Tuple]:
        """The cached answer for ``key``, or ``None`` (counts a hit or miss).

        Only entries written under the current generation are reachable,
        and entries older than ``ttl_seconds`` are dropped (counting an
        expiration) instead of served.
        """
        if not self.enabled:
            return None
        fire(SITE_CACHE_ACCESS)
        with self._lock:
            stored = (self._generation, key)
            entry = self._entries.get(stored)
            if entry is None:
                self._misses.inc()
                return None
            value, stamp = entry
            if (
                self._ttl_seconds is not None
                and self._clock() - stamp > self._ttl_seconds
            ):
                del self._entries[stored]
                self._expirations.inc()
                self._misses.inc()
                return None
            self._entries.move_to_end(stored)
            self._hits.inc()
            return value

    def put(
        self, key: CacheKey, value: Sequence, *, generation: Optional[int] = None
    ) -> None:
        """Store ``value`` (copied to an immutable tuple) under ``key``.

        ``generation`` is the generation the value was *computed* under
        (pass the value of :attr:`generation` read before the computation
        started): if the cache has been invalidated in the meantime, the
        value is silently dropped instead of being stored under the new
        generation — otherwise a slow evaluation racing a
        :meth:`bump_generation` (e.g. ``Engine.replace_index`` during an
        in-flight query) could cache the *old* index's answer as fresh.
        ``None`` stores unconditionally under the current generation.
        """
        if not self.enabled:
            return
        frozen = tuple(value)
        with self._lock:
            if generation is not None and generation != self._generation:
                return
            # Purge before the capacity check: an expired entry must never
            # force a live one out through ordinary LRU eviction.
            for expired in self._expired_keys():
                del self._entries[expired]
                self._expirations.inc()
            stored = (self._generation, key)
            stamp = self._clock()
            if stored in self._entries:
                self._entries.move_to_end(stored)
                self._entries[stored] = (frozen, stamp)
                return
            self._entries[stored] = (frozen, stamp)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions.inc()

    def wrap(self, key: CacheKey, compute: Callable[[], List]) -> Callable[[], List]:
        """A lazy evaluation closure: cache lookup first, ``compute`` on miss.

        The returned callable is what a :class:`SearchResult` evaluates —
        nothing happens (no lookup, no counters) until the result is
        touched.  Hits return a fresh list copied from the stored tuple, so
        cached answers can never be mutated through a result.
        """
        if not self.enabled:
            return compute

        def evaluate() -> List:
            cached = self.get(key)
            if cached is not None:
                return list(cached)
            # Capture the generation *before* computing: if the index is
            # replaced mid-evaluation, put() drops this (now stale) answer.
            generation = self._generation
            value = compute()
            if isinstance(value, PartialAnswer):
                # Never cache a degraded answer: a shard outage must cost
                # re-evaluation on the next request, not pin the partial
                # result until eviction / TTL / generation bump.
                return value
            self.put(key, value, generation=generation)
            return list(value)

        return evaluate

    # -- maintenance / observability ----------------------------------------------
    def bump_generation(self) -> int:
        """Invalidate every current entry in O(1); returns the new generation.

        Entries written under earlier generations become unreachable
        immediately (lookups key on the current generation) and age out of
        the store through ordinary LRU eviction — no scan, no pause.  Used
        when the index behind the cache is reloaded or replaced, so a
        request that hit the old index can never be answered with its
        matches.
        """
        with self._lock:
            self._generation += 1
            return self._generation

    def clear(self) -> None:
        """Drop every entry (counters are preserved; see :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit / miss / eviction / expiration counters."""
        with self._lock:
            self._hits.reset()
            self._misses.reset()
            self._evictions.reset()
            self._expirations.reset()

    @property
    def metrics(self) -> MetricsRegistry:
        """The cache's metrics registry (``cache_*`` series for /metrics)."""
        return self._metrics

    def stats(self) -> dict:
        """Counters and occupancy, as surfaced by ``Engine.describe()``.

        A consistent view: the snapshot holds the cache lock (shared with
        the metrics registry), so no counter can advance between reads.
        """
        with self._lock:
            for expired in self._expired_keys():
                del self._entries[expired]
                self._expirations.inc()
            hits, misses, evictions = self._hits.value, self._misses.value, self._evictions.value
            expirations = self._expirations.value
            generation = self._generation
            size = len(self._entries)
        lookups = hits + misses
        return {
            "enabled": self.enabled,
            "capacity": self._capacity,
            "size": size,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "expirations": expirations,
            "generation": generation,
            "ttl_seconds": self._ttl_seconds,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }
