"""LRU result caching for the hot query path of the :mod:`repro.api` engines.

Serving traffic repeats itself: the same ``(pattern, tau, top_k)`` triples
arrive over and over, and every index in the package answers a repeated
request with exactly the same matches (queries are pure functions of the
built index).  :class:`ResultCache` exploits that — it is a thread-safe LRU
sitting in front of ``Engine._evaluate`` (and the merged evaluation of
``ShardedEngine``), keyed on ``(pattern, tau, top_k, kind)``.

Design constraints, in order:

* **Immutability** — cached values are stored as tuples and copied into a
  fresh list on every hit, so no caller (pagination included) can mutate a
  cached answer; :class:`~repro.api.requests.SearchResult` already never
  mutates its match list, the copy guards against callers reaching into
  ``result.matches`` directly.
* **Laziness** — :meth:`wrap` returns an evaluation *closure*, so the cache
  is only consulted when a lazy result is actually touched.  Untouched
  results cost neither a lookup nor a counter tick, and batch deduplication
  (:mod:`repro.api.batch`) composes: each distinct request probes the cache
  exactly once per evaluation.
* **Observability** — hit / miss / eviction counters are cheap to keep and
  surfaced through :meth:`stats` into ``Engine.describe()``, because a
  serving cache nobody can measure is a serving cache nobody can size.

Errors are never cached: an evaluation that raises (e.g. a
:class:`~repro.exceptions.ThresholdError` for a ``tau`` below ``tau_min``)
propagates without touching the stored entries, and the failed lookup is
counted as a miss.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from ..exceptions import ValidationError

#: Default number of distinct request keys an engine keeps hot.
DEFAULT_CACHE_SIZE = 1024

#: Cache keys are ``(pattern, tau, top_k, kind)`` tuples; typed loosely so
#: the sharded engine can reuse the same cache with its own key shape.
CacheKey = Hashable


class ResultCache:
    """A bounded, thread-safe LRU over evaluated match lists.

    Parameters
    ----------
    capacity:
        Maximum number of distinct keys to retain.  ``0`` disables the
        cache entirely — :meth:`wrap` then returns the computation
        unchanged, so a disabled cache costs nothing on the query path.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE):
        if capacity < 0:
            raise ValidationError(f"cache capacity must be >= 0, got {capacity}")
        self._capacity = int(capacity)
        self._entries: "OrderedDict[CacheKey, Tuple]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- configuration ------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of entries retained."""
        return self._capacity

    @property
    def enabled(self) -> bool:
        """Whether the cache retains anything at all."""
        return self._capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ResultCache(capacity={self._capacity}, size={len(self._entries)}, "
            f"hits={self._hits}, misses={self._misses})"
        )

    # -- core operations ----------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[Tuple]:
        """The cached answer for ``key``, or ``None`` (counts a hit or miss)."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: CacheKey, value: Sequence) -> None:
        """Store ``value`` (copied to an immutable tuple) under ``key``."""
        if not self.enabled:
            return
        frozen = tuple(value)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = frozen
                return
            self._entries[key] = frozen
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def wrap(self, key: CacheKey, compute: Callable[[], List]) -> Callable[[], List]:
        """A lazy evaluation closure: cache lookup first, ``compute`` on miss.

        The returned callable is what a :class:`SearchResult` evaluates —
        nothing happens (no lookup, no counters) until the result is
        touched.  Hits return a fresh list copied from the stored tuple, so
        cached answers can never be mutated through a result.
        """
        if not self.enabled:
            return compute

        def evaluate() -> List:
            cached = self.get(key)
            if cached is not None:
                return list(cached)
            value = compute()
            self.put(key, value)
            return list(value)

        return evaluate

    # -- maintenance / observability ----------------------------------------------
    def clear(self) -> None:
        """Drop every entry (counters are preserved; see :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit / miss / eviction counters."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> dict:
        """Counters and occupancy, as surfaced by ``Engine.describe()``."""
        with self._lock:
            hits, misses, evictions = self._hits, self._misses, self._evictions
            size = len(self._entries)
        lookups = hits + misses
        return {
            "enabled": self.enabled,
            "capacity": self._capacity,
            "size": size,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }
