"""Batch query execution for the :mod:`repro.api` façade.

``Engine.search_many`` funnels through :func:`execute_batch`, which
amortizes work across the batch without touching index internals:

* **Deduplication** — identical requests share one lazy evaluation (and one
  cached answer); serving workloads are full of repeated patterns.
* **Threshold refinement** — several plain-reporting requests for the
  *same pattern* at different thresholds trigger a single index traversal
  at the lowest threshold; the tighter answers are derived by filtering the
  base answer (a match reported above ``tau₁`` is above ``tau₂ > tau₁``
  exactly when its value clears ``tau₂``).  Refinement is enabled only for
  engines whose index both stores and compares match values in the same
  linear space the filter uses — the listing index, whose ``ListingMatch``
  carries the exact float the direct query compares against ``tau``, so the
  derived answer is bit-identical to a direct query.  The substring indexes
  compare in *log* space and report ``exp(value)``; a linear filter over
  the reported probabilities can flip a strict comparison within a ulp of
  the boundary, and the approximate index additionally carries an additive
  error — both therefore run each distinct request directly.  ``top_k``
  requests also always run directly: their boundary semantics admit values
  a hair below ``tau`` (the indexes apply a 1e-12 tolerance), which a
  filter over a plain query's answer cannot reproduce — and the heap-driven
  ``top_k`` path is already output-sensitive, so there is little to save.

Everything stays lazy: nothing runs until some result in the batch is
actually consumed, and consuming one result materializes only the
evaluations it depends on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.base import Occurrence
from .cache import CacheKey, ResultCache
from .requests import Match, PartialAnswer, SearchRequest, SearchResult

#: Key identifying requests that can share one evaluation verbatim.
#: ``timeout_ms`` is deliberately absent: the budget changes how long a
#: caller waits, never what the answer is.
_RequestKey = Tuple[str, Optional[float], Optional[int]]


def _match_value(match: Match) -> float:
    """The probability (occurrence) or relevance (listing match) of a match."""
    if isinstance(match, Occurrence):
        return match.probability
    return match.relevance


def _carry_partial(base: SearchResult, matches: List[Match]) -> List[Match]:
    """Tag ``matches`` as partial when the answer they derive from is.

    A result filtered or shared from a degraded base answer is itself
    degraded — the failed shards' matches are missing from it just the
    same — so the :class:`PartialAnswer` metadata must survive refinement
    and same-threshold sharing (and keep the derived answer out of the
    cache).
    """
    source = base.matches
    if isinstance(source, PartialAnswer):
        return PartialAnswer(matches, source.failed_shards)
    return matches


def _derive_filtered(base: SearchResult, tau: float) -> Callable[[], List[Match]]:
    """Answer at threshold ``tau`` derived from a lower-threshold answer."""
    return lambda: _carry_partial(
        base, [match for match in base.matches if _match_value(match) > tau]
    )


def execute_batch(
    requests: Sequence[Union[SearchRequest, str]],
    evaluate: Callable[[SearchRequest], List[Match]],
    tau_min: float,
    *,
    default_tau: Optional[float] = None,
    refine_tau: bool = True,
    cache: Optional[ResultCache] = None,
    cache_key: Optional[Callable[[SearchRequest], CacheKey]] = None,
) -> List[SearchResult]:
    """Turn a batch of requests into (shared, lazy, cacheable) results.

    Parameters
    ----------
    requests:
        Bare patterns or :class:`SearchRequest` objects.
    evaluate:
        Callback running one request against the engine's index.
    tau_min:
        The index's minimum supported threshold (for ``tau=None``
        resolution when grouping).
    default_tau:
        Threshold applied to bare-pattern entries.
    refine_tau:
        Enable same-pattern threshold refinement.  Only engines whose
        index compares match values in linear space (the listing index)
        pass ``True`` — see the module docstring.
    cache, cache_key:
        Optional engine-level :class:`~repro.api.cache.ResultCache` plus
        the engine's request→key function.  Every result in the batch —
        direct, refined-by-filtering, and the shared base evaluation —
        has its final evaluation closure wrapped in the cache, so a batch
        both *reads* earlier answers (a repeated batch is pure cache hits,
        never touching the index) and *writes* its own (a later single
        ``search`` reuses batch work).  The wrap happens once, at the
        result level, so dedupe and refinement never double-probe.
    """
    # The batch-level default applies to bare patterns only — an explicit
    # SearchRequest keeps its own threshold.
    normalized = [
        request
        if isinstance(request, SearchRequest)
        else SearchRequest(request, tau=default_tau)
        for request in requests
    ]

    # Base (lowest-threshold full query) per pattern, for refinement.
    # Requests whose explicit threshold is below the index's tau_min are
    # never usable as a base: their own evaluation raises, and deriving a
    # valid request's answer from them would propagate that error.
    base_for_pattern: Dict[str, SearchRequest] = {}
    if refine_tau:
        for request in normalized:
            if request.top_k is not None:
                continue
            if request.tau is not None and request.tau < tau_min:
                continue
            current = base_for_pattern.get(request.pattern)
            if current is None or request.resolve_tau(tau_min) < current.resolve_tau(tau_min):
                base_for_pattern[request.pattern] = request

    shared: Dict[_RequestKey, SearchResult] = {}

    def wrapped(
        request: SearchRequest, compute: Callable[[], List[Match]]
    ) -> Callable[[], List[Match]]:
        if cache is None or cache_key is None:
            return compute
        cached = cache.wrap(cache_key(request), compute)
        trace = request.trace
        if trace is None:
            return cached

        def traced() -> List[Match]:
            # A cache hit never reaches the engine, so the trace gains no
            # records from the wrapped computation — that is the hit signal.
            before = trace.size()
            with trace.span("cache", parent="evaluate") as meta:
                value = cached()
                meta["hit"] = trace.size() == before
            return value

        return traced

    def result_for(request: SearchRequest) -> SearchResult:
        key: _RequestKey = (request.pattern, request.tau, request.top_k)
        existing = shared.get(key)
        if existing is not None:
            return existing

        # top_k requests run directly (identical duplicates still share
        # through the key above); refinement applies to plain reporting only.
        base_request = (
            base_for_pattern.get(request.pattern) if request.top_k is None else None
        )
        base_result = None
        if base_request is not None and base_request is not request:
            base_key: _RequestKey = (base_request.pattern, base_request.tau, None)
            base_result = shared.get(base_key)
            if base_result is None:
                base_result = SearchResult(
                    base_request,
                    wrapped(base_request, lambda r=base_request: evaluate(r)),
                )
                shared[base_key] = base_result

        tau = request.resolve_tau(tau_min)
        if base_result is not None and base_result.request.resolve_tau(tau_min) < tau:
            result = SearchResult(
                request, wrapped(request, _derive_filtered(base_result, tau))
            )
        elif base_result is not None and (
            base_result.request.resolve_tau(tau_min) == tau
        ):
            # Same pattern, same threshold, possibly different spelling of
            # the default — share the base evaluation outright.
            shared_base = base_result
            result = base_result if base_result.request == request else SearchResult(
                request,
                wrapped(
                    request,
                    lambda: _carry_partial(shared_base, list(shared_base.matches)),
                ),
            )
        else:
            result = SearchResult(
                request, wrapped(request, lambda r=request: evaluate(r))
            )
        shared[key] = result
        return result

    return [result_for(request) for request in normalized]
