"""Shard query workers: the process side of ``query_executor="process"``.

The thread-pool fan-out of :class:`~repro.api.sharding.ShardedEngine` is
GIL-serialized for the pure-Python portions of the query path; true
parallel speedup needs shard workers in separate *processes*.  This module
is everything that runs inside those workers — it is module-level (not
closures or methods) because :class:`concurrent.futures.ProcessPoolExecutor`
must pickle the callables it ships.

Design:

* **One persistent process per shard.**  Each worker process is
  initialized once with its shard's index (:func:`initialize_worker`) and
  then answers any number of queries against it — no per-query index
  transfer, no per-query process spawn.
* **Two initialization sources.**  A shard loaded from disk ships only its
  archive *path* (plus the mmap flag): the worker re-opens the archive
  itself, and with ``mmap=True`` every worker's view of the shard shares
  one set of physical pages through the OS page cache.  A shard built in
  memory ships the pickled index object instead (engines themselves hold a
  ``threading.Lock`` inside their cache and cannot cross the boundary —
  the same reason the parallel *construction* path ships raw payloads).
* **Array answers.**  A query's matches cross back as
  ``(kind, ids, values)`` ndarray payloads
  (:func:`repro.core.base.matches_to_arrays`) instead of one pickled
  dataclass per match; the parent rebuilds the objects at the merge
  boundary, byte-identically (int64 / float64 round-trip exactly).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Union

import numpy as np

from ..core.base import matches_to_arrays, resolve_tau

#: Worker-initialization spec: ``("archive", path, mmap)`` for shards that
#: live on disk, ``("index", index_object)`` for in-memory shards.
WorkerSpec = Union[Tuple[str, str, bool], Tuple[str, Any]]

#: The shard index owned by *this* worker process (set by the pool
#: initializer; ``None`` in the parent and in uninitialized workers).
_WORKER_INDEX: Any = None


def initialize_worker(spec: WorkerSpec) -> None:
    """Process-pool initializer: materialize this worker's shard index."""
    global _WORKER_INDEX
    if spec[0] == "archive":
        from .persistence import load_index_payload

        _, path, mmap = spec
        _WORKER_INDEX, _ = load_index_payload(path, mmap=mmap)
    elif spec[0] == "index":
        _WORKER_INDEX = spec[1]
    else:
        raise ValueError(f"unknown worker spec {spec[0]!r}")


def query_worker(
    arguments: Tuple[str, Optional[float], Optional[int]],
) -> Tuple[str, np.ndarray, np.ndarray]:
    """Answer one ``(pattern, tau, top_k)`` query against this worker's shard.

    Mirrors ``Engine._evaluate`` exactly — ``top_k`` routes to the index's
    heap extraction, plain requests resolve ``tau=None`` through the
    shard's own ``tau_min`` — so a process-mode sharded engine answers
    byte-identically to thread mode.  Exceptions (e.g. a ``ThresholdError``
    for a ``tau`` below ``tau_min``) pickle through the future and
    propagate in the parent, matching the thread-mode behaviour.
    """
    if _WORKER_INDEX is None:
        raise RuntimeError("shard worker used before initialization")
    pattern, tau, top_k = arguments
    if top_k is not None:
        matches = _WORKER_INDEX.top_k(pattern, top_k, tau=tau)
    else:
        matches = _WORKER_INDEX.query(
            pattern, resolve_tau(tau, float(_WORKER_INDEX.tau_min))
        )
    return matches_to_arrays(matches)
