"""Shard query workers: the process side of ``query_executor="process"``.

The thread-pool fan-out of :class:`~repro.api.sharding.ShardedEngine` is
GIL-serialized for the pure-Python portions of the query path; true
parallel speedup needs shard workers in separate *processes*.  This module
is everything that runs inside those workers — it is module-level (not
closures or methods) because :class:`concurrent.futures.ProcessPoolExecutor`
must pickle the callables it ships.

Design:

* **Workers sized independently of shard count.**  A worker process owns
  one or more shards (``ShardedEngine(max_workers=W)`` with ``W`` smaller
  than the shard count assigns shard ``s`` to worker ``s % W``), each
  initialized exactly once (:func:`initialize_worker`) and then answering
  any number of queries — no per-query index transfer, no per-query
  process spawn.
* **Payloads, not pickles.**  A shard loaded from disk ships only its
  archive *path* (plus the mmap flag): the worker re-opens the archive
  itself, and with ``mmap=True`` every worker's view of the shard shares
  one set of physical pages through the OS page cache.  A shard built in
  memory ships a shared-memory block *name* plus an array layout (see
  :mod:`repro.api.shm`): the parent exports the shard's
  :class:`~repro.payload.IndexPayload` into one
  :mod:`multiprocessing.shared_memory` block, the worker attaches and
  rebuilds the index from zero-copy read-only views — the pickled spec is
  O(array count), not O(index bytes), and every worker shares one
  physical copy.  No live index object (with its embedded locks and
  caches) ever crosses the process boundary.
* **Array answers.**  A query's matches cross back as
  ``(kind, ids, values, eval_ms)`` payloads — ndarrays plus the worker's
  own evaluation wall-clock (:func:`repro.core.base.matches_to_arrays`
  for the arrays) instead of one pickled dataclass per match; the parent
  rebuilds the objects at the merge boundary, byte-identically (int64 /
  float64 round-trip exactly), and attaches ``eval_ms`` to the request's
  ``shard`` trace span when the request is traced.
* **Tracing stays plain data.**  A traced request crosses the boundary
  as its ``trace_id`` string inside the argument tuple — never the live
  :class:`~repro.obs.trace.Trace` object (which holds a lock); the
  worker-boundary lint rule keeps this honest.
"""

from __future__ import annotations

import atexit
import contextlib
import gc
import os
import stat
import time
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..core.base import matches_to_arrays, resolve_tau
from ..exceptions import ValidationError, WorkerError
from ..payload import IndexPayload

#: Per-shard initialization spec: ``("archive", path, mmap)`` for shards
#: that live on disk, ``("shm", block_name, manifest_span, layout)`` for
#: in-memory shards exported through :mod:`repro.api.shm`, and the legacy
#: ``("payload", index_payload)`` form that pickles the arrays themselves.
WorkerSpec = Union[
    Tuple[str, str, bool],
    Tuple[str, str, Tuple[int, int], Dict[str, Any]],
    Tuple[str, IndexPayload],
]

#: The shard indexes owned by *this* worker process, keyed by shard
#: ordinal (set by the pool initializer; empty in the parent and in
#: uninitialized workers).
_WORKER_INDEXES: Dict[int, Any] = {}

#: Shared-memory handles this worker has attached (one per ``shm`` spec).
#: Retained for the process lifetime: the shard indexes hold zero-copy
#: views into the mapped buffers, so the handles must outlive them.
_WORKER_SHM: list = []


def _close_worker_shm() -> None:
    """Interpreter-exit hook: drop index views, then close the mappings.

    The ndarray views exported from ``shm.buf`` must be garbage first or
    ``close()`` raises ``BufferError`` — clear the index table, collect,
    then close each handle (suppressing the error for any view a query
    result still pins; process exit unmaps regardless).
    """
    _WORKER_INDEXES.clear()
    gc.collect()
    while _WORKER_SHM:
        block = _WORKER_SHM.pop()
        with contextlib.suppress(BufferError, OSError):
            block.close()


def _materialize(spec: WorkerSpec) -> Any:
    """Build one shard index from its initialization spec."""
    if spec[0] == "archive":
        from .persistence import load_index_payload

        _, path, mmap = spec
        index, _ = load_index_payload(path, mmap=mmap)
        return index
    if spec[0] == "shm":
        from .persistence import index_from_payload
        from .shm import attach_payload

        _, name, manifest_span, layout = spec
        block, payload = attach_payload(name, manifest_span, layout)
        _WORKER_SHM.append(block)
        return index_from_payload(payload)
    if spec[0] == "payload":
        from .persistence import index_from_payload

        return index_from_payload(spec[1])
    raise ValidationError(f"unknown worker spec {spec[0]!r}")


def close_sockets_worker() -> None:
    """Drop socket fds the fork copied from the parent process.

    Query pools start lazily — often mid-traffic, and again whenever a
    crashed pool is rebuilt — so on fork-start platforms a new worker
    inherits a duplicate of every socket the serving parent had open: the
    HTTP listener, accepted connections, the event loop's self-pipe pair.
    The worker never uses them, but each duplicate keeps its TCP session
    established after the parent closes its own copy — a peer reading to
    EOF then waits forever, and ``Connection: close`` responses never
    finish closing.  Workers talk to the parent exclusively over pipes
    (``multiprocessing`` queues), so every inherited *socket* past stdio
    is a leak: close them all before touching shard state.
    """
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (OSError, ValueError):  # no procfs (macOS, ...): bounded scan
        fds = list(range(3, 4096))
    for fd in fds:
        if fd <= 2:  # stdio stays, socket or not — it may be the harness pipe
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:  # already closed, or the listdir handle raced away
            continue


def initialize_worker(specs: Dict[int, WorkerSpec]) -> None:
    """Process-pool initializer: materialize every shard this worker owns."""
    global _WORKER_INDEXES
    close_sockets_worker()
    _WORKER_INDEXES.clear()
    _WORKER_INDEXES.update(
        {shard: _materialize(spec) for shard, spec in specs.items()}
    )
    if _WORKER_SHM:
        # Last-registered runs first, so the views die before the handles.
        atexit.register(_close_worker_shm)


def query_worker(
    arguments: Tuple[int, str, Optional[float], Optional[int], Optional[str]],
) -> Tuple[str, np.ndarray, np.ndarray, float]:
    """Answer one ``(shard, pattern, tau, top_k, trace_id)`` shard query.

    Mirrors ``Engine._evaluate`` exactly — ``top_k`` routes to the index's
    heap extraction, plain requests resolve ``tau=None`` through the
    shard's own ``tau_min`` — so a process-mode sharded engine answers
    byte-identically to thread mode.  Exceptions (e.g. a ``ThresholdError``
    for a ``tau`` below ``tau_min``) pickle through the future and
    propagate in the parent, matching the thread-mode behaviour.

    ``trace_id`` is the request's trace identifier (``None`` when
    untraced) — plain payload data for log correlation and error context,
    never a live trace object.  The returned ``eval_ms`` is the worker's
    evaluation wall-clock; the parent attaches it to the request's
    ``shard`` span.
    """
    shard, pattern, tau, top_k, trace_id = arguments
    index = _WORKER_INDEXES.get(shard)
    if index is None:
        suffix = f" (trace {trace_id})" if trace_id else ""
        raise WorkerError(
            f"shard worker asked for shard {shard} it does not own "
            f"(owned: {sorted(_WORKER_INDEXES)}){suffix}"
        )
    start = time.perf_counter()
    if top_k is not None:
        matches = index.top_k(pattern, top_k, tau=tau)
    else:
        matches = index.query(pattern, resolve_tau(tau, float(index.tau_min)))
    eval_ms = (time.perf_counter() - start) * 1000.0
    kind, ids, values = matches_to_arrays(matches)
    return kind, ids, values, eval_ms
