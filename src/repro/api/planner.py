"""Index auto-selection for the :mod:`repro.api` façade.

The paper defines four index variants plus baselines; which one fits depends
on the *shape* of the input, not on anything a caller should have to know
about the theory.  :func:`plan_index` inspects the input — special
vs. general uncertain string, single string vs. collection, alphabet size,
length, optional space budget — and produces an :class:`IndexPlan` naming
the :mod:`repro.core` class to build, the constructor options and a
human-readable reason for the choice.  Explicit ``kind=...`` overrides are
always honoured.

Selection rules (``kind="auto"``)
---------------------------------
1. A collection (``UncertainStringCollection`` or a sequence of strings /
   uncertain strings) becomes an :class:`UncertainStringListingIndex` —
   listing is the only query the paper defines over collections.
2. A special uncertain string — ``SpecialUncertainString``, a plain ``str``
   (certain characters) or an ``UncertainString`` with a single probable
   character per position — becomes a :class:`SpecialUncertainStringIndex`;
   when a ``space_budget_bytes`` is given and the RMQ tower will not fit,
   the planner falls back to the O(n)-space :class:`SimpleSpecialIndex`.
3. A general uncertain string becomes a
   :class:`GeneralUncertainStringIndex`; when a ``space_budget_bytes`` is
   given and the per-length structures over the transformed text will not
   fit — or when ``epsilon`` is passed explicitly — the planner selects the
   :class:`ApproximateSubstringIndex` instead (smaller, additive-error).

Space estimates are deliberately coarse (the honest number requires
building the index); they exist so a budget can steer the choice, and the
formulas are documented next to the code.  They are also *calibrated*:
every build records its measured size (:func:`record_build_observation`),
and the observed-vs-estimated ratio feeds a per-kind multiplicative
correction with a decaying window (:data:`CALIBRATION_WINDOW`) that later
plans apply — surfaced through ``describe()["plan"]["calibration"]``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type, Union

from .._validation import check_threshold
from ..core.approximate import ApproximateSubstringIndex
from ..core.general_index import GeneralUncertainStringIndex
from ..core.listing import UncertainStringListingIndex
from ..core.simple_index import SimpleSpecialIndex
from ..core.special_index import SpecialUncertainStringIndex
from ..exceptions import ValidationError
from ..strings.collection import UncertainStringCollection
from ..strings.special import SpecialUncertainString
from ..strings.uncertain import UncertainString

#: Construction threshold used when the caller does not provide one for an
#: index kind that requires it (general / approximate / listing).  Matches
#: the τ_min the paper's evaluation uses throughout.
DEFAULT_TAU_MIN = 0.1

#: Longest pattern a chunk-sharded engine supports by default.  Chunks
#: overlap by ``max_pattern_len - 1`` positions so that every window of up
#: to ``max_pattern_len`` characters lies wholly inside the chunk that owns
#: its starting position; longer patterns could straddle a boundary and are
#: rejected at query time.
DEFAULT_MAX_PATTERN_LEN = 64

#: Index kinds the planner knows, mapped to the class it will build.
INDEX_CLASSES: Dict[str, type] = {
    "special": SpecialUncertainStringIndex,
    "simple": SimpleSpecialIndex,
    "general": GeneralUncertainStringIndex,
    "approximate": ApproximateSubstringIndex,
    "listing": UncertainStringListingIndex,
}

IndexInput = Union[
    str,
    UncertainString,
    SpecialUncertainString,
    UncertainStringCollection,
    Sequence[Union[str, UncertainString]],
]


@dataclass(frozen=True)
class IndexPlan:
    """The planner's decision: which index to build and how.

    Attributes
    ----------
    kind:
        One of ``"special"``, ``"simple"``, ``"general"``,
        ``"approximate"``, ``"listing"``.
    tau_min:
        Construction threshold the index will be built with (``0.0`` for
        the special-string indexes, which support any positive threshold).
    reason:
        Human-readable explanation of the choice (surfaced by
        ``Engine.describe()`` and useful in logs).
    options:
        Extra constructor keyword arguments.
    profile:
        Facts about the input the decision was based on (length, alphabet
        size, uncertain fraction, document count, estimated sizes).
    prepared_input:
        The exact object the index constructor should receive (e.g. the
        special-string view the planner already derived), so building the
        plan does not repeat the planner's input scan.  ``None`` on plans
        that were not produced by :func:`plan_index` for this input
        (e.g. plans restored from an archive).
    """

    kind: str
    tau_min: float
    reason: str
    options: Dict[str, Any] = field(default_factory=dict)
    profile: Dict[str, Any] = field(default_factory=dict)
    prepared_input: Any = field(default=None, repr=False, compare=False)

    @property
    def index_class(self) -> Type:
        """The :mod:`repro.core` class this plan builds."""
        return INDEX_CLASSES[self.kind]


def normalize_input(
    data: IndexInput,
) -> Union[UncertainString, SpecialUncertainString, UncertainStringCollection]:
    """Coerce the accepted input shapes into the three canonical types.

    * ``str`` → a certain :class:`SpecialUncertainString`;
    * a sequence of strings / uncertain strings → an
      :class:`UncertainStringCollection`;
    * the canonical types pass through unchanged.
    """
    if isinstance(data, (UncertainString, SpecialUncertainString, UncertainStringCollection)):
        return data
    if isinstance(data, str):
        if not data:
            raise ValidationError("cannot index an empty string")
        return SpecialUncertainString.from_deterministic(data)
    if isinstance(data, Sequence):
        documents: List[UncertainString] = []
        for entry in data:
            if isinstance(entry, UncertainString):
                documents.append(entry)
            elif isinstance(entry, SpecialUncertainString):
                documents.append(entry.to_uncertain_string())
            elif isinstance(entry, str):
                documents.append(UncertainString.from_deterministic(entry))
            else:
                raise ValidationError(
                    "collection entries must be strings or uncertain strings, "
                    f"got {type(entry).__name__}"
                )
        if not documents:
            raise ValidationError("cannot index an empty collection")
        return UncertainStringCollection(documents)
    raise ValidationError(
        f"cannot index a {type(data).__name__}; expected a string, an "
        "UncertainString, a SpecialUncertainString, an "
        "UncertainStringCollection or a sequence of documents"
    )


def _special_view(string: UncertainString) -> Optional[SpecialUncertainString]:
    """A special-string view of ``string`` when every position is single-character."""
    if string.correlations:
        return None
    pairs: List[Tuple[str, float]] = []
    for distribution in string:
        if len(distribution) != 1:
            return None
        pairs.append(distribution.most_likely())
    return SpecialUncertainString(pairs, name=string.name)


def _profile(
    data: Union[UncertainString, SpecialUncertainString, UncertainStringCollection],
) -> Dict[str, Any]:
    """Facts about the input the planner bases its decision on."""
    if isinstance(data, UncertainStringCollection):
        lengths = [len(document) for document in data]
        alphabet: set = set()
        uncertain = 0
        total = 0
        for document in data:
            for distribution in document:
                alphabet.update(distribution.characters)
                total += 1
                if len(distribution) > 1:
                    uncertain += 1
        return {
            "shape": "collection",
            "document_count": len(data),
            "length": sum(lengths),
            "max_document_length": max(lengths),
            "alphabet_size": len(alphabet),
            "uncertain_fraction": uncertain / max(1, total),
        }
    if isinstance(data, SpecialUncertainString):
        return {
            "shape": "special",
            "length": len(data),
            "alphabet_size": len(set(data.text)),
            "uncertain_fraction": float(
                sum(1 for p in data.probabilities if p < 1.0) / len(data)
            ),
        }
    alphabet = set()
    uncertain = 0
    for distribution in data:
        alphabet.update(distribution.characters)
        if len(distribution) > 1:
            uncertain += 1
    return {
        "shape": "general",
        "length": len(data),
        "alphabet_size": len(alphabet),
        "uncertain_fraction": uncertain / len(data),
        "correlated": bool(data.correlations),
    }


# -- space estimates ----------------------------------------------------------------------
def _estimate_special_bytes(n: int) -> int:
    """Coarse size of the RMQ-tower special index.

    Suffix array + inverse (16 n) + cumulative table (8 n) + one C_i array
    with its RMQ (~16 n) per length up to ⌈log2 n⌉.
    """
    levels = max(1, math.ceil(math.log2(n + 1)))
    return int(24 * n + 16 * n * levels)


def _estimate_simple_bytes(n: int) -> int:
    """Suffix array + inverse + cumulative table only."""
    return int(24 * n)


def _expansion_factor(tau_min: float) -> float:
    """Heuristic expansion of the maximal-factor transformation.

    The paper bounds the transformed length by O((1/τ_min)² · n); real
    inputs land far below that, so the planner uses a capped 1/τ_min.
    """
    return max(1.0, min(16.0, 1.0 / tau_min))


def _estimate_general_bytes(n: int, tau_min: float) -> int:
    """Special-index estimate over the (expansion-adjusted) transformed text."""
    m = int(n * _expansion_factor(tau_min))
    return _estimate_special_bytes(m) + 24 * m  # + LCP and position maps


def _estimate_approximate_bytes(n: int, tau_min: float) -> int:
    """Links + tree over the transformed text — no per-length tower."""
    m = int(n * _expansion_factor(tau_min))
    return int(64 * m)


def _estimate_listing_bytes(n: int, tau_min: float) -> int:
    """The listing index is a general-style index over the concatenation,
    plus the per-rank document array."""
    return _estimate_general_bytes(n, tau_min) + 8 * int(n * _expansion_factor(tau_min))


# -- calibration: feeding estimate_error back into the formulas ---------------------------
#: Decay window (in recorded builds) of the per-kind calibration: each new
#: observation carries weight ``1/CALIBRATION_WINDOW`` once that many
#: observations exist (plain averaging before that), so the correction
#: tracks the workload with an effective memory of about one window.
CALIBRATION_WINDOW = 8

#: Clamp on the per-kind log2 correction: a single wild observation (or a
#: degenerate tiny input) can never push an estimate further than this many
#: doublings from the raw formula.
CALIBRATION_LOG2_CLAMP = 6.0

_calibration_lock = threading.Lock()
_calibration_state: Dict[str, Dict[str, float]] = {}  # guarded-by: _calibration_lock


def reset_calibration() -> None:
    """Drop every recorded calibration correction (estimates revert to raw)."""
    with _calibration_lock:
        _calibration_state.clear()


def calibration_factor(kind: str) -> float:
    """Current multiplicative correction applied to ``kind``'s size estimate."""
    with _calibration_lock:
        state = _calibration_state.get(kind)
        return 2.0 ** state["log2_correction"] if state else 1.0


def calibration_snapshot() -> Dict[str, Dict[str, Any]]:
    """Per-kind calibration state: correction factor + observation count."""
    with _calibration_lock:
        return {
            kind: {
                "correction": 2.0 ** state["log2_correction"],
                "log2_correction": state["log2_correction"],
                "observations": int(state["observations"]),
                "window": CALIBRATION_WINDOW,
            }
            for kind, state in _calibration_state.items()
        }


def _plan_calibration(kind: str) -> Dict[str, Any]:
    """The calibration record a plan carries (surfaced by ``describe()``)."""
    with _calibration_lock:
        state = _calibration_state.get(kind)
        return {
            "kind": kind,
            "correction": 2.0 ** state["log2_correction"] if state else 1.0,
            "observations": int(state["observations"]) if state else 0,
            "window": CALIBRATION_WINDOW,
        }


def _calibrated_estimate(kind: str, raw_bytes: int) -> int:
    """Apply the per-kind multiplicative correction to a raw formula output."""
    return max(1, int(round(raw_bytes * calibration_factor(kind))))


def _observe_calibration(kind: str, raw_estimated: int, observed: int) -> None:
    """Fold one ``observed / raw_estimate`` ratio into the kind's correction.

    Log-space exponential moving average: weight ``1/(n+1)`` while fewer
    than :data:`CALIBRATION_WINDOW` observations exist (so the first few
    builds converge like a plain mean) and ``1/CALIBRATION_WINDOW``
    afterwards (so the correction keeps adapting with a bounded memory —
    the "decay window").  The error term is clamped to
    ±:data:`CALIBRATION_LOG2_CLAMP` doublings.
    """
    if raw_estimated <= 0 or observed <= 0:
        return
    error = math.log2(observed / float(raw_estimated))
    error = max(-CALIBRATION_LOG2_CLAMP, min(CALIBRATION_LOG2_CLAMP, error))
    with _calibration_lock:
        state = _calibration_state.setdefault(
            kind, {"log2_correction": 0.0, "observations": 0}
        )
        observations = int(state["observations"])
        alpha = 1.0 / min(observations + 1, CALIBRATION_WINDOW)
        state["log2_correction"] = (
            (1.0 - alpha) * state["log2_correction"] + alpha * error
        )
        state["log2_correction"] = max(
            -CALIBRATION_LOG2_CLAMP,
            min(CALIBRATION_LOG2_CLAMP, state["log2_correction"]),
        )
        state["observations"] = observations + 1


def record_build_observation(plan: IndexPlan, observed_bytes: int) -> None:
    """Record the *measured* size of a freshly built index into its plan.

    The planner's ``_estimate_*`` formulas are deliberately coarse; this
    feedback hook makes their accuracy observable *and feeds it back*:
    the ``observed / raw_estimate`` ratio updates the per-kind
    multiplicative correction (decaying window, see
    :func:`_observe_calibration`) that future :func:`plan_index` calls
    apply to the same kind's estimate.  Writes ``observed_bytes`` into
    ``plan.profile`` and, when the plan carried an ``estimated_bytes``
    prediction, an ``estimate_error`` record — surfaced by
    ``Engine.describe()["plan"]["estimate_error"]``:

    * ``estimated_bytes`` / ``observed_bytes`` — the two sides,
    * ``ratio`` — ``observed / estimated`` (1.0 means a perfect estimate),
    * ``log2_error`` — signed doubling error, the natural scale for a
      formula that only tries to be right within a small power of two.
    """
    profile = plan.profile
    observed = int(observed_bytes)
    profile["observed_bytes"] = observed
    estimated = profile.get("estimated_bytes")
    if estimated and estimated > 0 and observed > 0:
        ratio = observed / float(estimated)
        profile["estimate_error"] = {
            "estimated_bytes": int(estimated),
            "observed_bytes": observed,
            "ratio": ratio,
            "log2_error": math.log2(ratio),
        }
        _observe_calibration(
            plan.kind, int(profile.get("raw_estimated_bytes", estimated)), observed
        )


def plan_index(
    data: IndexInput,
    *,
    tau_min: Optional[float] = None,
    kind: str = "auto",
    space_budget_bytes: Optional[int] = None,
    epsilon: Optional[float] = None,
    metric: str = "max",
    **options: Any,
) -> IndexPlan:
    """Decide which index to build for ``data`` (see module docstring).

    Parameters
    ----------
    data:
        Anything :func:`normalize_input` accepts.
    tau_min:
        Construction threshold.  Required semantics differ by kind: the
        general / approximate / listing indexes need one (defaulting to
        :data:`DEFAULT_TAU_MIN`); the special-string indexes support any
        positive query threshold and ignore it.
    kind:
        ``"auto"`` (default) or an explicit override naming any key of
        :data:`INDEX_CLASSES`.
    space_budget_bytes:
        Optional soft budget steering auto-selection towards the smaller
        variant (simple instead of special, approximate instead of
        general).
    epsilon:
        Additive error bound; passing it explicitly selects the
        approximate index for general inputs under ``kind="auto"``.
    metric:
        Relevance metric for listing indexes.
    options:
        Extra constructor keyword arguments forwarded verbatim.
    """
    normalized = normalize_input(data)
    profile = _profile(normalized)
    if tau_min is not None:
        check_threshold(tau_min)
    if kind != "auto" and kind not in INDEX_CLASSES:
        raise ValidationError(
            f"unknown index kind {kind!r}; expected 'auto' or one of "
            f"{sorted(INDEX_CLASSES)}"
        )

    effective_tau_min = DEFAULT_TAU_MIN if tau_min is None else float(tau_min)
    n = int(profile["length"])

    # 1. Collections always answer the listing problem.
    if profile["shape"] == "collection":
        if kind not in ("auto", "listing"):
            raise ValidationError(
                f"a collection can only back a listing index, not {kind!r}"
            )
        plan_options = dict(options)
        plan_options["metric"] = metric
        raw_estimate = _estimate_listing_bytes(n, effective_tau_min)
        profile = dict(
            profile,
            estimated_bytes=_calibrated_estimate("listing", raw_estimate),
            raw_estimated_bytes=raw_estimate,
            calibration=_plan_calibration("listing"),
        )
        return IndexPlan(
            kind="listing",
            tau_min=effective_tau_min,
            reason=(
                f"collection of {profile['document_count']} documents "
                f"({n} total positions) → document-listing index "
                f"(metric={metric!r}, tau_min={effective_tau_min})"
            ),
            options=plan_options,
            profile=profile,
            prepared_input=normalized,
        )

    special = (
        normalized
        if isinstance(normalized, SpecialUncertainString)
        else _special_view(normalized)
    )

    # 2. Explicit override.
    if kind != "auto":
        return _plan_for_kind(
            kind, normalized, special, effective_tau_min, epsilon,
            profile, options, reason=f"explicit kind={kind!r} override",
        )

    # 3. Special-string inputs.
    if special is not None:
        raw_estimate = _estimate_special_bytes(n)
        estimate = _calibrated_estimate("special", raw_estimate)
        profile = dict(
            profile,
            estimated_bytes=estimate,
            raw_estimated_bytes=raw_estimate,
            calibration=_plan_calibration("special"),
        )
        if space_budget_bytes is not None and estimate > space_budget_bytes:
            raw_simple = _estimate_simple_bytes(n)
            profile = dict(
                profile,
                estimated_bytes=_calibrated_estimate("simple", raw_simple),
                raw_estimated_bytes=raw_simple,
                calibration=_plan_calibration("simple"),
            )
            return IndexPlan(
                kind="simple",
                tau_min=0.0,
                reason=(
                    f"special uncertain string of length {n}, but the RMQ tower "
                    f"(~{estimate} B) exceeds the {space_budget_bytes} B budget → "
                    f"linear-space scanning index "
                    f"(~{_calibrated_estimate('simple', raw_simple)} B)"
                ),
                options=dict(options),
                profile=profile,
                prepared_input=special,
            )
        return IndexPlan(
            kind="special",
            tau_min=0.0,
            reason=(
                f"special uncertain string of length {n} "
                f"(alphabet {profile['alphabet_size']}) → RMQ-based special index, "
                f"O(m + occ) short-pattern queries at any threshold"
            ),
            options=dict(options),
            profile=profile,
            prepared_input=special,
        )

    # 4. General uncertain strings.
    raw_estimate = _estimate_general_bytes(n, effective_tau_min)
    estimate = _calibrated_estimate("general", raw_estimate)
    profile = dict(
        profile,
        estimated_bytes=estimate,
        raw_estimated_bytes=raw_estimate,
        calibration=_plan_calibration("general"),
    )
    wants_approximate = epsilon is not None or (
        space_budget_bytes is not None and estimate > space_budget_bytes
    )
    if wants_approximate:
        plan_options = dict(options)
        if epsilon is not None:
            plan_options["epsilon"] = epsilon
        why = (
            f"epsilon={epsilon} requested"
            if epsilon is not None
            else f"estimated {estimate} B exceeds the {space_budget_bytes} B budget"
        )
        raw_approximate = _estimate_approximate_bytes(n, effective_tau_min)
        approximate_estimate = _calibrated_estimate("approximate", raw_approximate)
        profile = dict(
            profile,
            estimated_bytes=approximate_estimate,
            raw_estimated_bytes=raw_approximate,
            calibration=_plan_calibration("approximate"),
        )
        return IndexPlan(
            kind="approximate",
            tau_min=effective_tau_min,
            reason=(
                f"general uncertain string of length {n}; {why} → link-based "
                f"approximate index (additive error, "
                f"~{approximate_estimate} B)"
            ),
            options=plan_options,
            profile=profile,
            prepared_input=normalized,
        )
    return IndexPlan(
        kind="general",
        tau_min=effective_tau_min,
        reason=(
            f"general uncertain string of length {n} (alphabet "
            f"{profile['alphabet_size']}, uncertain fraction "
            f"{profile['uncertain_fraction']:.2f}) → maximal-factor transform + "
            f"RMQ index at tau_min={effective_tau_min}"
        ),
        options=dict(options),
        profile=profile,
        prepared_input=normalized,
    )


def _plan_for_kind(
    kind: str,
    normalized: Union[UncertainString, SpecialUncertainString],
    special: Optional[SpecialUncertainString],
    effective_tau_min: float,
    epsilon: Optional[float],
    profile: Dict[str, Any],
    options: Dict[str, Any],
    *,
    reason: str,
) -> IndexPlan:
    """Honour an explicit ``kind=...`` override on a single-string input."""
    if kind == "listing":
        raise ValidationError(
            "a listing index needs a collection; wrap the string in an "
            "UncertainStringCollection or pass a sequence of documents"
        )
    if kind in ("special", "simple"):
        if special is None:
            raise ValidationError(
                f"kind={kind!r} requires a special uncertain string (one "
                "probable character per position); this input is general — "
                "use kind='general' or let the planner transform it"
            )
        # The special-string indexes support any positive query threshold;
        # a caller-provided tau_min has no effect on them.
        return IndexPlan(
            kind=kind,
            tau_min=0.0,
            reason=reason,
            options=dict(options),
            profile=profile,
            prepared_input=special,
        )
    plan_options = dict(options)
    if kind == "approximate" and epsilon is not None:
        plan_options["epsilon"] = epsilon
    # General / approximate indexes take a general uncertain string; convert
    # a special input once, here, so construction does not repeat it.
    prepared = (
        normalized.to_uncertain_string()
        if isinstance(normalized, SpecialUncertainString)
        else normalized
    )
    return IndexPlan(
        kind=kind,
        tau_min=effective_tau_min,
        reason=reason,
        options=plan_options,
        profile=profile,
        prepared_input=prepared,
    )


# -- sharding: input partitioning ---------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """How an input was partitioned into shards (the sharding "plan").

    Attributes
    ----------
    mode:
        ``"documents"`` — a collection split into contiguous document
        ranges; ``"chunks"`` — a single string split into overlapping
        chunks.
    shard_count:
        Number of shards actually produced (requests for more shards than
        documents / positions are clamped).
    offsets:
        Global coordinate of each shard's first owned unit: the first
        document identifier (documents mode) or the chunk's starting
        position (chunks mode).
    owned_ends:
        End (exclusive) of each shard's *owned* range in global
        coordinates.  In chunks mode a chunk extends ``overlap`` positions
        past its owned end; matches starting in that overlap are owned by
        (and reported from) the next shard, which is how the merge dedupes.
    overlap:
        Number of positions adjacent chunks share (``max_pattern_len - 1``;
        ``0`` in documents mode).
    max_pattern_len:
        Longest query pattern a chunk-sharded engine can answer
        (``None`` in documents mode — document sharding has no limit).
    """

    mode: str
    shard_count: int
    offsets: Tuple[int, ...]
    owned_ends: Tuple[int, ...]
    overlap: int
    max_pattern_len: Optional[int]

    def owner_of(self, position: int) -> int:
        """Index of the shard owning global ``position`` (or document id)."""
        for shard, end in enumerate(self.owned_ends):
            if position < end:
                return shard
        raise ValidationError(
            f"position {position} is outside the sharded input "
            f"(total {self.owned_ends[-1] if self.owned_ends else 0})"
        )


def shard_input(
    data: IndexInput,
    shards: int,
    *,
    max_pattern_len: int = DEFAULT_MAX_PATTERN_LEN,
) -> Tuple[ShardSpec, List[Any]]:
    """Partition an index input into per-shard inputs plus the spec.

    Collections split by document into contiguous near-equal ranges
    (document identifiers in query answers stay globally correct after the
    merge re-bases them).  Single strings — general or special — split into
    chunks of near-equal owned length, each extended by an overlap of
    ``max_pattern_len - 1`` positions so any pattern of up to
    ``max_pattern_len`` characters starting inside a chunk's owned range is
    fully contained in that chunk.

    Correlated general strings are rejected in chunks mode: a correlation
    rule whose endpoints land in different chunks cannot be evaluated by
    either shard, so the chunked answers would silently diverge from the
    unsharded ones.  Collections may be correlated freely (rules never
    cross documents).
    """
    if shards < 1:
        raise ValidationError(f"shard count must be >= 1, got {shards}")
    normalized = normalize_input(data)

    if isinstance(normalized, UncertainStringCollection):
        count = min(shards, len(normalized))
        base, extra = divmod(len(normalized), count)
        offsets: List[int] = []
        owned_ends: List[int] = []
        parts: List[Any] = []
        start = 0
        for shard in range(count):
            size = base + (1 if shard < extra else 0)
            stop = start + size
            offsets.append(start)
            owned_ends.append(stop)
            parts.append(
                UncertainStringCollection(
                    normalized.documents[start:stop],
                    names=normalized.names[start:stop],
                )
            )
            start = stop
        spec = ShardSpec(
            mode="documents",
            shard_count=count,
            offsets=tuple(offsets),
            owned_ends=tuple(owned_ends),
            overlap=0,
            max_pattern_len=None,
        )
        return spec, parts

    if max_pattern_len < 1:
        raise ValidationError(
            f"max_pattern_len must be >= 1, got {max_pattern_len}"
        )
    if isinstance(normalized, UncertainString) and normalized.correlations:
        raise ValidationError(
            "cannot chunk-shard a correlated uncertain string: correlation "
            "rules crossing a chunk boundary would be dropped and change "
            "query answers; shard by document instead, or index unsharded"
        )
    n = len(normalized)
    count = min(shards, n)
    overlap = max_pattern_len - 1
    step = math.ceil(n / count)
    starts = list(range(0, n, step))
    offsets: List[int] = []
    owned_ends: List[int] = []
    parts: List[Any] = []
    for shard, start in enumerate(starts):
        owned_end = min(start + step, n)
        chunk_end = min(owned_end + overlap, n)
        offsets.append(start)
        owned_ends.append(owned_end)
        parts.append(normalized.slice(start, chunk_end))
    spec = ShardSpec(
        mode="chunks",
        shard_count=len(starts),
        offsets=tuple(offsets),
        owned_ends=tuple(owned_ends),
        overlap=overlap,
        max_pattern_len=max_pattern_len,
    )
    return spec, parts
