"""Index persistence: versioned ``.npz`` archives for every index variant.

Indexes are expensive to build (suffix-array construction plus the
per-length RMQ tower) and cheap to *use*; a serving deployment wants to
build offline and load hot.  :func:`save_index_payload` writes a single
``.npz`` archive holding

* every heavy numpy component — suffix array, LCP array, cumulative
  probability tables, per-length ``C_i`` / relevance arrays, blocking
  structures, link tables — exactly as the in-memory index holds them, and
* a JSON **manifest** (format name + version, the index kind, constructor
  configuration, the serialized input string / collection and the plan)
  under the reserved ``__manifest__`` key.

:func:`load_index_payload` restores the index without re-running
construction.  Because every probability array round-trips bit-exactly, a
loaded index returns **byte-identical** query results to the one that was
saved.

Two archive versions exist (:data:`FORMAT_VERSION` is the current one):

* **Version 1** (legacy) — ``np.savez_compressed`` archives holding only
  the value arrays.  The RMQ structures, pure functions of their value
  arrays, are *rebuilt* on load (O(n log n) per structure) — cheap enough
  for one process, the dominant cold-start cost for a serving fleet.
* **Version 2** (legacy) — additionally stores the serialized RMQ
  payloads (:func:`repro.suffix.rmq.serialize_rmq`: full sparse tables,
  block positions, summary tables), making cold start O(1) array
  restores, and defaults to an **uncompressed** zip so the archive can
  be served **memory-mapped**.  The cost: the serialized sparse tables
  are O(n log n) words and dominate the archive.
* **Version 3** (current) — *is* the payload schema
  (:mod:`repro.payload`): ``index.to_payload()`` flattened into a zip of
  ``.npy`` members plus a JSON manifest describing the schema tree.
  There are no per-kind save/load special cases — any structure with
  ``to_payload`` / ``from_payload`` round-trips — and the RMQ payloads
  are space-efficient (Fischer–Heun block positions, O(n / log n) words;
  the cheap top levels are rebuilt on load in O(n/b · log n) work), so a
  v3 archive is a fraction of the v2 size while keeping the mmap-able
  uncompressed layout: ``load_index_payload(path, mmap=True)`` maps
  every stored ``.npy`` member read-only straight out of the archive
  file — zero copies, and any number of worker processes opening the
  same archive share one set of physical pages through the OS page cache
  (the space-conscious serving mode of Gabory et al., arXiv:2403.14256).

Version 1 and 2 archives keep loading through the frozen legacy loaders
below (any RMQ whose payload is absent is rebuilt), and ``mmap=True``
degrades gracefully on compressed members (they are decompressed
eagerly).  Loading an archive with an unknown format or newer version
fails loudly instead of misinterpreting bytes.
"""

from __future__ import annotations

import io
import json
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..core.approximate import ApproximateSubstringIndex, Link
from ..core.factors import MaximalFactor, TransformedString
from ..core.general_index import GeneralUncertainStringIndex
from ..core.listing import UncertainStringListingIndex
from ..core.simple_index import SimpleSpecialIndex
from ..core.special_index import SpecialUncertainStringIndex
from ..exceptions import ValidationError
from ..faults import SITE_ARCHIVE_LOAD, fire
from ..payload import PAYLOAD_VERSION, IndexPayload, verify_manifest_checksums
from ..strings.serialization import (
    collection_from_manifest as _collection_from_manifest,
    collection_to_manifest as _collection_to_manifest,
    correlation_rules_from_manifest as _rules_from_manifest,
    correlation_rules_to_manifest as _rules_to_manifest,
    special_string_from_manifest as _special_from_manifest,
    special_string_to_manifest as _special_to_manifest,
    uncertain_string_from_manifest as _uncertain_from_manifest,
    uncertain_string_to_manifest as _uncertain_to_manifest,
)
from ..suffix.rmq import RMQ_PAYLOAD_VERSION, deserialize_rmq, make_rmq, serialize_rmq
from ..suffix.suffix_array import SuffixArray
from ..suffix.suffix_tree import SuffixTree

FORMAT_NAME = "repro-index"
FORMAT_VERSION = 3

#: Versions :func:`save_index_payload` can still *write* (v1 / v2 for
#: compatibility testing and old-fleet rollouts, v3 the serving format).
WRITABLE_VERSIONS = (1, 2, 3)

#: Reserved archive key holding the JSON manifest (UTF-8 bytes).
MANIFEST_KEY = "__manifest__"

#: Sharded engines persist as a *directory*: one ordinary ``.npz`` archive
#: per shard plus this JSON manifest describing the partition, so every
#: shard stays individually loadable with :func:`load_index_payload`.
SHARDED_FORMAT_NAME = "repro-sharded-index"
SHARDED_FORMAT_VERSION = 1
SHARDED_MANIFEST_NAME = "manifest.json"

_KIND_BY_CLASS = {
    SpecialUncertainStringIndex: "special",
    SimpleSpecialIndex: "simple",
    GeneralUncertainStringIndex: "general",
    ApproximateSubstringIndex: "approximate",
    UncertainStringListingIndex: "listing",
}


def normalize_archive_path(path: Union[str, Path]) -> Path:
    """Resolve the archive path, appending ``.npz`` when no suffix is given."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


# ---------------------------------------------------------------------------
# IndexPayload currency: the format-3 archive layout and the registry the
# workers / parallel-construction paths use to rebuild indexes from payloads
# ---------------------------------------------------------------------------
_CLASS_BY_KIND = {kind: cls for cls, kind in _KIND_BY_CLASS.items()}

#: Schema prefix shared by every index payload (``index/<kind>``).
INDEX_SCHEMA_PREFIX = "index/"


def index_to_payload(index: Any) -> IndexPayload:
    """The validated :class:`~repro.payload.IndexPayload` describing ``index``."""
    kind = _KIND_BY_CLASS.get(type(index))
    if kind is None:
        raise ValidationError(
            f"cannot serialize a {type(index).__name__}; supported index "
            f"classes: {sorted(cls.__name__ for cls in _KIND_BY_CLASS)}"
        )
    payload = index.to_payload().validate()
    expected = INDEX_SCHEMA_PREFIX + kind
    if payload.schema != expected:
        raise ValidationError(
            f"{type(index).__name__}.to_payload() returned schema "
            f"{payload.schema!r}, expected {expected!r}"
        )
    return payload


def payload_kind(payload: IndexPayload) -> str:
    """The index kind an ``index/<kind>`` payload describes."""
    if not payload.schema.startswith(INDEX_SCHEMA_PREFIX):
        raise ValidationError(
            f"{payload.schema!r} is not an index payload schema "
            f"(expected an {INDEX_SCHEMA_PREFIX}<kind> schema)"
        )
    kind = payload.schema[len(INDEX_SCHEMA_PREFIX):]
    if kind not in _CLASS_BY_KIND:
        raise ValidationError(f"unknown index payload kind {kind!r}")
    return kind


def index_from_payload(payload: IndexPayload) -> Any:
    """Rebuild an index from its payload (inverse of :func:`index_to_payload`).

    Bit-packed boolean arrays (see :meth:`IndexPayload.compact`) are
    expanded here — the one boundary between the compact storage currency
    and the query-time index classes; narrowed integer arrays stay narrow
    and the index kernels widen lazily where arithmetic demands it.
    """
    return _CLASS_BY_KIND[payload_kind(payload)].from_payload(payload.expand())


# ---------------------------------------------------------------------------
# TransformedString round-trip (legacy v1/v2 archive layout)
# ---------------------------------------------------------------------------
def _transformed_to_payload(
    transformed: TransformedString, arrays: Dict[str, np.ndarray], prefix: str
) -> Dict[str, Any]:
    arrays[f"{prefix}probabilities"] = transformed.probabilities
    arrays[f"{prefix}positions"] = transformed.positions
    arrays[f"{prefix}documents"] = transformed.documents
    return {
        "text": transformed.text,
        "tau_min": transformed.tau_min,
        "separator": transformed.separator,
        "source_length": transformed.source_length,
        "document_count": transformed.document_count,
    }


def _transformed_from_payload(
    entry: Dict[str, Any], arrays: Dict[str, np.ndarray], prefix: str
) -> TransformedString:
    """Rebuild the transformation by recovering its factors from the arrays.

    Factors are delimited by the separator character, so the factor list —
    and with it every invariant the constructor enforces — is recovered
    exactly; the constructor then reassembles text and arrays identical to
    the saved ones.
    """
    text: str = entry["text"]
    separator: str = entry["separator"]
    probabilities = arrays[f"{prefix}probabilities"]
    positions = arrays[f"{prefix}positions"]
    documents = arrays[f"{prefix}documents"]
    factors: List[MaximalFactor] = []
    start = 0
    for index, character in enumerate(text):
        if character != separator:
            continue
        if index > start:
            document = int(documents[start])
            factors.append(
                MaximalFactor(
                    start=int(positions[start]),
                    characters=text[start:index],
                    probabilities=tuple(float(v) for v in probabilities[start:index]),
                    document=document if document >= 0 else 0,
                )
            )
        start = index + 1
    return TransformedString(
        factors,
        tau_min=entry["tau_min"],
        source_length=entry["source_length"],
        document_count=entry["document_count"],
        separator=separator,
    )


# ---------------------------------------------------------------------------
# RMQ payloads (version 2 archives; absent keys mean "rebuild on load")
# ---------------------------------------------------------------------------
def _save_rmq(arrays: Dict[str, np.ndarray], prefix: str, rmq: Any) -> None:
    """Store one RMQ's serialized payload under ``prefix``-ed archive keys."""
    for name, payload in serialize_rmq(rmq).items():
        arrays[f"{prefix}{name}"] = payload


def _save_rmq_map(
    arrays: Dict[str, np.ndarray], prefix: str, rmq_map: Dict[int, Any]
) -> None:
    """Store a per-length RMQ dict (keys ``{prefix}{length}_{name}``)."""
    for length, rmq in rmq_map.items():
        _save_rmq(arrays, f"{prefix}{length}_", rmq)


def _restore_rmq(
    values: np.ndarray,
    arrays: Dict[str, np.ndarray],
    prefix: str,
    *,
    implementation: str = "sparse",
) -> Any:
    """Restore (v2) or rebuild (v1) the RMQ stored under ``prefix``.

    When the archive carries the serialized payload the structure is
    restored without preprocessing; otherwise — a version-1 archive — it
    is rebuilt from the value array exactly as the original loader did.
    """
    payload = {
        key[len(prefix):]: value
        for key, value in arrays.items()
        if key.startswith(prefix)
    }
    if payload:
        return deserialize_rmq(values, payload, mode="max")
    return make_rmq(values, mode="max", implementation=implementation)


# ---------------------------------------------------------------------------
# Per-kind save / load
# ---------------------------------------------------------------------------
def _save_special(
    index: SpecialUncertainStringIndex,
    arrays: Dict[str, np.ndarray],
    include_rmq: bool = True,
) -> Dict[str, Any]:
    arrays["suffix_array"] = index._suffix_array.array
    arrays["prefix"] = index._prefix
    for length, values in index._short_values.items():
        arrays[f"short_values_{length}"] = values
    for length, maxima in index._block_maxima.items():
        arrays[f"block_maxima_{length}"] = maxima
    if include_rmq:
        _save_rmq_map(arrays, "rmq_short_", index._short_rmq)
        _save_rmq_map(arrays, "rmq_block_", index._block_rmq)
    return {
        "string": _special_to_manifest(index._string),
        "correlations": _rules_to_manifest(index._correlations),
        "max_short_length": index._max_short_length,
        "short_lengths": sorted(index._short_values),
        "block_lengths": sorted(index._block_maxima),
        "long_pattern_mode": index._long_pattern_mode,
        "rmq_implementation": index._rmq_implementation,
    }


def _load_special(config: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> SpecialUncertainStringIndex:
    index = SpecialUncertainStringIndex.__new__(SpecialUncertainStringIndex)
    index._string = _special_from_manifest(config["string"])
    index._correlations = _rules_from_manifest(config["correlations"])
    index._long_pattern_mode = config["long_pattern_mode"]
    index._rmq_implementation = config["rmq_implementation"]
    index._suffix_array = SuffixArray(index._string.text, array=arrays["suffix_array"])
    index._prefix = arrays["prefix"]
    index._max_short_length = int(config["max_short_length"])
    implementation = config["rmq_implementation"]
    index._short_values = {
        int(length): arrays[f"short_values_{length}"] for length in config["short_lengths"]
    }
    index._short_rmq = {
        length: _restore_rmq(
            values, arrays, f"rmq_short_{length}_", implementation=implementation
        )
        for length, values in index._short_values.items()
    }
    index._block_maxima = {
        int(length): arrays[f"block_maxima_{length}"] for length in config["block_lengths"]
    }
    index._block_rmq = {
        length: _restore_rmq(
            maxima, arrays, f"rmq_block_{length}_", implementation=implementation
        )
        for length, maxima in index._block_maxima.items()
    }
    return index


def _save_simple(
    index: SimpleSpecialIndex,
    arrays: Dict[str, np.ndarray],
    include_rmq: bool = True,
) -> Dict[str, Any]:
    arrays["suffix_array"] = index._suffix_array.array
    arrays["prefix"] = index._prefix
    return {
        "string": _special_to_manifest(index._string),
        "correlations": _rules_to_manifest(index._correlations),
    }


def _load_simple(config: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> SimpleSpecialIndex:
    index = SimpleSpecialIndex.__new__(SimpleSpecialIndex)
    index._string = _special_from_manifest(config["string"])
    index._correlations = _rules_from_manifest(config["correlations"])
    index._suffix_array = SuffixArray(index._string.text, array=arrays["suffix_array"])
    index._prefix = arrays["prefix"]
    return index


def _save_general(
    index: GeneralUncertainStringIndex,
    arrays: Dict[str, np.ndarray],
    include_rmq: bool = True,
) -> Dict[str, Any]:
    arrays["suffix_array"] = index._suffix_array.array
    arrays["lcp"] = index._lcp
    arrays["prefix"] = index._prefix
    arrays["rank_positions"] = index._rank_positions
    for length, values in index._short_values.items():
        arrays[f"short_values_{length}"] = values
    for length, values in index._block_values.items():
        arrays[f"block_values_{length}"] = values
    for length, maxima in index._block_maxima.items():
        arrays[f"block_maxima_{length}"] = maxima
    if include_rmq:
        _save_rmq_map(arrays, "rmq_short_", index._short_rmq)
        _save_rmq_map(arrays, "rmq_block_", index._block_rmq)
    return {
        "string": _uncertain_to_manifest(index._string),
        "tau_min": index._tau_min,
        "transformed": _transformed_to_payload(index._transformed, arrays, "transformed_"),
        "max_short_length": index._max_short_length,
        "short_lengths": sorted(index._short_values),
        "block_lengths": sorted(index._block_maxima),
        "long_pattern_mode": index._long_pattern_mode,
        "rmq_implementation": index._rmq_implementation,
    }


def _load_general(config: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> GeneralUncertainStringIndex:
    index = GeneralUncertainStringIndex.__new__(GeneralUncertainStringIndex)
    index._string = _uncertain_from_manifest(config["string"])
    index._tau_min = float(config["tau_min"])
    index._long_pattern_mode = config["long_pattern_mode"]
    index._rmq_implementation = config["rmq_implementation"]
    index._needs_verification = bool(index._string.correlations)
    index._transformed = _transformed_from_payload(
        config["transformed"], arrays, "transformed_"
    )
    index._suffix_array = SuffixArray(
        index._transformed.text, array=arrays["suffix_array"]
    )
    index._lcp = arrays["lcp"]
    index._prefix = arrays["prefix"]
    index._rank_positions = arrays["rank_positions"]
    index._max_short_length = int(config["max_short_length"])
    implementation = config["rmq_implementation"]
    index._short_values = {
        int(length): arrays[f"short_values_{length}"] for length in config["short_lengths"]
    }
    index._short_rmq = {
        length: _restore_rmq(
            values, arrays, f"rmq_short_{length}_", implementation=implementation
        )
        for length, values in index._short_values.items()
    }
    index._block_values = {
        int(length): arrays[f"block_values_{length}"] for length in config["block_lengths"]
    }
    index._block_maxima = {
        int(length): arrays[f"block_maxima_{length}"] for length in config["block_lengths"]
    }
    index._block_rmq = {
        length: _restore_rmq(
            maxima, arrays, f"rmq_block_{length}_", implementation=implementation
        )
        for length, maxima in index._block_maxima.items()
    }
    return index


def _save_listing(
    index: UncertainStringListingIndex,
    arrays: Dict[str, np.ndarray],
    include_rmq: bool = True,
) -> Dict[str, Any]:
    arrays["suffix_array"] = index._suffix_array.array
    arrays["lcp"] = index._lcp
    arrays["prefix"] = index._prefix
    arrays["rank_positions"] = index._rank_positions
    arrays["rank_documents"] = index._rank_documents
    for length, values in index._relevance.items():
        arrays[f"relevance_{length}"] = values
    if include_rmq:
        _save_rmq_map(arrays, "rmq_relevance_", index._relevance_rmq)
    return {
        "collection": _collection_to_manifest(index._collection),
        "tau_min": index._tau_min,
        "metric": index._metric,
        "transformed": _transformed_to_payload(index._transformed, arrays, "transformed_"),
        "max_short_length": index._max_short_length,
        "relevance_lengths": sorted(index._relevance),
        "rmq_implementation": index._rmq_implementation,
    }


def _load_listing(config: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> UncertainStringListingIndex:
    index = UncertainStringListingIndex.__new__(UncertainStringListingIndex)
    index._collection = _collection_from_manifest(config["collection"])
    index._tau_min = float(config["tau_min"])
    index._metric = config["metric"]
    index._rmq_implementation = config["rmq_implementation"]
    index._needs_verification = any(
        bool(document.correlations) for document in index._collection
    )
    index._transformed = _transformed_from_payload(
        config["transformed"], arrays, "transformed_"
    )
    index._suffix_array = SuffixArray(
        index._transformed.text, array=arrays["suffix_array"]
    )
    index._lcp = arrays["lcp"]
    index._prefix = arrays["prefix"]
    index._rank_positions = arrays["rank_positions"]
    index._rank_documents = arrays["rank_documents"]
    index._max_short_length = int(config["max_short_length"])
    implementation = config["rmq_implementation"]
    index._relevance = {
        int(length): arrays[f"relevance_{length}"]
        for length in config["relevance_lengths"]
    }
    index._relevance_rmq = {
        length: _restore_rmq(
            values, arrays, f"rmq_relevance_{length}_", implementation=implementation
        )
        for length, values in index._relevance.items()
    }
    return index


def _save_approximate(
    index: ApproximateSubstringIndex,
    arrays: Dict[str, np.ndarray],
    include_rmq: bool = True,
) -> Dict[str, Any]:
    arrays["suffix_array"] = index._suffix_array.array
    arrays["lcp"] = index._tree.lcp
    arrays["prefix"] = index._prefix
    arrays["rank_positions"] = index._rank_positions
    arrays["link_origin_left"] = np.asarray(
        [link.origin_left for link in index._links], dtype=np.int64
    )
    arrays["link_origin_right"] = np.asarray(
        [link.origin_right for link in index._links], dtype=np.int64
    )
    arrays["link_origin_depth"] = np.asarray(
        [link.origin_depth for link in index._links], dtype=np.int64
    )
    arrays["link_target_depth"] = np.asarray(
        [link.target_depth for link in index._links], dtype=np.int64
    )
    arrays["link_position"] = np.asarray(
        [link.position for link in index._links], dtype=np.int64
    )
    arrays["link_probability"] = np.asarray(
        [link.probability for link in index._links], dtype=np.float64
    )
    if include_rmq and index._link_rmq is not None:
        _save_rmq(arrays, "rmq_links_", index._link_rmq)
    return {
        "string": _uncertain_to_manifest(index._string),
        "tau_min": index._tau_min,
        "epsilon": index._epsilon,
        "transformed": _transformed_to_payload(index._transformed, arrays, "transformed_"),
        "link_count": len(index._links),
    }


def _load_approximate(config: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> ApproximateSubstringIndex:
    index = ApproximateSubstringIndex.__new__(ApproximateSubstringIndex)
    index._string = _uncertain_from_manifest(config["string"])
    index._tau_min = float(config["tau_min"])
    index._epsilon = float(config["epsilon"])
    index._transformed = _transformed_from_payload(
        config["transformed"], arrays, "transformed_"
    )
    index._suffix_array = SuffixArray(
        index._transformed.text, array=arrays["suffix_array"]
    )
    index._tree = SuffixTree(index._suffix_array, lcp=arrays["lcp"])
    index._prefix = arrays["prefix"]
    index._rank_positions = arrays["rank_positions"]
    index._links = [
        Link(
            origin_left=int(arrays["link_origin_left"][i]),
            origin_right=int(arrays["link_origin_right"][i]),
            origin_depth=int(arrays["link_origin_depth"][i]),
            target_depth=int(arrays["link_target_depth"][i]),
            position=int(arrays["link_position"][i]),
            probability=float(arrays["link_probability"][i]),
        )
        for i in range(int(config["link_count"]))
    ]
    index._link_origin_left = arrays["link_origin_left"]
    index._link_probabilities = arrays["link_probability"]
    if len(index._links) > 0:
        index._link_rmq = _restore_rmq(index._link_probabilities, arrays, "rmq_links_")
    else:
        index._link_rmq = None
    return index


_SAVERS = {
    "special": _save_special,
    "simple": _save_simple,
    "general": _save_general,
    "listing": _save_listing,
    "approximate": _save_approximate,
}

_LOADERS = {
    "special": _load_special,
    "simple": _load_simple,
    "general": _load_general,
    "listing": _load_listing,
    "approximate": _load_approximate,
}


# ---------------------------------------------------------------------------
# Archive assembly
# ---------------------------------------------------------------------------
def _plan_manifest(plan: Any) -> Dict[str, Any]:
    return {
        "kind": plan.kind,
        "tau_min": plan.tau_min,
        "reason": plan.reason,
        "profile": dict(plan.profile),
    }


def _write_npy_member(archive: zipfile.ZipFile, key: str, array: np.ndarray) -> None:
    """Write one array as the ``{key}.npy`` member of an open zip archive."""
    buffer = io.BytesIO()
    np.lib.format.write_array(
        buffer, np.ascontiguousarray(array), allow_pickle=False
    )
    archive.writestr(f"{key}.npy", buffer.getvalue())


def save_index_payload(
    index: Any,
    plan: Optional[Any],
    path: Union[str, Path],
    *,
    version: int = FORMAT_VERSION,
    compress: Optional[bool] = None,
    compact: bool = False,
) -> Path:
    """Write ``index`` (and optionally its plan) to a versioned ``.npz`` archive.

    ``version`` selects the archive format: ``3`` (default) writes the
    index's :class:`~repro.payload.IndexPayload` — stored arrays as
    ``.npy`` zip members keyed by payload path, the schema tree in the
    JSON manifest — as an **uncompressed** zip so the archive is
    memory-mappable; ``2`` and ``1`` reproduce the legacy layouts (full
    RMQ tables, and compressed rebuild-on-load respectively) for
    compatibility testing and old-fleet rollouts.  ``compress`` overrides
    the per-version default (compressed v2/v3 archives remain valid —
    ``mmap=True`` just degrades to eager decompression for them).

    ``compact=True`` (version-3 only) writes the dtype-minimized payload
    (:meth:`~repro.payload.IndexPayload.compact`): narrowed integers and
    bit-packed booleans on disk, with the logical dtypes recorded in the
    manifest so the inspector and loaders know what was transformed.
    Loading restores byte-identical answers — the kernels accept narrow
    integer arrays directly and booleans are re-expanded at the single
    consumption boundary.
    """
    if version not in WRITABLE_VERSIONS:
        raise ValidationError(
            f"cannot write archive version {version}; supported: {WRITABLE_VERSIONS}"
        )
    if compress is None:
        compress = version < 2
    path = normalize_archive_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    if compact and version < 3:
        raise ValidationError(
            f"compact archives require format version >= 3, got {version}"
        )
    if version >= 3:
        payload = index_to_payload(index)
        if compact:
            payload = payload.compact()
        manifest = {
            "format": FORMAT_NAME,
            "version": version,
            "kind": payload_kind(payload),
            "payload_version": PAYLOAD_VERSION,
            "payload": payload.manifest(),
        }
        if plan is not None:
            manifest["plan"] = _plan_manifest(plan)
        manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
        compression = zipfile.ZIP_DEFLATED if compress else zipfile.ZIP_STORED
        with zipfile.ZipFile(path, "w", compression=compression) as archive:
            _write_npy_member(
                archive, MANIFEST_KEY, np.frombuffer(manifest_bytes, dtype=np.uint8)
            )
            for key, array in payload.flatten().items():
                _write_npy_member(archive, key, array)
        return path

    # Legacy v1 / v2 layouts (frozen).
    kind = _KIND_BY_CLASS.get(type(index))
    if kind is None:
        raise ValidationError(
            f"cannot serialize a {type(index).__name__}; supported index "
            f"classes: {sorted(cls.__name__ for cls in _KIND_BY_CLASS)}"
        )
    arrays: Dict[str, np.ndarray] = {}
    config = _SAVERS[kind](index, arrays, include_rmq=version >= 2)
    if MANIFEST_KEY in arrays:
        raise ValidationError(f"{MANIFEST_KEY} is a reserved archive key")

    manifest = {
        "format": FORMAT_NAME,
        "version": version,
        "kind": kind,
        "config": config,
    }
    if version >= 2:
        manifest["rmq_payload_version"] = RMQ_PAYLOAD_VERSION
    if plan is not None:
        manifest["plan"] = _plan_manifest(plan)
    payload = json.dumps(manifest, sort_keys=True).encode("utf-8")
    arrays[MANIFEST_KEY] = np.frombuffer(payload, dtype=np.uint8)

    writer = np.savez_compressed if compress else np.savez
    with path.open("wb") as handle:
        writer(handle, **arrays)
    return path


def _extract_manifest(archive: Any, path: Path) -> Dict[str, Any]:
    """Decode and validate the manifest entry of an open archive."""
    if MANIFEST_KEY not in archive:
        raise ValidationError(f"{path} is not a repro index archive (no manifest)")
    manifest = json.loads(bytes(archive[MANIFEST_KEY].tolist()).decode("utf-8"))
    if manifest.get("format") != FORMAT_NAME:
        raise ValidationError(
            f"{path} has format {manifest.get('format')!r}, expected {FORMAT_NAME!r}"
        )
    if int(manifest.get("version", -1)) > FORMAT_VERSION:
        raise ValidationError(
            f"{path} was written by a newer format version "
            f"({manifest.get('version')} > {FORMAT_VERSION}); upgrade the package"
        )
    if int(manifest.get("rmq_payload_version", RMQ_PAYLOAD_VERSION)) > RMQ_PAYLOAD_VERSION:
        raise ValidationError(
            f"{path} carries a newer RMQ payload version "
            f"({manifest.get('rmq_payload_version')} > {RMQ_PAYLOAD_VERSION}); "
            "upgrade the package"
        )
    if int(manifest.get("payload_version", PAYLOAD_VERSION)) > PAYLOAD_VERSION:
        raise ValidationError(
            f"{path} carries a newer payload schema version "
            f"({manifest.get('payload_version')} > {PAYLOAD_VERSION}); "
            "upgrade the package"
        )
    return manifest


# ---------------------------------------------------------------------------
# Memory-mapped archive reading (zero-copy serving)
# ---------------------------------------------------------------------------
def _mmap_member(path: Path, info: zipfile.ZipInfo) -> np.ndarray:
    """Map one *stored* ``.npy`` zip member read-only, without copying.

    A ``ZIP_STORED`` member's bytes sit verbatim inside the archive file:
    skip the member's local zip header, parse the ``.npy`` header, and
    hand the remaining byte range to :class:`numpy.memmap`.  The pages
    backing the returned array live in the OS page cache and are shared by
    every process that maps the same archive.
    """
    with path.open("rb") as handle:
        handle.seek(info.header_offset)
        local_header = handle.read(30)
        if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
            raise ValidationError(
                f"{path} has a corrupt local header for member {info.filename!r}"
            )
        name_length = int.from_bytes(local_header[26:28], "little")
        extra_length = int.from_bytes(local_header[28:30], "little")
        handle.seek(info.header_offset + 30 + name_length + extra_length)
        npy_version = np.lib.format.read_magic(handle)
        if npy_version == (1, 0):
            shape, fortran_order, dtype = np.lib.format.read_array_header_1_0(handle)
        elif npy_version == (2, 0):
            shape, fortran_order, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            raise ValidationError(
                f"{path} member {info.filename!r} uses unsupported npy "
                f"format version {npy_version}"
            )
        if dtype.hasobject:
            raise ValidationError(
                f"{path} member {info.filename!r} contains Python objects; "
                "refusing to load"
            )
        data_offset = handle.tell()
    if int(np.prod(shape)) == 0:
        # mmap cannot map zero bytes; an empty array has nothing to share.
        return np.empty(shape, dtype=dtype)
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=data_offset,
        shape=shape,
        order="F" if fortran_order else "C",
    )


def _mmap_archive_arrays(path: Path) -> Dict[str, np.ndarray]:
    """Open every array of an ``.npz`` archive, memory-mapping stored members.

    Stored (uncompressed) members — the version-2 default — come back as
    read-only :class:`numpy.memmap` views into the archive file; compressed
    members (legacy version-1 archives, or v2 saved with ``compress=True``)
    are decompressed eagerly, so the call succeeds on any valid archive.
    """
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        for info in archive.infolist():
            if not info.filename.endswith(".npy"):
                continue
            key = info.filename[: -len(".npy")]
            if info.compress_type == zipfile.ZIP_STORED:
                arrays[key] = _mmap_member(path, info)
            else:
                with archive.open(info) as member:
                    arrays[key] = np.lib.format.read_array(member, allow_pickle=False)
    return arrays


def read_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate the JSON manifest of a saved index archive."""
    path = normalize_archive_path(path)
    with np.load(path, allow_pickle=False) as archive:
        return _extract_manifest(archive, path)


# ---------------------------------------------------------------------------
# Sharded archives (directory of per-shard .npz files + a JSON manifest)
# ---------------------------------------------------------------------------
def is_sharded_archive(path: Union[str, Path]) -> bool:
    """Whether ``path`` is a sharded-engine directory (has a shard manifest)."""
    path = Path(path)
    return path.is_dir() and (path / SHARDED_MANIFEST_NAME).is_file()


def save_sharded_payload(
    shard_engines: List[Any],
    spec: Any,
    plan: Any,
    path: Union[str, Path],
    *,
    version: int = FORMAT_VERSION,
) -> Path:
    """Write a sharded engine to a directory of shard archives + manifest.

    Each shard is saved through :func:`save_index_payload` (the archives
    are ordinary single-engine archives — a shard can be loaded standalone
    for debugging); the manifest records the partition
    (:class:`~repro.api.planner.ShardSpec`) and the overall plan so
    :func:`load_sharded_payload` restores an engine with globally correct
    positions.
    """
    path = Path(path)
    if path.suffix == ".npz":
        raise ValidationError(
            f"a sharded engine saves to a directory, not an .npz file: {path}"
        )
    path.mkdir(parents=True, exist_ok=True)
    # Re-saving over an old archive with fewer shards must not leave stale
    # shard files behind: the manifest would ignore them, but the
    # standalone-shard debugging flow (load_index on one .npz) would
    # silently read data from a different index.
    for stale in path.glob("shard-*.npz"):
        stale.unlink()
    shard_files: List[str] = []
    for ordinal, engine in enumerate(shard_engines):
        name = f"shard-{ordinal:04d}.npz"
        save_index_payload(engine.index, engine.plan, path / name, version=version)
        shard_files.append(name)
    manifest = {
        "format": SHARDED_FORMAT_NAME,
        "version": SHARDED_FORMAT_VERSION,
        "archive_version": version,
        "kind": plan.kind,
        "spec": {
            "mode": spec.mode,
            "shard_count": spec.shard_count,
            "offsets": list(spec.offsets),
            "owned_ends": list(spec.owned_ends),
            "overlap": spec.overlap,
            "max_pattern_len": spec.max_pattern_len,
        },
        "plan": {
            "kind": plan.kind,
            "tau_min": plan.tau_min,
            "reason": plan.reason,
            "profile": dict(plan.profile),
        },
        "shards": shard_files,
    }
    (path / SHARDED_MANIFEST_NAME).write_text(
        json.dumps(manifest, sort_keys=True, indent=2), encoding="utf-8"
    )
    return path


def read_sharded_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate the JSON manifest of a sharded-engine directory."""
    path = Path(path)
    manifest_path = path / SHARDED_MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValidationError(f"{path} is not a sharded index archive (no manifest)")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format") != SHARDED_FORMAT_NAME:
        raise ValidationError(
            f"{path} has format {manifest.get('format')!r}, "
            f"expected {SHARDED_FORMAT_NAME!r}"
        )
    if int(manifest.get("version", -1)) > SHARDED_FORMAT_VERSION:
        raise ValidationError(
            f"{path} was written by a newer sharded format version "
            f"({manifest.get('version')} > {SHARDED_FORMAT_VERSION}); "
            "upgrade the package"
        )
    return manifest


@dataclass
class ShardedArchive:
    """Named result of :func:`load_sharded_payload`.

    PR 4 grew the old 2-tuple return into a 4-tuple, silently breaking
    every unpacking call site; this type makes the next format change
    additive instead.  Tuple unpacking keeps working (iteration yields the
    four fields in the historical order), but prefer the named fields.

    Attributes
    ----------
    payloads:
        ``(index, plan)`` per shard, in shard order.
    spec:
        The :class:`~repro.api.planner.ShardSpec` describing the partition.
    plan:
        The ensemble-level :class:`~repro.api.planner.IndexPlan`.
    shard_paths:
        Each shard's archive file in shard order — the engine hands them
        to ``query_executor="process"`` workers so each worker re-opens
        its own shard instead of receiving a pickled index.
    """

    payloads: List[Tuple[Any, Any]]
    spec: Any
    plan: Any
    shard_paths: List[Path]

    def __iter__(self) -> Iterator[Any]:
        return iter((self.payloads, self.spec, self.plan, self.shard_paths))


def load_sharded_payload(
    path: Union[str, Path], *, mmap: bool = False
) -> ShardedArchive:
    """Restore a sharded archive as a :class:`ShardedArchive`.

    The result unpacks as the historical
    ``(payloads, spec, plan, shard_paths)`` 4-tuple and exposes the same
    data as named fields.  ``mmap=True`` opens every shard archive
    memory-mapped (see :func:`load_index_payload`) — the mode the process
    workers use so every process's view of a shard shares the same
    physical pages.
    """
    from .planner import IndexPlan, ShardSpec

    path = Path(path)
    manifest = read_sharded_manifest(path)
    shard_paths = [path / name for name in manifest["shards"]]
    payloads = [
        load_index_payload(shard_path, mmap=mmap) for shard_path in shard_paths
    ]
    saved_spec = manifest["spec"]
    spec = ShardSpec(
        mode=saved_spec["mode"],
        shard_count=int(saved_spec["shard_count"]),
        offsets=tuple(int(v) for v in saved_spec["offsets"]),
        owned_ends=tuple(int(v) for v in saved_spec["owned_ends"]),
        overlap=int(saved_spec["overlap"]),
        max_pattern_len=(
            None
            if saved_spec["max_pattern_len"] is None
            else int(saved_spec["max_pattern_len"])
        ),
    )
    saved_plan = manifest.get("plan") or {}
    plan = IndexPlan(
        kind=manifest["kind"],
        tau_min=float(saved_plan.get("tau_min", 0.0)),
        reason=saved_plan.get("reason", "") + f" [loaded from {path.name}/]",
        options={},
        profile=dict(saved_plan.get("profile", {})),
    )
    return ShardedArchive(
        payloads=payloads, spec=spec, plan=plan, shard_paths=shard_paths
    )


def load_index_payload(
    path: Union[str, Path], *, mmap: bool = False, verify: Optional[bool] = None
) -> Tuple[Any, Any]:
    """Restore a saved index; returns ``(index, plan)``.

    With ``mmap=True`` the heavy arrays are opened as read-only memory
    maps into the archive file instead of copied onto the heap: cold start
    does no array materialization at all (version-2 archives additionally
    skip the RMQ rebuild via their serialized payloads), and concurrent
    worker processes mapping the same archive share one physical copy of
    the data through the OS page cache.  Compressed members degrade to an
    eager load, so the flag is safe on any valid archive.

    ``verify`` controls per-array crc32 checking against the checksums a
    format-3 manifest records (see :func:`repro.payload.array_checksum`);
    a corrupt member raises :class:`~repro.exceptions.ValidationError`.
    The default verifies eager loads and skips memory-mapped ones —
    checksumming would fault in every page and defeat the zero-copy cold
    start — but ``verify=True`` forces the check even under ``mmap``.

    The plan is rebuilt from the manifest (kind, reason, profile) so a
    loaded engine still explains itself; the reason notes the archive it
    came from.
    """
    from .planner import IndexPlan

    # Fault-injection site: fires for every archive open — in the parent
    # and, under the fork start method, inside shard worker processes that
    # inherited an installed plan (see repro.faults).
    fire(SITE_ARCHIVE_LOAD)
    path = normalize_archive_path(path)
    if mmap:
        try:
            arrays = _mmap_archive_arrays(path)
        except zipfile.BadZipFile as error:
            raise ValidationError(f"{path} is not a repro index archive: {error}")
        manifest = _extract_manifest(arrays, path)
        arrays.pop(MANIFEST_KEY, None)
    else:
        # One pass over the archive: manifest and arrays together.
        with np.load(path, allow_pickle=False) as archive:
            manifest = _extract_manifest(archive, path)
            arrays = {key: archive[key] for key in archive.files if key != MANIFEST_KEY}
    kind = manifest["kind"]
    if int(manifest.get("version", 0)) >= 3:
        # Format 3: the archive *is* the payload schema — reassemble the
        # payload from the manifest's schema tree and the (possibly
        # memory-mapped) arrays, then let the index rebuild itself.  No
        # per-kind special cases.
        if verify or (verify is None and not mmap):
            verify_manifest_checksums(manifest["payload"], arrays)
        payload = IndexPayload.from_manifest(manifest["payload"], arrays)
        index = index_from_payload(payload)
    else:
        if kind not in _LOADERS:
            raise ValidationError(f"{path} holds unknown index kind {kind!r}")
        index = _LOADERS[kind](manifest["config"], arrays)

    saved_plan = manifest.get("plan") or {}
    source_note = f" [loaded from {path.name}, mmap]" if mmap else f" [loaded from {path.name}]"
    plan = IndexPlan(
        kind=kind,
        tau_min=float(saved_plan.get("tau_min", getattr(index, "tau_min", 0.0))),
        reason=saved_plan.get("reason", "") + source_note,
        options={},
        profile=dict(saved_plan.get("profile", {})),
    )
    return index, plan
