"""Horizontal scale-out: :class:`ShardedEngine` over the :mod:`repro.api` façade.

One index over one big input eventually hits a wall: construction is
superlinear in practice, a single suffix array monopolizes one core, and a
single archive must be loaded whole.  :func:`build_sharded_index` splits the
input first — a collection by document, a single uncertain string into
chunks overlapping by ``max_pattern_len - 1`` positions — builds one
ordinary :class:`~repro.api.engine.Engine` per shard through the existing
planner, and merges per-shard answers back into globally correct results:

* **Document sharding** is exact and unrestricted: relevance is a
  per-document quantity, shard-local document identifiers re-base onto
  contiguous global ranges, and the merged listing order (ascending
  document, or descending relevance for ``top_k``) matches the unsharded
  engine's.
* **Chunk sharding** relies on the overlap invariant: any window of at most
  ``max_pattern_len`` characters starting at a position a chunk *owns* lies
  wholly inside that chunk, so every occurrence is found by exactly the
  shard owning its starting position — occurrences reported from a chunk's
  trailing overlap are dropped at merge time (the next shard owns them).
  Patterns longer than ``max_pattern_len`` could straddle a boundary and
  are rejected with :class:`~repro.exceptions.PatternTooLongError`.
  Occurrence probabilities depend only on window content, never on where
  the window sits.

In both modes the reported match set is the unsharded engine's; the
probability / relevance *floats* agree up to floating-point associativity
(the indexes derive values from log-prefix sums whose accumulation origin
shifts with the shard boundary, so the last few ulps can differ — the same
tolerance the index-vs-oracle property tests apply).

Plain threshold answers are merged with a lazy heap-merge on position /
document; ``top_k`` answers fetch ``k + overlap`` candidates per shard
(at most ``overlap`` of them can be dropped as duplicates, so ``k`` owned
candidates always survive) and heap-merge the per-shard heaps on
``(-value, position)``, reproducing the unsharded tie-break.

Per-shard evaluation fans out on a lazily created thread pool; per-shard
*construction* can fan out on a process pool (``workers=N`` — suffix-array
and RMQ building is GIL-bound Python + numpy, so real parallelism needs
processes), answering byte-identically to a serial build.  The merged
evaluation sits behind the same :class:`~repro.api.cache.ResultCache` an
unsharded engine uses (the shard engines run with their caches disabled so
counters are not double-counted), and :meth:`ShardedEngine.save` /
:func:`repro.api.engine.load_index` round-trip the whole ensemble through a
directory of ordinary ``.npz`` shard archives plus a JSON shard manifest.
"""

from __future__ import annotations

import contextlib
import heapq
import os
import signal
import threading
import time
import weakref
from dataclasses import replace
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from itertools import islice
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.base import (
    ListingMatch,
    Occurrence,
    matches_from_arrays,
    translate_match,
)
from ..exceptions import (
    DeadlineExceededError,
    PatternTooLongError,
    QueryError,
    ValidationError,
    WorkerError,
)
from ..faults import SITE_WORKER_DISPATCH, fire
from ..obs.metrics import MetricSample, MetricsRegistry
from .cache import DEFAULT_CACHE_SIZE, ResultCache
from .engine import Engine, QueryEngine, build_index
from .persistence import (
    FORMAT_VERSION,
    index_from_payload,
    index_to_payload,
    load_sharded_payload,
    save_sharded_payload,
)
from .shm import export_for_index
from .workers import close_sockets_worker, initialize_worker, query_worker
from .planner import (
    DEFAULT_MAX_PATTERN_LEN,
    IndexInput,
    IndexPlan,
    ShardSpec,
    normalize_input,
    plan_index,
    record_build_observation,
    shard_input,
)
from .requests import Match, PartialAnswer, SearchRequest

#: Errors that blame the request, not the infrastructure: never retried,
#: never degraded away — they propagate verbatim even in ``partial`` mode.
_REQUEST_ERRORS = (ValidationError, QueryError)


def _reporting_key(match: Match) -> int:
    """Merge key for plain threshold answers (position / document order)."""
    if isinstance(match, Occurrence):
        return match.position
    return match.document


def _ranking_key(match: Match) -> Tuple[float, int]:
    """Merge key for ``top_k`` answers (descending value, then position)."""
    if isinstance(match, Occurrence):
        return (-match.probability, match.position)
    return (-match.relevance, match.document)


def _pool_killer(pool: ProcessPoolExecutor) -> Callable[[], None]:
    """Crash hook for the ``worker-dispatch`` fault site (process mode).

    SIGKILLs the pool's live worker processes, so an injected ``"crash"``
    manifests exactly like a real worker death: the pool breaks with
    :class:`BrokenProcessPool` and the recovery path has to tear it down
    and rebuild.  Workers spawn lazily on first submit, so a crash fired
    before the pool ever ran a query finds nothing to kill and is a no-op
    (chaos tests warm the pool up first).
    """

    def kill() -> None:
        processes = getattr(pool, "_processes", None) or {}
        for pid in list(processes):
            with contextlib.suppress(OSError):
                os.kill(pid, signal.SIGKILL)

    return kill


class _FanOut:
    """One completed shard fan-out: per-shard answers plus failure metadata.

    ``answers`` holds one globally-translated match list per shard (empty
    for a failed shard); ``failed`` the sorted ordinals of shards whose
    dispatch or evaluation failed with an infrastructure error on the
    final attempt (always empty unless the engine runs ``partial=True``).
    """

    __slots__ = ("answers", "failed")

    def __init__(
        self, answers: List[List[Match]], failed: Tuple[int, ...] = ()
    ) -> None:
        self.answers = answers
        self.failed = failed


def _deadline_from(request: SearchRequest) -> Optional[float]:
    """Monotonic deadline for a budgeted request (``None``: unbounded)."""
    if request.timeout_ms is None:
        return None
    return time.monotonic() + request.timeout_ms / 1000.0


def _remaining_s(deadline: Optional[float]) -> Optional[float]:
    """Seconds left until ``deadline`` (clamped at 0); ``None``: unbounded."""
    if deadline is None:
        return None
    return max(0.0, deadline - time.monotonic())


def _shutdown_owned_executors(owned: List[Any]) -> None:
    """GC finalizer for a :class:`ShardedEngine`'s fan-out executors.

    Module-level and holding only the shared ``owned`` list (never the
    engine), so :func:`weakref.finalize` can run it once the engine is
    unreachable: an engine dropped without :meth:`ShardedEngine.close`
    must not leak its persistent worker processes until interpreter exit.
    ``wait=False`` keeps garbage collection non-blocking; the workers are
    idle by construction (no queries can be in flight on an unreachable
    engine), so they exit as soon as the shutdown signal drains.
    """
    while owned:
        owned.pop().shutdown(wait=False)


def _release_shared_exports(exports: List[Any]) -> None:
    """Release a :class:`ShardedEngine`'s shared-memory export references.

    Like :func:`_shutdown_owned_executors`, module-level over a shared
    list so the GC finalizer can run it: an engine dropped without
    :meth:`ShardedEngine.close` must not leave ``/dev/shm`` blocks behind.
    Unlinking while worker processes still map a block is safe — POSIX
    keeps the memory until the last mapping closes.
    """
    while exports:
        exports.pop().release()


def _finalize_engine_resources(owned: List[Any], exports: List[Any]) -> None:
    """Combined GC finalizer: shut pools down, then drop shm references."""
    _shutdown_owned_executors(owned)
    _release_shared_exports(exports)


class ShardedEngine(QueryEngine):
    """A fleet of per-shard :class:`Engine` instances behind one façade.

    Construct through :func:`build_sharded_index` (which partitions the
    input and plans the shards) or :meth:`load` (which restores a saved
    ensemble); the constructor accepts already-built shard engines plus the
    :class:`~repro.api.planner.ShardSpec` describing the partition.

    The query surface is :class:`Engine`'s, inherited from the shared
    :class:`~repro.api.engine.QueryEngine` base — ``search`` /
    ``search_many`` / ``query`` / ``top_k`` / ``count`` / ``exists`` with
    identical semantics, caching policy and lazy :class:`SearchResult`
    values — so callers can swap one for the other without touching query
    code.  Only the evaluation differs: it fans out across shards and
    merges (batch dedupe, refinement and the result cache all operate at
    the ensemble level, with per-shard caches disabled).

    ``max_workers`` sizes the fan-out independently of the shard count
    (it must be at least 1).  The default (``None``) is one thread — or,
    with ``query_executor="process"``, one worker process — per shard;
    a smaller value shares workers across shards (process worker ``w``
    owns every shard ``s`` with ``s % max_workers == w``), trading a
    little query parallelism for a bounded process/thread footprint.
    Values larger than the shard count are clamped to it.

    Resilience (see :meth:`_shard_answers`): a request's ``timeout_ms``
    bounds every wait on a shard future
    (:class:`~repro.exceptions.DeadlineExceededError` on exhaustion); a
    killed worker pool is rebuilt and the fan-out retried
    (``worker_retries`` times, exponential ``worker_retry_backoff_s``
    backoff) before :class:`~repro.exceptions.WorkerError` surfaces; and
    ``partial=True`` opts into degraded
    :class:`~repro.api.requests.PartialAnswer` results — matches from the
    healthy shards plus the failed ordinals — instead of an error when
    shards stay down after recovery."""

    def __init__(
        self,
        engines: Sequence[Engine],
        spec: ShardSpec,
        plan: IndexPlan,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_ttl_seconds: Optional[float] = None,
        max_workers: Optional[int] = None,
        query_executor: str = "thread",
        partial: bool = False,
        worker_retries: int = 1,
        worker_retry_backoff_s: float = 0.05,
    ) -> None:
        if len(engines) != spec.shard_count:
            raise ValidationError(
                f"spec describes {spec.shard_count} shards but "
                f"{len(engines)} engines were given"
            )
        if spec.mode not in ("documents", "chunks"):
            raise ValidationError(f"unknown shard mode {spec.mode!r}")
        if query_executor not in ("thread", "process"):
            raise ValidationError(
                f"unknown query_executor {query_executor!r}; "
                "expected 'thread' or 'process'"
            )
        if max_workers is not None and max_workers < 1:
            raise ValidationError(
                f"max_workers must be at least 1, got {max_workers}"
            )
        if worker_retries < 0:
            raise ValidationError(
                f"worker_retries must be >= 0, got {worker_retries}"
            )
        if worker_retry_backoff_s < 0:
            raise ValidationError(
                f"worker_retry_backoff_s must be >= 0, got {worker_retry_backoff_s}"
            )
        self._engines = list(engines)
        self._partial = bool(partial)
        self._worker_retries = worker_retries
        self._worker_retry_backoff_s = worker_retry_backoff_s
        self._spec = spec
        self._plan = plan
        self._cache = ResultCache(cache_size, ttl_seconds=cache_ttl_seconds)
        self._max_workers = max_workers
        self._query_executor = query_executor
        self._executor: Optional[ThreadPoolExecutor] = None  # guarded-by: _executor_lock
        # Re-entrant: the metrics registry shares this lock, so counter
        # increments made while the executor lock is held stay re-entrant
        # and resilience_stats() snapshots are tear-free.
        self._executor_lock = threading.RLock()
        self._metrics = MetricsRegistry(lock=self._executor_lock)
        self._recoveries = self._metrics.counter("sharding_pool_recoveries_total")
        self._partial_answers = self._metrics.counter("sharding_partial_answers_total")
        # Per-shard persistent worker processes (query_executor="process"),
        # created lazily on the first query.  Shards restored from disk
        # record their archive paths (+ the mmap flag) here so workers
        # re-open — and, with mmap, page-cache-share — the archives instead
        # of receiving pickled indexes.
        self._process_pools: Optional[List[ProcessPoolExecutor]] = None  # guarded-by: _executor_lock
        self._shard_sources: Optional[List[str]] = None
        self._shard_mmap = False
        # Shared-memory exports backing in-RAM shards in process mode:
        # one per shard, acquired lazily at the first pool build and kept
        # across crash rebuilds (the blocks survive a dead pool; only the
        # worker processes are recreated).
        self._shm_exports: Dict[int, Any] = {}  # guarded-by: _executor_lock
        # Every live executor also sits in this list — and every acquired
        # export in the companion list — which the GC finalizer shares: an
        # engine dropped without close() still shuts its worker processes
        # down and releases its shm blocks instead of leaking them.
        self._owned_executors: List[Any] = []  # guarded-by: _executor_lock
        self._owned_exports: List[Any] = []  # guarded-by: _executor_lock
        self._finalizer = weakref.finalize(
            self,
            _finalize_engine_resources,
            self._owned_executors,
            self._owned_exports,
        )

    # -- introspection -----------------------------------------------------------------
    @property
    def shards(self) -> List[Engine]:
        """The per-shard engines, in shard order."""
        return list(self._engines)

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return self._spec.shard_count

    @property
    def spec(self) -> ShardSpec:
        """The partition this engine was built over."""
        return self._spec

    @property
    def plan(self) -> IndexPlan:
        """The plan of the full (unsharded) input that fixed the index kind."""
        return self._plan

    @property
    def kind(self) -> str:
        """Index kind shared by every shard."""
        return self._plan.kind

    @property
    def tau_min(self) -> float:
        """Smallest query threshold the ensemble supports."""
        return max(engine.tau_min for engine in self._engines)

    @property
    def is_listing(self) -> bool:
        """Whether results carry ListingMatch (documents) instead of Occurrence."""
        return self.kind == "listing"

    @property
    def max_pattern_len(self) -> Optional[int]:
        """Longest supported pattern (``None`` means unlimited)."""
        return self._spec.max_pattern_len

    @property
    def cache(self) -> ResultCache:
        """The ensemble-level LRU result cache."""
        return self._cache

    @property
    def query_executor(self) -> str:
        """How per-shard evaluation fans out: ``"thread"`` or ``"process"``."""
        return self._query_executor

    @property
    def partial(self) -> bool:
        """Whether shard failures degrade to partial answers instead of raising."""
        return self._partial

    @property
    def worker_retries(self) -> int:
        """Full re-dispatch attempts after a failed fan-out (0 disables retry)."""
        return self._worker_retries

    def describe(self) -> dict:
        """Summary: kind, sharding layout, cache counters, space, shards."""
        return {
            "kind": self.kind,
            "reason": self._plan.reason,
            "tau_min": self.tau_min,
            "plan": {
                "estimate_error": self._plan.profile.get("estimate_error"),
                "calibration": self._plan.profile.get("calibration"),
            },
            "sharding": {
                "mode": self._spec.mode,
                "shard_count": self._spec.shard_count,
                "overlap": self._spec.overlap,
                "max_pattern_len": self._spec.max_pattern_len,
                "query_executor": self._query_executor,
                "max_workers": self._fanout_workers(),
            },
            "resilience": self.resilience_stats(),
            "cache": self._cache.stats(),
            "space_report": self.space_report(),
            "shards": [
                {"kind": engine.kind, "nbytes": engine.nbytes()}
                for engine in self._engines
            ],
        }

    def resilience_stats(self) -> dict:
        """Recovery configuration and counters (surfaced by :meth:`describe`).

        Snapshotted under the executor lock (shared with the metrics
        registry), so the two counters are mutually consistent.
        """
        with self._executor_lock:
            recoveries = self._recoveries.value
            partial_answers = self._partial_answers.value
        return {
            "partial": self._partial,
            "worker_retries": self._worker_retries,
            "worker_retry_backoff_s": self._worker_retry_backoff_s,
            "pool_recoveries": recoveries,
            "partial_answers": partial_answers,
        }

    def metrics_samples(self) -> List[MetricSample]:
        """Every metric series this engine owns (resilience + cache)."""
        return self._metrics.collect() + self._cache.metrics.collect()

    def space_report(self) -> dict:
        """Total footprint plus the per-shard totals."""
        totals = [engine.nbytes() for engine in self._engines]
        return {"total": sum(totals), "shard_totals": totals}

    def nbytes(self) -> int:
        """Total approximate memory footprint across all shards."""
        return sum(engine.nbytes() for engine in self._engines)

    def __repr__(self) -> str:
        return (
            f"ShardedEngine(kind={self.kind!r}, shards={self.shard_count}, "
            f"mode={self._spec.mode!r}, nbytes={self.nbytes()})"
        )

    # -- fan-out (threads or worker processes) -----------------------------------------
    def _fanout_workers(self) -> int:
        """Width of the query fan-out (threads or worker processes).

        Defaults to one worker per shard; ``max_workers`` caps it and is
        clamped to the shard count.  In process mode a worker then owns
        every shard ``s`` with ``s % workers == worker``, so memory-bound
        deployments can serve many shards from a few processes —
        especially with mmap-loaded archives, where the extra shards cost
        page-cache references, not copies.
        """
        return max(1, min(self._max_workers or self.shard_count, self.shard_count))

    def _thread_pool(self) -> ThreadPoolExecutor:
        """The lazily created shard fan-out thread pool."""
        with self._executor_lock:
            executor = self._executor
            if executor is None:
                executor = ThreadPoolExecutor(
                    max_workers=self._fanout_workers(),
                    thread_name_prefix="repro-shard",
                )
                self._executor = executor
                self._owned_executors.append(executor)
            return executor

    def _map_shards(self, function: Callable[[int], Any]) -> List[Any]:
        """Run ``function(shard)`` for every shard, in parallel when > 1."""
        if len(self._engines) == 1:
            return [function(0)]
        return list(self._thread_pool().map(function, range(len(self._engines))))

    def _worker_spec(self, shard: int) -> Any:
        """Initialization payload for one shard (archive path or shm block).

        Disk-backed shards ship their archive path; in-RAM shards ship a
        shared-memory spec (block name + array layout, O(array count)
        pickled bytes) backed by an export the engine holds a reference
        to.  Callers hold ``_executor_lock`` (the export table is shared
        engine state).
        """
        if self._shard_sources is not None:
            return ("archive", self._shard_sources[shard], self._shard_mmap)
        with self._executor_lock:  # re-entrant under _ensure_process_pools
            export = self._shm_exports.get(shard)
            if export is None or export.closed:
                export = export_for_index(self._engines[shard].index)
                self._shm_exports[shard] = export
                self._owned_exports.append(export)
            return export.spec()

    def _ensure_process_pools(self) -> List[ProcessPoolExecutor]:
        """Lazily start the persistent worker processes (one pool each).

        Worker ``w`` is initialized exactly once with *every* shard it
        owns (archive path + mmap flag when the engine was loaded from
        disk, the shard's shared-memory spec otherwise — block name plus
        array layout, never the arrays; see :mod:`repro.api.shm`) and
        keeps them for the engine's lifetime — queries only ship
        ``(shard, pattern, tau, top_k)`` tuples out and ndarray payloads
        back.  Single-worker pools keep the shard → process assignment
        deterministic, so each shard is materialized in exactly one
        process.  The shm exports outlive any one pool: a crashed pool's
        rebuild re-attaches to the same live blocks.
        """
        with self._executor_lock:
            pools = self._process_pools
            if pools is None:
                workers = self._fanout_workers()
                pools = []
                try:
                    for worker in range(workers):
                        specs = {
                            shard: self._worker_spec(shard)
                            for shard in range(self.shard_count)
                            if shard % workers == worker
                        }
                        pools.append(
                            ProcessPoolExecutor(
                                max_workers=1,
                                initializer=initialize_worker,
                                initargs=(specs,),
                            )
                        )
                except BaseException:
                    # Construction failed midway: the pools already started
                    # would otherwise leak their worker processes (nothing
                    # references them once this raises).
                    for pool in pools:
                        pool.shutdown(wait=True)
                    raise
                self._process_pools = pools
                self._owned_executors.extend(pools)
            return pools

    def _evaluate_shard(
        self, shard: int, request: SearchRequest, attempt: int = 0
    ) -> List[Match]:
        """Evaluate one shard in-process, translated to global coordinates.

        A traced request gets one ``shard`` span per evaluation, timed
        here; the shard engine itself runs untraced (its kernel timing is
        the span's duration — a per-shard ``kernel`` child would repeat
        the same number under a dangling parent).
        """
        trace = request.trace
        if trace is None:
            return self._translate(shard, self._engines[shard]._evaluate(request))
        bare = replace(request, trace=None)
        start = time.perf_counter()
        matches = self._translate(shard, self._engines[shard]._evaluate(bare))
        trace.add(
            "shard",
            (time.perf_counter() - start) * 1000.0,
            parent="fan_out",
            shard=shard,
            attempt=attempt,
            executor="thread",
            matches=len(matches),
        )
        return matches

    def _discard_pools(self, dead: List[ProcessPoolExecutor]) -> None:
        """Tear down a broken worker-pool set so the next attempt rebuilds it.

        Identity-checked under the executor lock: with concurrent queries
        racing the same :class:`BrokenProcessPool`, only the first caller
        clears the shared reference (and counts the recovery); every caller
        shuts the dead pools down, which is idempotent.  The rebuild itself
        happens in :meth:`_ensure_process_pools` on the retry, from the
        retained archive paths / shard payloads.
        """
        with self._executor_lock:
            if self._process_pools is dead:
                self._process_pools = None
                self._owned_executors[:] = [
                    executor
                    for executor in self._owned_executors
                    if executor not in dead
                ]
                self._recoveries.inc()
        for broken in dead:
            broken.shutdown(wait=False)

    def _collect(
        self,
        request: SearchRequest,
        deadline: Optional[float],
        shard_futures: "List[Optional[Future[Any]]]",
        translate: Callable[[int, Any], List[Match]],
        answers: List[List[Match]],
        failed: List[int],
    ) -> Tuple[Optional[Exception], bool]:
        """Drain one attempt's shard futures into ``answers`` / ``failed``.

        Returns ``(first_error, pool_broken)``.  A deadline expiry raises
        :class:`DeadlineExceededError` immediately; request-blaming errors
        (:data:`_REQUEST_ERRORS`) propagate verbatim — both are properties
        of the request, not of the infrastructure, so no retry or
        degradation applies.
        """
        first: Optional[Exception] = None
        pool_broken = False
        for shard, future in enumerate(shard_futures):
            if future is None:
                answers.append([])
                continue
            try:
                outcome = future.result(timeout=_remaining_s(deadline))
            except FutureTimeoutError:
                raise DeadlineExceededError(
                    f"request exceeded its timeout_ms={request.timeout_ms} "
                    f"budget waiting on shard {shard}"
                ) from None
            except _REQUEST_ERRORS:
                raise
            except Exception as error:
                if isinstance(error, BrokenProcessPool):
                    pool_broken = True
                answers.append([])
                failed.append(shard)
                if first is None:
                    first = error
                continue
            answers.append(translate(shard, outcome))
        return first, pool_broken

    def _attempt_fan_out(
        self,
        request: SearchRequest,
        deadline: Optional[float],
        pools: Optional[List[ProcessPoolExecutor]],
        attempt: int = 0,
    ) -> Tuple[List[List[Match]], List[int], Optional[Exception], bool]:
        """One dispatch attempt over every shard.

        Returns ``(answers, failed, error, pool_broken)``: per-shard
        answers in global coordinates (``[]`` for failed shards), the
        failed shard ordinals, the first infrastructure error seen, and
        whether a worker pool died (so the caller tears it down before
        retrying).  The ``worker-dispatch`` fault site fires once per
        shard, in shard order, from this (single) dispatching thread, so a
        plan's trigger ordinals line up with shard ordinals.
        """
        answers: List[List[Match]] = []
        failed: List[int] = []
        first: Optional[Exception] = None
        pool_broken = False
        shard_futures: "List[Optional[Future[Any]]]" = []
        trace = request.trace
        if pools is not None:
            workers = len(pools)
            # Tracing crosses the process boundary as plain payload data —
            # the trace_id string inside the argument tuple — never the
            # live Trace object; the worker's eval_ms comes back inside
            # the answer payload and is attached to the shard span here.
            trace_id = trace.trace_id if trace is not None else None

            def translate_payload(shard: int, payload: Any) -> List[Match]:
                kind, ids, values, eval_ms = payload
                matches = self._translate(shard, matches_from_arrays(kind, ids, values))
                if trace is not None:
                    trace.add(
                        "shard",
                        float(eval_ms),
                        parent="fan_out",
                        shard=shard,
                        attempt=attempt,
                        executor="process",
                        matches=len(matches),
                    )
                return matches

            for shard in range(self.shard_count):
                owner = pools[shard % workers]
                try:
                    fire(SITE_WORKER_DISPATCH, crash=_pool_killer(owner))
                    shard_futures.append(
                        owner.submit(
                            query_worker,
                            (shard, request.pattern, request.tau, request.top_k,
                             trace_id),
                        )
                    )
                except _REQUEST_ERRORS:
                    raise
                except Exception as error:
                    if isinstance(error, BrokenProcessPool):
                        pool_broken = True
                    shard_futures.append(None)
                    failed.append(shard)
                    if first is None:
                        first = error
            collected, broke = self._collect(
                request,
                deadline,
                shard_futures,
                translate_payload,
                answers,
                failed,
            )
            return (
                answers,
                failed,
                first if first is not None else collected,
                pool_broken or broke,
            )
        if self.shard_count == 1:
            # A single shard evaluates inline (no pool to wait on): the
            # deadline is not enforceable here — a plain Engine evaluation
            # is not interruptible — so the serving tier's watchdog is the
            # backstop, exactly as for an unsharded engine.
            try:
                fire(SITE_WORKER_DISPATCH)
                answers.append(self._evaluate_shard(0, request, attempt))
            except _REQUEST_ERRORS:
                raise
            except Exception as error:
                answers.append([])
                failed.append(0)
                first = error
            return answers, failed, first, False
        executor = self._thread_pool()
        for shard in range(self.shard_count):
            try:
                # No crash hook in thread mode — a "crash" spec degrades to
                # its error form (there is no process to kill).
                fire(SITE_WORKER_DISPATCH)
                shard_futures.append(
                    executor.submit(self._evaluate_shard, shard, request, attempt)
                )
            except _REQUEST_ERRORS:
                raise
            except Exception as error:
                shard_futures.append(None)
                failed.append(shard)
                if first is None:
                    first = error
        collected, _ = self._collect(
            request,
            deadline,
            shard_futures,
            lambda shard, matches: matches,
            answers,
            failed,
        )
        return answers, failed, first if first is not None else collected, False

    def _shard_answers(self, request: SearchRequest) -> _FanOut:
        """Evaluate ``request`` on every shard; answers in global coordinates.

        Thread mode runs each shard engine on the shared thread pool;
        process mode ships the request to the persistent shard workers,
        which answer with array payloads the parent rewraps into matches
        at this merge boundary.  Around either mode sits the resilience
        envelope:

        * ``request.timeout_ms`` bounds every wait on a shard future;
          exhaustion raises :class:`~repro.exceptions.DeadlineExceededError`.
        * A dead worker pool (:class:`BrokenProcessPool` — a shard worker
          was killed mid-query) is torn down and rebuilt from the retained
          archive paths / shard payloads, and the whole fan-out re-runs
          (up to ``worker_retries`` times, with exponential backoff) so a
          recovered attempt answers byte-identically to an undisturbed
          one.
        * With ``partial=True``, shards that still fail after the retries
          degrade to a :class:`~repro.api.requests.PartialAnswer` naming
          exactly the failed ordinals; otherwise the recorded error (or a
          :class:`~repro.exceptions.WorkerError` for an unrecovered pool)
          propagates.
        """
        deadline = _deadline_from(request)
        trace = request.trace
        if trace is None:
            return self._run_fan_out(request, deadline)
        with trace.span(
            "fan_out",
            parent="evaluate",
            executor=self._query_executor,
            shards=self.shard_count,
        ) as meta:
            fan = self._run_fan_out(request, deadline)
            meta["failed_shards"] = list(fan.failed)
        return fan

    def _run_fan_out(
        self, request: SearchRequest, deadline: Optional[float]
    ) -> _FanOut:
        """The retry loop behind :meth:`_shard_answers`."""
        attempt = 0
        while True:
            pools = (
                self._ensure_process_pools()
                if self._query_executor == "process"
                else None
            )
            answers, failed, error, pool_broken = self._attempt_fan_out(
                request, deadline, pools, attempt
            )
            if not failed:
                return _FanOut(answers)
            if pool_broken and pools is not None:
                self._discard_pools(pools)
            if attempt < self._worker_retries:
                backoff = self._worker_retry_backoff_s * (2**attempt)
                remaining = _remaining_s(deadline)
                if remaining is not None and backoff >= remaining:
                    raise DeadlineExceededError(
                        f"request exceeded its timeout_ms={request.timeout_ms} "
                        f"budget while recovering from a shard failure"
                    ) from error
                if backoff:
                    time.sleep(backoff)
                attempt += 1
                continue
            if self._partial:
                self._partial_answers.inc()
                return _FanOut(answers, tuple(sorted(set(failed))))
            if error is None:  # unreachable: every failed shard records one
                raise WorkerError("shard fan-out failed without a recorded cause")
            if isinstance(error, BrokenProcessPool):
                raise WorkerError(
                    f"shard worker pool died and did not recover within "
                    f"{self._worker_retries} retry attempt(s)"
                ) from error
            raise error

    def close(self) -> None:
        """Shut down the fan-out executors (idempotent; queries recreate them).

        Process-mode engines hold persistent worker processes; a serving
        deployment swapping engines (see ``ReplicaSet.swap``) must call
        this on the drained engine or the workers outlive their index.
        Engines dropped without ``close()`` are covered by a GC finalizer,
        but an explicit close is deterministic and waits for the workers.
        """
        with self._executor_lock:
            executor, self._executor = self._executor, None
            pools, self._process_pools = self._process_pools, None
            self._owned_executors.clear()  # the finalizer has nothing left to do
            exports = list(self._owned_exports)
            self._owned_exports.clear()
            self._shm_exports.clear()
        if executor is not None:
            executor.shutdown(wait=True)
        if pools is not None:
            for pool in pools:
                pool.shutdown(wait=True)
        # After the workers are gone: drop the engine's shm references so
        # the last owner unlinks the blocks (replicas sharing an export
        # keep it alive through their own references).
        for export in exports:
            export.release()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- merged evaluation ---------------------------------------------------------------
    def _translate(self, shard: int, matches: List[Match]) -> List[Match]:
        """Re-base shard-local matches onto global coordinates, deduping overlap."""
        spec = self._spec
        offset = spec.offsets[shard]
        if spec.mode == "documents":
            return [
                translate_match(match, document_offset=offset) for match in matches
            ]
        owned_end = spec.owned_ends[shard]
        translated: List[Match] = []
        for match in matches:
            moved = translate_match(match, position_offset=offset)
            # Occurrences starting in the trailing overlap belong to (and
            # are re-found by) the next shard — drop them here.  Chunk
            # shards only ever report occurrences.
            if isinstance(moved, Occurrence) and moved.position < owned_end:
                translated.append(moved)
        return translated

    def _check_pattern(self, pattern: str) -> None:
        limit = self._spec.max_pattern_len
        if limit is not None and len(pattern) > limit:
            raise PatternTooLongError(
                f"pattern of length {len(pattern)} exceeds this sharded "
                f"engine's max_pattern_len={limit}; chunks overlap by "
                f"{self._spec.overlap} positions, so longer patterns could "
                "straddle a chunk boundary — rebuild with a larger "
                "max_pattern_len to search longer patterns"
            )

    def _finish(self, merged: List[Match], fan: _FanOut) -> List[Match]:
        """Wrap a merged answer in :class:`PartialAnswer` when shards failed."""
        if fan.failed:
            return PartialAnswer(merged, fan.failed)
        return merged

    def _evaluate(self, request: SearchRequest) -> List[Match]:
        """Fan the request out across shards and merge globally."""
        trace = request.trace
        if trace is None:
            self._check_pattern(request.pattern)
        else:
            with trace.span(
                "plan", parent="evaluate", kind=self.kind, shards=self.shard_count
            ):
                self._check_pattern(request.pattern)
        if request.top_k is not None:
            return self._evaluate_top_k(request)

        fan = self._shard_answers(request)
        # Each shard reports in position (document) order over disjoint
        # owned ranges; a lazy heap-merge restores the global order.
        if trace is None:
            merged = list(heapq.merge(*fan.answers, key=_reporting_key))
        else:
            with trace.span("merge", parent="evaluate") as meta:
                merged = list(heapq.merge(*fan.answers, key=_reporting_key))
                meta["matches"] = len(merged)
        return self._finish(merged, fan)

    def _evaluate_top_k(self, request: SearchRequest) -> List[Match]:
        # Fetch k + overlap per chunk shard: the ownership filter can drop
        # at most `overlap` matches (one occurrence per overlap position),
        # so at least k owned candidates survive — and any member of the
        # global top-k is necessarily in its own shard's top-(k + overlap).
        fetch = request.top_k + (
            self._spec.overlap if self._spec.mode == "chunks" else 0
        )
        # The deadline budget (and the trace) ride along on the per-shard
        # request.
        shard_request = SearchRequest(
            request.pattern,
            tau=request.tau,
            top_k=fetch,
            timeout_ms=request.timeout_ms,
            trace=request.trace,
        )
        fan = self._shard_answers(shard_request)
        # Per-shard lists arrive sorted by (-value, position); merging the
        # per-shard heaps and keeping the first k reproduces the unsharded
        # deterministic tie-break.
        trace = request.trace
        if trace is None:
            top = list(islice(heapq.merge(*fan.answers, key=_ranking_key),
                              request.top_k))
        else:
            with trace.span("merge", parent="evaluate") as meta:
                top = list(islice(heapq.merge(*fan.answers, key=_ranking_key),
                                  request.top_k))
                meta["matches"] = len(top)
        return self._finish(top, fan)

    def _refine_allowed(self) -> bool:
        # Merged listing answers equal the unsharded engine's, so the
        # refinement argument of :mod:`repro.api.batch` carries over
        # unchanged: exact on uncorrelated listing ensembles only.
        return self.is_listing and not any(
            engine.index.needs_verification for engine in self._engines
        )

    # -- persistence -------------------------------------------------------------------
    def save(
        self, path: Union[str, Path], *, version: int = FORMAT_VERSION
    ) -> Path:
        """Serialize the ensemble to a directory of shard archives + manifest."""
        return save_sharded_payload(
            self._engines, self._spec, self._plan, path, version=version
        )

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_ttl_seconds: Optional[float] = None,
        max_workers: Optional[int] = None,
        mmap: bool = False,
        query_executor: str = "thread",
        partial: bool = False,
        worker_retries: int = 1,
        worker_retry_backoff_s: float = 0.05,
    ) -> "ShardedEngine":
        """Restore an ensemble saved with :meth:`save`.

        ``mmap=True`` opens every shard archive memory-mapped; with
        ``query_executor="process"`` the per-shard worker processes map the
        same archives themselves, so however many workers serve the index,
        the heavy arrays exist once in physical memory.  Prefer the two
        flags *together*: in process mode the parent's shard copies only
        back introspection (``nbytes`` / ``describe``) and the thread
        fallback, so loading them eagerly onto the heap (``mmap=False``)
        holds the index roughly twice.
        """
        archive = load_sharded_payload(path, mmap=mmap)
        engines = [
            Engine(index, shard_plan, cache_size=0)
            for index, shard_plan in archive.payloads
        ]
        engine = cls(
            engines,
            archive.spec,
            archive.plan,
            cache_size=cache_size,
            cache_ttl_seconds=cache_ttl_seconds,
            max_workers=max_workers,
            query_executor=query_executor,
            partial=partial,
            worker_retries=worker_retries,
            worker_retry_backoff_s=worker_retry_backoff_s,
        )
        engine._shard_sources = [str(shard_path) for shard_path in archive.shard_paths]
        engine._shard_mmap = mmap
        return engine


def _build_shard_payload(
    arguments: Tuple[IndexInput, Dict[str, Any]]
) -> Tuple[Any, IndexPlan]:
    """Build one shard's index in a worker process.

    Module-level so :class:`ProcessPoolExecutor` can pickle it.  Returns
    ``(payload, plan)`` — the shard's
    :class:`~repro.payload.IndexPayload`, the same currency the archives
    and query workers use — instead of the engine or the live index: the
    engine's result cache holds a ``threading.Lock`` that cannot cross the
    process boundary, and the payload ships as flat ndarrays with no
    Python object graph.  The parent rebuilds the index with
    ``from_payload`` and wraps it in a cache-less :class:`Engine`, exactly
    as :meth:`ShardedEngine.load` does.
    """
    part, build_kwargs = arguments
    engine = build_index(part, cache_size=0, **build_kwargs)
    return index_to_payload(engine.index), engine.plan


def build_sharded_index(
    data: IndexInput,
    *,
    shards: int,
    tau_min: Optional[float] = None,
    kind: str = "auto",
    max_pattern_len: int = DEFAULT_MAX_PATTERN_LEN,
    cache_size: int = DEFAULT_CACHE_SIZE,
    cache_ttl_seconds: Optional[float] = None,
    max_workers: Optional[int] = None,
    workers: Optional[int] = None,
    query_executor: str = "thread",
    partial: bool = False,
    worker_retries: int = 1,
    worker_retry_backoff_s: float = 0.05,
    space_budget_bytes: Optional[int] = None,
    epsilon: Optional[float] = None,
    metric: str = "max",
    compact: bool = False,
    **options: Any,
) -> ShardedEngine:
    """Partition ``data``, build one engine per shard, wrap them as one.

    The index kind is planned **once**, on the full input (honouring the
    same ``kind`` / ``space_budget_bytes`` / ``epsilon`` knobs as
    :func:`~repro.api.engine.build_index`), then forced onto every shard —
    a chunk of a general string could otherwise plan to a different
    variant than its siblings and change answer semantics mid-merge.

    ``shards`` is clamped to the number of documents (collections) or
    positions (single strings).  ``max_pattern_len`` fixes the chunk
    overlap (``max_pattern_len - 1``) and the longest pattern a
    chunk-sharded engine accepts; document-sharded engines ignore it.

    ``workers`` parallelizes *construction*: with ``workers > 1`` the
    per-shard suffix array / RMQ builds fan out on a
    :class:`ProcessPoolExecutor` (suffix-array construction is pure-Python
    + numpy, so threads would serialize on the GIL); shard builds ship
    ``(payload, plan)`` pairs — flat :class:`~repro.payload.IndexPayload`
    arrays, not pickled index objects — back to the parent.  The
    partition, the plan and the per-shard build arguments are identical
    to the serial path, so the resulting ensemble answers queries
    byte-identically to a ``workers=1`` build.

    ``query_executor`` selects the *query* fan-out: ``"thread"`` (default)
    shares one thread pool, ``"process"`` starts persistent worker
    processes — each initialized once with the shards it owns (payloads
    in memory, archive paths from disk) and answering via ndarray
    payloads — buying real parallelism for the GIL-bound Python portions
    of the query path at the cost of per-request IPC.  Both modes answer
    byte-identically.  ``max_workers`` sizes the query fan-out in either
    mode and is independent of ``workers``; by default one thread /
    process per shard, and smaller values share workers across shards
    (see :class:`ShardedEngine`).

    ``compact=True`` applies the same dtype-minimized payload round-trip
    as :func:`~repro.api.engine.build_index` to every shard — narrow
    in-RAM arrays, byte-identical answers — and composes with both query
    executors (the shared-memory export ships whatever dtypes the shard
    arrays carry).

    ``partial``, ``worker_retries`` and ``worker_retry_backoff_s``
    configure the resilience envelope — crash recovery, deadlines and
    graceful degradation — described on :class:`ShardedEngine`.

    Examples
    --------
    >>> from repro import build_sharded_index
    >>> engine = build_sharded_index("banana" * 20, shards=3, max_pattern_len=6)
    >>> engine.shard_count
    3
    >>> engine.count("anan", tau=0.5)  # one occurrence inside each "banana"
    20
    """
    if workers is not None and workers < 1:
        raise ValidationError(f"workers must be at least 1, got {workers}")
    normalized = normalize_input(data)
    plan = plan_index(
        normalized,
        tau_min=tau_min,
        kind=kind,
        space_budget_bytes=space_budget_bytes,
        epsilon=epsilon,
        metric=metric,
        **options,
    )
    spec, parts = shard_input(normalized, shards, max_pattern_len=max_pattern_len)
    build_kwargs: Dict[str, Any] = dict(
        tau_min=tau_min,
        kind=plan.kind,
        epsilon=epsilon,
        metric=metric,
        compact=compact,
        **options,
    )
    if workers is not None and workers > 1 and len(parts) > 1:
        # close_sockets_worker: a build launched from a live serving
        # process must not trap its open connections in the forked builders.
        with ProcessPoolExecutor(
            max_workers=min(workers, len(parts)),
            initializer=close_sockets_worker,
        ) as pool:
            payloads = list(
                pool.map(_build_shard_payload, [(part, build_kwargs) for part in parts])
            )
        engines = [
            # Rebuild from the shipped payloads; the ensemble cache fronts
            # queries, so the per-shard engines stay cache-less.
            Engine(index_from_payload(payload), shard_plan, cache_size=0)
            for payload, shard_plan in payloads
        ]
    else:
        engines = [
            build_index(part, cache_size=0, **build_kwargs) for part in parts
        ]
    # Planner feedback on the ensemble plan: measured total vs the full-input
    # estimate (chunk overlap makes the sharded total slightly larger).
    record_build_observation(plan, sum(engine.nbytes() for engine in engines))
    return ShardedEngine(
        engines,
        spec,
        plan,
        cache_size=cache_size,
        cache_ttl_seconds=cache_ttl_seconds,
        max_workers=max_workers,
        query_executor=query_executor,
        partial=partial,
        worker_retries=worker_retries,
        worker_retry_backoff_s=worker_retry_backoff_s,
    )
