"""The asyncio coalescing front end: :class:`AsyncSearchService`.

``Engine.search_many`` amortizes work *within one caller's batch*: identical
requests share an evaluation, and same-pattern requests at different
thresholds share one traversal (listing engines).  A serving deployment
rarely receives batches — it receives a stream of single requests from many
concurrent clients.  :class:`AsyncSearchService` turns that stream back into
batches: submissions collect inside a **micro-batch window** (up to
``max_wait_ms`` milliseconds or ``max_batch`` requests, whichever closes
first), each window is deduplicated and funnelled through **one**
``search_many`` call, and the results fan back out to the per-caller
futures.  The batch amortizations therefore apply *across users*: a burst
of clients asking popular patterns costs one evaluation per distinct
request, and same-pattern threshold refinement spans the whole window.

The service is deliberately small and explicit:

* **Admission control** — at most ``max_pending`` requests may be queued
  *or in flight* (popped into a window whose evaluation has not resolved
  their futures yet) at once; beyond that, :meth:`submit` fails fast with
  :class:`~repro.exceptions.ServiceOverloadedError` instead of growing
  the queue without bound.  Counting in-flight work matters: requests
  leave the queue the moment a window closes around them but keep
  consuming service capacity until the batch evaluation resolves them, so
  a queue-only bound would admit up to ``max_pending + max_batch``
  requests during a burst.  Load-shedding at admission keeps the tail
  latency of accepted requests bounded by ``max_wait_ms`` plus one batch
  evaluation.
* **Engine offloading** — the (synchronous, GIL-releasing-at-best) engine
  work runs on an executor thread via ``loop.run_in_executor``, so the
  event loop keeps accepting submissions while a batch evaluates.  Any
  engine speaking the :class:`~repro.api.engine.QueryEngine` vocabulary
  works: a plain :class:`~repro.api.engine.Engine`, a
  :class:`~repro.api.sharding.ShardedEngine` with thread or process
  fan-out, over heap-loaded or memory-mapped arrays.
* **Observability** — every counter lives in a
  :class:`~repro.obs.metrics.MetricsRegistry` sharing one re-entrant
  lock, so :meth:`stats` (the legacy dict view) and :meth:`metrics_samples`
  (the ``/metrics`` exposition feed) each take one consistent snapshot —
  no torn reads between ``completed`` and the latency histogram.  Traced
  requests (``SearchRequest.trace``) additionally receive ``window_wait``
  and ``evaluate`` spans, and dedupe twins adopt the primary evaluation's
  engine spans tagged ``dedupe_shared``.
* **Engine swap** — :meth:`replace_engine` atomically points new windows
  at a different engine (e.g. a freshly reloaded index).  In-flight
  windows finish against the engine they started with; result-cache
  staleness is the engine's concern (see ``Engine.replace_index`` and the
  cache's generation tags).

The service must be used from a running event loop.  Typical shape::

    engine = load_index("indexes/corpus", mmap=True, query_executor="process")
    async with AsyncSearchService(engine, max_wait_ms=2.0) as service:
        results = await asyncio.gather(
            *(service.submit(p, tau=0.3) for p in patterns)
        )
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import replace
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from ..api.requests import SearchRequest, SearchResult
from ..exceptions import (
    DeadlineExceededError,
    ServiceOverloadedError,
    ServiceStoppedError,
    ValidationError,
)
from ..faults import SITE_BATCH_FLUSH, fire
from ..obs.metrics import MetricSample, MetricsRegistry

#: Dedupe key inside one window: requests equal on these fields share one
#: evaluation and one :class:`SearchResult`.
_WindowKey = Tuple[str, Optional[float], Optional[int]]


class _Pending:
    """One submitted request waiting for (or riding in) a window.

    ``deadline`` is the monotonic instant the request's ``timeout_ms``
    budget runs out (``None``: unbounded) — computed once at submission so
    queueing time, window wait and evaluation all spend the same budget.
    """

    __slots__ = ("request", "future", "enqueued_at", "deadline")

    def __init__(
        self,
        request: SearchRequest,
        future: "asyncio.Future",
        enqueued_at: float,
        deadline: Optional[float] = None,
    ) -> None:
        self.request = request
        self.future = future
        self.enqueued_at = enqueued_at
        self.deadline = deadline


class AsyncSearchService:
    """Coalesce concurrent ``submit`` calls into batched engine evaluations.

    Parameters
    ----------
    engine:
        Any engine speaking the unified query vocabulary (``search_many``).
    max_wait_ms:
        How long a window stays open for more arrivals after its first
        request, in milliseconds.  ``0`` dispatches whatever is queued
        immediately (pure dedupe, no added latency).
    max_batch:
        Hard cap on requests per window; a full window dispatches without
        waiting out ``max_wait_ms``.
    max_pending:
        Admission bound: maximum requests admitted (queued plus in-flight
        inside a dispatched window) at once.  Submissions beyond it raise
        :class:`~repro.exceptions.ServiceOverloadedError`.
    executor:
        Optional :class:`concurrent.futures.Executor` for the engine work;
        ``None`` uses the event loop's default thread pool.
    """

    def __init__(
        self,
        engine: Any,
        *,
        max_wait_ms: float = 2.0,
        max_batch: int = 256,
        max_pending: int = 4096,
        executor: Any = None,
    ) -> None:
        if max_wait_ms < 0:
            raise ValidationError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise ValidationError(f"max_pending must be >= 1, got {max_pending}")
        self._engine = engine
        self._max_wait = max_wait_ms / 1000.0
        self._max_batch = int(max_batch)
        self._max_pending = int(max_pending)
        self._executor = executor

        self._pending: Deque[_Pending] = deque()  # guarded-by: event-loop
        self._wake: Optional[asyncio.Event] = None
        self._runner: Optional["asyncio.Task[None]"] = None
        self._closed = False

        # All counters live in one registry sharing one re-entrant lock:
        # updates happen on the event-loop thread, but `stats()` and
        # `/metrics` scrapes arrive from executor/server threads, and the
        # shared lock makes each snapshot consistent across every metric.
        self._metrics_lock = threading.RLock()
        self._metrics = MetricsRegistry(lock=self._metrics_lock)
        self._submitted = self._metrics.counter("service_submitted_total")
        self._completed = self._metrics.counter("service_completed_total")
        self._failed = self._metrics.counter("service_failed_total")
        self._cancelled = self._metrics.counter("service_cancelled_total")
        self._rejected = self._metrics.counter("service_rejected_total")
        self._deduplicated = self._metrics.counter("service_deduplicated_total")
        self._batches = self._metrics.counter("service_batches_total")
        self._batched_requests = self._metrics.counter(
            "service_batched_requests_total"
        )
        self._deadline_exceeded = self._metrics.counter(
            "service_deadline_exceeded_total"
        )
        self._partial_answers = self._metrics.counter(
            "service_partial_answers_total"
        )
        self._in_flight = self._metrics.gauge("service_in_flight_count")
        self._metrics.gauge(
            "service_queue_depth_count", fn=lambda: float(len(self._pending))
        )
        self._max_batch_seen = self._metrics.gauge("service_max_batch_count")
        self._max_queue_depth = self._metrics.gauge(
            "service_max_queue_depth_count"
        )
        self._latency = self._metrics.histogram("service_latency_ms")

    # -- lifecycle ----------------------------------------------------------------
    @property
    def engine(self) -> Any:
        """The engine new windows will evaluate against."""
        return self._engine

    @property
    def running(self) -> bool:
        """Whether the batching task is active."""
        return self._runner is not None and not self._runner.done()

    @property
    def closed(self) -> bool:
        """Whether :meth:`stop` was called (new submissions are refused)."""
        return self._closed

    async def start(self) -> "AsyncSearchService":
        """Start the batching task (idempotent; ``submit`` auto-starts too)."""
        if self._closed:
            raise ServiceStoppedError("AsyncSearchService is stopped")
        if self._runner is None or self._runner.done():
            loop = asyncio.get_running_loop()
            if self._wake is None:
                self._wake = asyncio.Event()
            self._runner = loop.create_task(self._run())
        return self

    async def stop(self) -> None:
        """Drain queued requests, then stop accepting new ones.

        Every request admitted before ``stop`` was called still gets its
        answer (the run loop flushes remaining windows); submissions after
        it raise :class:`~repro.exceptions.ServiceStoppedError`.
        """
        self._closed = True
        if self._wake is not None:
            self._wake.set()
        if self._runner is not None:
            await self._runner
            self._runner = None

    async def __aenter__(self) -> "AsyncSearchService":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    def replace_engine(self, engine: Any) -> Any:
        """Point future windows at ``engine``; returns the previous engine.

        In-flight windows keep the engine they captured.  If the new
        engine wraps a *different* index behind the same result cache, the
        caller is responsible for the cache's generation tag (handled
        automatically by ``Engine.replace_index``).
        """
        previous, self._engine = self._engine, engine
        return previous

    # -- submission ---------------------------------------------------------------
    async def submit(
        self,
        request: Union[SearchRequest, str],
        *,
        tau: Optional[float] = None,
        top_k: Optional[int] = None,
    ) -> SearchResult:
        """Submit one request; awaits (and returns) its evaluated result.

        Accepts a bare pattern with ``tau`` / ``top_k`` keywords or a
        :class:`SearchRequest`, exactly like ``Engine.search``.  The
        returned :class:`SearchResult` is already evaluated (its matches
        materialized inside the batch), so touching it never blocks.

        A request carrying ``timeout_ms`` is watched end to end: if its
        budget runs out while it queues, waits in a window or evaluates,
        ``submit`` raises :class:`~repro.exceptions.DeadlineExceededError`
        instead of waiting longer (the abandoned evaluation is left to
        finish off-loop; its answer is discarded).

        Raises
        ------
        ServiceOverloadedError
            When ``max_pending`` requests are already queued or in flight.
        ServiceStoppedError
            When the service was stopped (also a ``RuntimeError``).
        DeadlineExceededError
            When the request outlives its ``timeout_ms`` budget.
        """
        if self._closed:
            raise ServiceStoppedError("AsyncSearchService is stopped")
        normalized = SearchRequest.coerce(request, tau=tau, top_k=top_k)
        # Admission counts queued AND in-flight work: requests already
        # popped into a window still hold service capacity until their
        # futures resolve, so gating on the queue alone would admit up to
        # max_pending + max_batch requests during a burst.
        if len(self._pending) + int(self._in_flight.value) >= self._max_pending:
            self._rejected.inc()
            raise ServiceOverloadedError(
                f"request queue is full ({self._max_pending} pending); "
                "back off and retry"
            )
        if self._runner is None or self._runner.done():
            await self.start()
        wake = self._wake
        assert wake is not None  # start() created the event above
        loop = asyncio.get_running_loop()
        budget_s = (
            None if normalized.timeout_ms is None else normalized.timeout_ms / 1000.0
        )
        deadline = None if budget_s is None else time.monotonic() + budget_s
        pending = _Pending(normalized, loop.create_future(), time.perf_counter(), deadline)
        self._pending.append(pending)
        with self._metrics.hold():
            self._submitted.inc()
            self._max_queue_depth.set_max(float(len(self._pending)))
        wake.set()
        if budget_s is None:
            return await pending.future
        try:
            # No shield: an expired request's future is cancelled outright,
            # so the dispatch fan-out skips it (counted as cancelled there)
            # instead of burning a result nobody will read.
            return await asyncio.wait_for(pending.future, timeout=budget_s)
        except DeadlineExceededError:
            # The dispatcher already expired this request (pre-dispatch
            # sweep) and counted it; propagate as-is.  Ordered before the
            # TimeoutError clause: DeadlineExceededError *is* a
            # TimeoutError, which asyncio.TimeoutError aliases on 3.11+.
            raise
        except asyncio.TimeoutError:
            self._deadline_exceeded.inc()
            raise DeadlineExceededError(
                f"request {normalized.pattern!r} exceeded its "
                f"timeout_ms={normalized.timeout_ms} budget in the serving tier"
            ) from None

    # -- batching loop ------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        wake = self._wake
        assert wake is not None  # start() creates the event before scheduling _run
        while True:
            if not self._pending:
                if self._closed:
                    return
                wake.clear()
                # Re-check after clearing: a submit between the check and
                # the clear would otherwise sleep until the next arrival.
                if self._pending or self._closed:
                    continue
                await wake.wait()
                continue
            # A window opens with the oldest queued request; keep it open
            # for stragglers until the deadline passes or it fills up.
            deadline = loop.time() + self._max_wait
            while len(self._pending) < self._max_batch and not self._closed:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                wake.clear()
                try:
                    await asyncio.wait_for(wake.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
            window: List[_Pending] = []
            while self._pending and len(window) < self._max_batch:
                window.append(self._pending.popleft())
            await self._dispatch(window, loop)

    async def _dispatch(self, window: List[_Pending], loop: asyncio.AbstractEventLoop) -> None:
        """Evaluate one window: dedupe, one ``search_many``, fan back out."""
        self._in_flight.inc(float(len(window)))
        try:
            await self._dispatch_window(window, loop)
        finally:
            self._in_flight.dec(float(len(window)))

    def _rebudget(
        self, request: SearchRequest, bucket: List[_Pending], now: float
    ) -> SearchRequest:
        """The request to dispatch for ``bucket``, with its remaining budget.

        The engine should stop waiting on shard futures once every
        submitter behind this evaluation has given up — so the dispatched
        ``timeout_ms`` is the *largest* remaining budget in the dedupe
        bucket (``None`` if any member is unbounded), clamped to at least
        1ms.  The rewrite is answer-neutral: cache keys and batch dedupe
        ignore ``timeout_ms``.
        """
        bounded = [
            pending.deadline for pending in bucket if pending.deadline is not None
        ]
        if len(bounded) != len(bucket):  # some member is unbounded
            if request.timeout_ms is None:
                return request
            return replace(request, timeout_ms=None)
        remaining_ms = max(1.0, (max(bounded) - now) * 1000.0)
        return replace(request, timeout_ms=remaining_ms)

    async def _dispatch_window(
        self, window: List[_Pending], loop: asyncio.AbstractEventLoop
    ) -> None:
        # Pre-dispatch sweep: a request whose budget ran out while queued
        # gets its DeadlineExceededError now instead of costing engine work
        # (its submitter's watchdog may already have cancelled the future).
        dispatch_started = time.perf_counter()
        now = time.monotonic()
        live: List[_Pending] = []
        for pending in window:
            if pending.deadline is not None and now >= pending.deadline:
                if not pending.future.done():
                    self._deadline_exceeded.inc()
                    pending.future.set_exception(
                        DeadlineExceededError(
                            f"request {pending.request.pattern!r} exceeded its "
                            f"timeout_ms={pending.request.timeout_ms} budget "
                            "before dispatch"
                        )
                    )
                else:
                    self._cancelled.inc()
                continue
            live.append(pending)
        window = live
        if not window:
            return
        holders: "Dict[_WindowKey, List[_Pending]]" = {}
        unique: List[SearchRequest] = []
        for pending in window:
            request = pending.request
            key: _WindowKey = (request.pattern, request.tau, request.top_k)
            bucket = holders.get(key)
            if bucket is None:
                holders[key] = [pending]
                unique.append(request)
            else:
                bucket.append(pending)
                self._deduplicated.inc()
        # Rewrite each dispatched request's budget to what actually remains
        # of its bucket's deadlines — the engine sees the time left, not the
        # original (partly spent) figure.
        unique = [
            self._rebudget(request, holders[(request.pattern, request.tau, request.top_k)], now)
            for request in unique
        ]
        engine = self._engine
        with self._metrics.hold():
            self._batches.inc()
            self._batched_requests.inc(len(window))
            self._max_batch_seen.set_max(float(len(window)))
            window_ordinal = self._batches.value

        def evaluate() -> List[Tuple[Optional[SearchResult], Optional[BaseException]]]:
            # Materialize off the event loop, per result: one request whose
            # evaluation raises (e.g. a tau below tau_min) must fail only
            # its own submitters, never its window-mates.
            outcomes: List[Tuple[Optional[SearchResult], Optional[BaseException]]] = []
            for result in engine.search_many(unique):
                try:
                    result.matches
                    outcomes.append((result, None))
                except Exception as error:  # noqa: BLE001 — per-request fan-out
                    outcomes.append((None, error))
            return outcomes

        eval_started = time.perf_counter()
        try:
            # The batch-flush fault site fires inside the containment: an
            # injected error fails this window's futures (like any batch
            # setup failure) instead of killing the run loop, and an
            # injected delay blocks the loop — exactly the hang the
            # submit-side deadline watchdog must bound.
            fire(SITE_BATCH_FLUSH)
            outcomes = await loop.run_in_executor(self._executor, evaluate)
        except Exception as error:  # noqa: BLE001 — batch setup failed: fan out
            for pendings in holders.values():
                for pending in pendings:
                    if pending.future.done():  # caller cancelled mid-window
                        self._cancelled.inc()
                        continue
                    pending.future.set_exception(error)
                    self._failed.inc()
            return
        finished = time.perf_counter()
        # Per-request spans: every traced submitter gets its window wait
        # (enqueue → dispatch) and the shared evaluation duration; dedupe
        # twins additionally adopt the primary's engine spans (the engine
        # only ever saw the primary's trace) tagged ``dedupe_shared``.
        if any(pending.request.trace is not None for pending in window):
            eval_ms = (finished - eval_started) * 1000.0
            for request in unique:
                bucket = holders[(request.pattern, request.tau, request.top_k)]
                primary = request.trace
                shared = primary.extract("evaluate") if primary is not None else []
                for pending in bucket:
                    trace = pending.request.trace
                    if trace is None:
                        continue
                    trace.add(
                        "window_wait",
                        (dispatch_started - pending.enqueued_at) * 1000.0,
                        parent="service",
                        window=window_ordinal,
                    )
                    trace.add(
                        "evaluate",
                        eval_ms,
                        parent="service",
                        window=window_ordinal,
                        bucket_size=len(bucket),
                        deduplicated=trace is not primary,
                    )
                    if trace is not primary:
                        trace.adopt(shared, dedupe_shared=True)
        # Post-evaluation sweep mirror of the pre-dispatch one: a budget
        # that ran out *during* the window (e.g. an injected stall blocked
        # the loop) must expire the request even though an answer exists —
        # otherwise the submitter's overdue ``wait_for`` can lose the race
        # against ``set_result`` in the same loop tick and hand back a
        # success far past its deadline.
        expired_at = time.monotonic()
        for request, (result, error) in zip(unique, outcomes):
            key = (request.pattern, request.tau, request.top_k)
            for pending in holders[key]:
                if pending.future.done():  # caller cancelled mid-window
                    self._cancelled.inc()
                    continue
                if pending.deadline is not None and expired_at >= pending.deadline:
                    self._deadline_exceeded.inc()
                    pending.future.set_exception(
                        DeadlineExceededError(
                            f"request {pending.request.pattern!r} exceeded its "
                            f"timeout_ms={pending.request.timeout_ms} budget "
                            "during its evaluation window"
                        )
                    )
                    continue
                if error is not None:
                    if isinstance(error, DeadlineExceededError):
                        self._deadline_exceeded.inc()
                    else:
                        self._failed.inc()
                    pending.future.set_exception(error)
                    continue
                latency = finished - pending.enqueued_at
                with self._metrics.hold():
                    # One hold: the completed count and the latency
                    # histogram's count can never disagree in a snapshot.
                    self._latency.observe(latency * 1000.0)
                    self._completed.inc()
                    if result is not None and result.partial:
                        self._partial_answers.inc()
                pending.future.set_result(result)

    # -- observability ------------------------------------------------------------
    def stats(self) -> dict:
        """Serving metrics: traffic, coalescing, queue depth, latency.

        The whole dict is one snapshot under the registry lock, so the
        figures are mutually consistent — ``completed`` always equals the
        latency histogram's observation count, even mid-storm.
        """
        with self._metrics.hold():
            completed = self._completed.value
            batches = self._batches.value
            return {
                "submitted": self._submitted.value,
                "completed": completed,
                "failed": self._failed.value,
                "cancelled": self._cancelled.value,
                "rejected": self._rejected.value,
                "deadline_exceeded": self._deadline_exceeded.value,
                "partial_answers": self._partial_answers.value,
                "in_flight": int(self._in_flight.value),
                "deduplicated": self._deduplicated.value,
                "batches": batches,
                "max_batch_size": int(self._max_batch_seen.value),
                "mean_batch_size": (
                    self._batched_requests.value / batches if batches else 0.0
                ),
                "queue_depth": len(self._pending),
                "max_queue_depth": int(self._max_queue_depth.value),
                "latency": {
                    "mean_ms": self._latency.mean,
                    "max_ms": self._latency.max,
                },
                "config": {
                    "max_wait_ms": self._max_wait * 1000.0,
                    "max_batch": self._max_batch,
                    "max_pending": self._max_pending,
                },
            }

    def metrics_samples(self) -> List[MetricSample]:
        """Own metrics plus the engine's, for ``/metrics`` exposition."""
        samples = self._metrics.collect()
        engine = self._engine
        collect = getattr(engine, "metrics_samples", None)
        if callable(collect):
            samples.extend(collect())
        else:
            cache = getattr(engine, "cache", None)
            metrics = getattr(cache, "metrics", None)
            if metrics is not None:
                samples.extend(metrics.collect())
        return samples
