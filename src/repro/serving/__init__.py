"""Serving layer above the :mod:`repro.api` façade.

This package is where the reproduction becomes a *service*: everything
below it (engines, planner, sharding, caching, persistence) answers one
caller's queries; :mod:`repro.serving` multiplexes **many concurrent
callers** onto those engines.

* :class:`AsyncSearchService` — an asyncio front end that coalesces
  concurrent ``submit`` calls into micro-batched ``search_many``
  evaluations (deduplication and same-pattern threshold refinement apply
  across users, not just within one caller's batch), with admission
  control and serving metrics.

It composes with the scale-out machinery underneath: serve a
:class:`~repro.api.sharding.ShardedEngine` with
``query_executor="process"`` over an index loaded with ``mmap=True`` and
the stack is an async batch server over multi-process shard workers
sharing one memory-mapped copy of the arrays.
"""

from ..exceptions import ServiceOverloadedError
from .service import AsyncSearchService

__all__ = [
    "AsyncSearchService",
    "ServiceOverloadedError",
]
