"""Serving layer above the :mod:`repro.api` façade.

This package is where the reproduction becomes a *service*: everything
below it (engines, planner, sharding, caching, persistence) answers one
caller's queries; :mod:`repro.serving` multiplexes **many concurrent
callers** onto those engines.

* :class:`AsyncSearchService` — an asyncio front end that coalesces
  concurrent ``submit`` calls into micro-batched ``search_many``
  evaluations (deduplication and same-pattern threshold refinement apply
  across users, not just within one caller's batch), with admission
  control and serving metrics.
* :class:`ReplicaSet` — N copies of one index (mmap-shared via
  :meth:`ReplicaSet.load`) behind least-loaded batch dispatch, optional
  hedged requests, per-replica health tracking with failover, and
  drain-then-swap zero-downtime index replacement.
* :class:`SearchHttpApp` / :class:`SearchHttpServer` — the network tier:
  a transport-independent JSON application (drivable in-process, no
  sockets) and a thin asyncio HTTP/1.1 adapter over it, with a fixed
  exception→status contract.
* :func:`run_load` / :class:`LoadProfile` / :class:`LoadReport` — a
  seeded load generator over either transport, reporting QPS and
  latency percentiles.

The layers stack: ``SearchHttpServer(SearchHttpApp(AsyncSearchService(
ReplicaSet.load(path, replicas=4))))`` is an HTTP batch server over four
replicas sharing one memory-mapped copy of the arrays — and each layer
also stands alone.
"""

from ..exceptions import (
    DeadlineExceededError,
    DrainTimeoutError,
    NoHealthyReplicaError,
    ServiceOverloadedError,
)
from .http import ERROR_STATUS, HttpResponse, SearchHttpApp, SearchHttpServer, status_for_exception
from .loadgen import LoadProfile, LoadReport, run_load, socket_dispatch
from .replicas import ReplicaSet
from .service import AsyncSearchService

__all__ = [
    "AsyncSearchService",
    "DeadlineExceededError",
    "DrainTimeoutError",
    "ERROR_STATUS",
    "HttpResponse",
    "LoadProfile",
    "LoadReport",
    "NoHealthyReplicaError",
    "ReplicaSet",
    "SearchHttpApp",
    "SearchHttpServer",
    "ServiceOverloadedError",
    "run_load",
    "socket_dispatch",
    "status_for_exception",
]
