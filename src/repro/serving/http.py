"""The network front end: a stdlib-only HTTP tier over the serving stack.

Two layers, deliberately separated:

* :class:`SearchHttpApp` — the *application*: it turns ``(method, target,
  body)`` triples into JSON :class:`HttpResponse` objects.  It knows the
  routes, the request validation into
  :class:`~repro.api.requests.SearchRequest`, the wire pagination, and the
  **fixed exception→status mapping** (:data:`ERROR_STATUS`) — and it knows
  nothing about sockets.  That makes the whole HTTP surface drivable
  in-process: the load generator and the CI perf smoke call
  :meth:`SearchHttpApp.dispatch` directly, so the network tier is tested
  end to end without ever binding a port.
* :class:`SearchHttpServer` — the *transport*: a thin
  :func:`asyncio.start_server` adapter that parses HTTP/1.1 requests
  (keep-alive, ``Content-Length`` bodies) off a stream and writes the
  app's responses back.  It contains no routing or search logic at all.

Routes::

    GET  /healthz            liveness: 200 while accepting, 503 once stopped
    GET  /stats              service + engine/replica metrics as JSON
                             (plus the slow-query log when enabled)
    GET  /metrics            Prometheus text exposition of every registry
                             reachable from the service (engine, cache,
                             replicas, active fault injector)
    GET  /search?pattern=..&tau=..&top_k=..&offset=..&limit=..
    POST /search             same parameters as a JSON object body

Tracing: every ``/search`` response echoes ``X-Repro-Trace-Id`` when the
request was traced.  A trace is minted (or adopted from a caller-supplied
``X-Repro-Trace-Id`` header) when the caller passes ``debug=trace``, when
the app was built with ``trace_all=True``, or when a slow-query log is
attached; only ``debug=trace`` adds the full span tree to the response
payload as ``"trace"``.  Untraced requests pay a single ``is None`` test.

Error contract — every error body is ``{"error": {"type", "message",
"status"}}`` and the status comes from the first matching row of
:data:`ERROR_STATUS` (ordered subclass-first, so
:class:`~repro.exceptions.PatternTooLongError` hits its own row before the
generic :class:`~repro.exceptions.QueryError` one):

=============================  ======
exception                      status
=============================  ======
``ServiceOverloadedError``     429
``ServiceStoppedError``        503
``NoHealthyReplicaError``      503
``DrainTimeoutError``          503
``DeadlineExceededError``      504
``PatternTooLongError``        400
``ValidationError``            400
``QueryError``                 400
``ReproError`` (any other)     500
anything else                  500
=============================  ======

A degraded answer (a sharded engine in ``partial=True`` mode whose
shards stayed down after crash recovery) is still a 200, with
``"partial": true`` and the failed shard ordinals in
``"failed_shards"`` added to the response object — complete answers
carry neither key.

The app serves whatever the :class:`~repro.serving.AsyncSearchService`
serves — a plain engine, a sharded one, or a
:class:`~repro.serving.ReplicaSet` — and ``/stats`` duck-types the
engine's own ``stats()`` in next to the service counters, so replica
health is one curl away.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type, Union
from urllib.parse import parse_qs, urlsplit

from ..api.requests import SearchRequest
from ..core.base import Occurrence
from ..exceptions import (
    DeadlineExceededError,
    DrainTimeoutError,
    NoHealthyReplicaError,
    PatternTooLongError,
    QueryError,
    ReproError,
    ServiceOverloadedError,
    ServiceStoppedError,
    ValidationError,
)
from ..faults.injection import active_injector
from ..obs.metrics import MetricSample, render_prometheus
from ..obs.trace import SlowQueryLog, Trace
from .service import AsyncSearchService

#: Caller-supplied trace identifiers must be short and header-safe.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9_.:-]{1,64}$")

#: The trace-id request/response header.
TRACE_HEADER = "x-repro-trace-id"

#: The wire contract: first matching row wins, so subclasses must precede
#: their bases (``PatternTooLongError`` before ``QueryError``,
#: ``ValidationError`` before ``ReproError``).  Anything not matching any
#: row — including non-:class:`ReproError` exceptions — maps to 500.
ERROR_STATUS: Tuple[Tuple[Type[BaseException], int], ...] = (
    (ServiceOverloadedError, 429),
    (ServiceStoppedError, 503),
    (NoHealthyReplicaError, 503),
    (DrainTimeoutError, 503),
    (DeadlineExceededError, 504),
    (PatternTooLongError, 400),
    (ValidationError, 400),
    (QueryError, 400),
    (ReproError, 500),
)

#: Reason phrases for the statuses this tier emits.
_REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Hard cap on request-line/header/body sizes the socket transport accepts.
MAX_REQUEST_BYTES = 1 << 20


def status_for_exception(error: BaseException) -> int:
    """The HTTP status :data:`ERROR_STATUS` assigns to ``error``."""
    for exc_type, status in ERROR_STATUS:
        if isinstance(error, exc_type):
            return status
    return 500


@dataclass(frozen=True)
class HttpResponse:
    """One response: a status code plus a JSON payload or a plain-text body.

    ``text`` set (the ``/metrics`` exposition) overrides ``payload`` and
    switches the content type to Prometheus' text format.
    """

    status: int
    payload: Mapping[str, Any]
    headers: Tuple[Tuple[str, str], ...] = field(default=())
    text: Optional[str] = None

    @property
    def reason(self) -> str:
        """Reason phrase for :attr:`status`."""
        return _REASONS.get(self.status, "Unknown")

    @property
    def ok(self) -> bool:
        """Whether the status is a success (2xx)."""
        return 200 <= self.status < 300

    @property
    def content_type(self) -> str:
        """The wire content type (JSON, or Prometheus text for ``text``)."""
        if self.text is not None:
            return "text/plain; version=0.0.4; charset=utf-8"
        return "application/json"

    def body(self) -> bytes:
        """The body bytes: ``text`` verbatim, else the payload as JSON."""
        if self.text is not None:
            return self.text.encode("utf-8")
        return json.dumps(self.payload, sort_keys=True).encode("utf-8")

    def encode(self) -> bytes:
        """The full HTTP/1.1 response bytes (status line, headers, body)."""
        body = self.body()
        lines = [
            f"HTTP/1.1 {self.status} {self.reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(body)}",
        ]
        lines.extend(f"{name}: {value}" for name, value in self.headers)
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("ascii") + body


def _error_response(error: BaseException) -> HttpResponse:
    status = status_for_exception(error)
    return HttpResponse(
        status,
        {
            "error": {
                "type": type(error).__name__,
                "message": str(error),
                "status": status,
            }
        },
    )


def match_to_json(match: Any) -> Dict[str, Any]:
    """Wire shape of one match: position/probability or document/relevance."""
    if isinstance(match, Occurrence):
        return {"position": match.position, "probability": match.probability}
    return {"document": match.document, "relevance": match.relevance}


def _single(params: Mapping[str, List[str]], name: str) -> Optional[str]:
    values = params.get(name)
    if not values:
        return None
    if len(values) > 1:
        raise ValidationError(f"parameter {name!r} given {len(values)} times")
    return values[0]


def _as_float(name: str, raw: Any) -> float:
    if isinstance(raw, bool):
        raise ValidationError(f"parameter {name!r} must be a number, got {raw!r}")
    if isinstance(raw, (int, float)):
        return float(raw)
    try:
        return float(str(raw))
    except (TypeError, ValueError):
        raise ValidationError(f"parameter {name!r} must be a number, got {raw!r}")


def _as_int(name: str, raw: Any) -> int:
    if isinstance(raw, bool):
        raise ValidationError(f"parameter {name!r} must be an integer, got {raw!r}")
    if isinstance(raw, int):
        return raw
    try:
        return int(str(raw))
    except (TypeError, ValueError):
        raise ValidationError(f"parameter {name!r} must be an integer, got {raw!r}")


@dataclass(frozen=True)
class _ParsedQuery:
    """A validated ``/search`` call: the request plus its wire pagination."""

    request: SearchRequest
    offset: int
    limit: Optional[int]


def _parse_search(params: Mapping[str, Any]) -> _ParsedQuery:
    """Validate raw query/body parameters into a :class:`_ParsedQuery`.

    ``params`` maps names to either strings (query string, via
    :func:`urllib.parse.parse_qs` flattened by :func:`_single`) or JSON
    values (POST body).  Unknown parameter names are rejected — a typo'd
    ``taau=0.3`` must not silently search with the default threshold.
    """
    known = {"pattern", "tau", "top_k", "timeout_ms", "offset", "limit"}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValidationError(
            f"unknown parameter(s): {', '.join(unknown)}; expected {sorted(known)}"
        )
    pattern = params.get("pattern")
    if pattern is None or not isinstance(pattern, str) or not pattern:
        raise ValidationError("parameter 'pattern' is required and must be a string")
    tau = params.get("tau")
    top_k = params.get("top_k")
    timeout_ms = params.get("timeout_ms")
    offset = params.get("offset")
    limit = params.get("limit")
    request = SearchRequest(
        pattern,
        tau=None if tau is None else _as_float("tau", tau),
        top_k=None if top_k is None else _as_int("top_k", top_k),
        timeout_ms=None if timeout_ms is None else _as_float("timeout_ms", timeout_ms),
    )
    parsed_offset = 0 if offset is None else _as_int("offset", offset)
    if parsed_offset < 0:
        raise ValidationError(f"offset must be non-negative, got {parsed_offset}")
    parsed_limit = None if limit is None else _as_int("limit", limit)
    if parsed_limit is not None and parsed_limit < 0:
        raise ValidationError(f"limit must be non-negative, got {parsed_limit}")
    return _ParsedQuery(request, parsed_offset, parsed_limit)


class SearchHttpApp:
    """Routes and JSON encoding over one :class:`AsyncSearchService`.

    The app is transport-independent: :meth:`dispatch` is a plain
    coroutine from ``(method, target, body, headers)`` to
    :class:`HttpResponse`, equally callable from the socket server, the
    load generator, or a test.  All search traffic funnels through
    ``service.submit``, so micro-batching, deduplication and admission
    control apply to HTTP callers exactly as they do to in-process ones.

    Parameters
    ----------
    service:
        The coalescing service to front.
    slow_log:
        Optional :class:`~repro.obs.trace.SlowQueryLog`; attaching one
        traces every ``/search`` request and retains the worst span
        trees, dumped under ``"slow_queries"`` in ``/stats``.
    trace_all:
        Trace every request even without ``debug=trace`` (the span tree
        still only appears in the payload when the caller asks).
    """

    def __init__(
        self,
        service: AsyncSearchService,
        *,
        slow_log: Optional[SlowQueryLog] = None,
        trace_all: bool = False,
    ) -> None:
        self._service = service
        self._slow_log = slow_log
        self._trace_all = bool(trace_all)

    @property
    def service(self) -> AsyncSearchService:
        """The coalescing service this app fronts."""
        return self._service

    @property
    def slow_log(self) -> Optional[SlowQueryLog]:
        """The attached slow-query log, if any."""
        return self._slow_log

    async def dispatch(
        self,
        method: str,
        target: str,
        body: Optional[bytes] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> HttpResponse:
        """Answer one request; never raises — errors become JSON responses.

        ``headers`` maps lowercase header names to values; the only one
        the app reads is ``x-repro-trace-id`` (caller-supplied trace
        identifier, echoed back on the response).
        """
        try:
            split = urlsplit(target)
            path = split.path or "/"
            if path == "/healthz":
                if method != "GET":
                    return self._method_not_allowed("GET")
                return self._healthz()
            if path == "/stats":
                if method != "GET":
                    return self._method_not_allowed("GET")
                return self._stats()
            if path == "/metrics":
                if method != "GET":
                    return self._method_not_allowed("GET")
                return self._metrics()
            if path == "/search":
                if method == "GET":
                    params = {
                        name: _single(parse_qs(split.query), name)
                        for name in parse_qs(split.query)
                    }
                    return await self._search(params, headers)
                if method == "POST":
                    return await self._search(self._decode_body(body), headers)
                return self._method_not_allowed("GET, POST")
            return HttpResponse(
                404,
                {
                    "error": {
                        "type": "NotFound",
                        "message": f"no route for {path!r}",
                        "status": 404,
                    }
                },
            )
        except Exception as error:  # noqa: BLE001 — the wire error boundary
            return _error_response(error)

    def _method_not_allowed(self, allow: str) -> HttpResponse:
        return HttpResponse(
            405,
            {
                "error": {
                    "type": "MethodNotAllowed",
                    "message": f"allowed: {allow}",
                    "status": 405,
                }
            },
            headers=(("Allow", allow),),
        )

    def _decode_body(self, body: Optional[bytes]) -> Dict[str, Any]:
        if not body:
            raise ValidationError("POST /search requires a JSON object body")
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValidationError(f"request body is not valid JSON: {error}")
        if not isinstance(decoded, dict):
            raise ValidationError(
                f"request body must be a JSON object, got {type(decoded).__name__}"
            )
        return decoded

    def _healthz(self) -> HttpResponse:
        service = self._service
        healthy = not service.closed
        payload = {
            "status": "ok" if healthy else "stopped",
            "running": service.running,
        }
        return HttpResponse(200 if healthy else 503, payload)

    def _stats(self) -> HttpResponse:
        service = self._service
        payload: Dict[str, Any] = {"service": service.stats()}
        engine_stats = getattr(service.engine, "stats", None)
        if callable(engine_stats):
            payload["engine"] = engine_stats()
        if self._slow_log is not None:
            payload["slow_queries"] = self._slow_log.dump()
        return HttpResponse(200, payload)

    def _metrics(self) -> HttpResponse:
        """Prometheus text exposition of every reachable registry."""
        samples: List[MetricSample] = list(self._service.metrics_samples())
        injector = active_injector()
        if injector is not None:
            samples.extend(injector.metrics_samples())
        return HttpResponse(200, {}, text=render_prometheus(samples))

    def _trace_for(
        self, params: Dict[str, Any], headers: Optional[Mapping[str, str]]
    ) -> Tuple[Optional[Trace], bool]:
        """The request's trace (or ``None``) and whether to echo the tree.

        ``debug=trace`` is stripped from ``params`` here so the search
        parameter validation stays strict.  A caller-supplied
        ``x-repro-trace-id`` header both enables tracing and names the
        trace; malformed identifiers are a 400, not silently replaced.
        """
        debug = params.pop("debug", None)
        if debug is not None and debug != "trace":
            raise ValidationError(
                f"parameter 'debug' only supports 'trace', got {debug!r}"
            )
        supplied = (headers or {}).get(TRACE_HEADER)
        if supplied is not None and not _TRACE_ID_RE.match(supplied):
            raise ValidationError(
                "header X-Repro-Trace-Id must match "
                f"{_TRACE_ID_RE.pattern} (got {supplied!r})"
            )
        traced = (
            debug == "trace"
            or supplied is not None
            or self._trace_all
            or self._slow_log is not None
        )
        if not traced:
            return None, False
        return Trace(supplied), debug == "trace"

    async def _search(
        self, params: Mapping[str, Any], headers: Optional[Mapping[str, str]]
    ) -> HttpResponse:
        started = time.perf_counter()
        cleaned = {
            name: value for name, value in params.items() if value is not None
        }
        trace, echo_trace = self._trace_for(cleaned, headers)
        if trace is None:
            parsed = _parse_search(cleaned)
            request = parsed.request
            result = await self._service.submit(request)
        else:
            with trace.span("validate", parent="request"):
                parsed = _parse_search(cleaned)
            request = replace(parsed.request, trace=trace)
            with trace.span("service", parent="request") as meta:
                result = await self._service.submit(request)
                meta["count"] = result.count
        serialize_started = time.perf_counter()
        page = result.page(parsed.offset, parsed.limit)
        payload: Dict[str, Any] = {
            "pattern": request.pattern,
            "tau": request.tau,
            "top_k": request.top_k,
            "count": result.count,
            "offset": parsed.offset,
            "limit": parsed.limit,
            "matches": [match_to_json(match) for match in page],
        }
        if result.partial:
            # Degraded-but-usable is still a 200; the keys appear only on
            # degraded answers so complete responses are byte-stable.
            payload["partial"] = True
            payload["failed_shards"] = list(result.failed_shards)
        if trace is None:
            return HttpResponse(200, payload)
        trace.add(
            "serialize",
            (time.perf_counter() - serialize_started) * 1000.0,
            parent="request",
            matches=len(payload["matches"]),
        )
        total_ms = (time.perf_counter() - started) * 1000.0
        tree = trace.to_dict(total_ms=total_ms)
        if self._slow_log is not None:
            self._slow_log.record(total_ms, tree)
        if echo_trace:
            payload["trace"] = tree
        return HttpResponse(
            200, payload, headers=(("X-Repro-Trace-Id", trace.trace_id),)
        )


class SearchHttpServer:
    """Asyncio socket transport for a :class:`SearchHttpApp`.

    Minimal HTTP/1.1: request line + headers parsed off the stream,
    ``Content-Length`` bodies, keep-alive by default (``Connection:
    close`` honoured), one request in flight per connection.  Bind with
    ``port=0`` to let the OS pick (the bound port is :attr:`port` after
    :meth:`start`) — the pattern the tests and the load generator's
    socket mode use.

    ``idle_timeout_s`` bounds how long a kept-alive connection may sit
    without delivering a complete request: a client that connects and
    goes silent (or trickles half a request) would otherwise pin a
    connection handler forever.  On expiry the connection is closed
    cleanly — no response bytes are written, since there is no request to
    answer.  ``None`` (default) keeps the historical wait-forever
    behaviour.
    """

    def __init__(
        self,
        app: Union[SearchHttpApp, AsyncSearchService],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout_s: Optional[float] = None,
    ) -> None:
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ValidationError(
                f"idle_timeout_s must be positive (or None), got {idle_timeout_s}"
            )
        self._app = app if isinstance(app, SearchHttpApp) else SearchHttpApp(app)
        self._host = host
        self._requested_port = port
        self._idle_timeout_s = idle_timeout_s
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def app(self) -> SearchHttpApp:
        """The application this server exposes."""
        return self._app

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def host(self) -> str:
        """The bind host."""
        return self._host

    @property
    def idle_timeout_s(self) -> Optional[float]:
        """Per-connection idle read timeout (``None``: wait forever)."""
        return self._idle_timeout_s

    async def start(self) -> "SearchHttpServer":
        """Bind and start accepting connections (idempotent)."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle, host=self._host, port=self._requested_port
            )
        return self

    async def stop(self) -> None:
        """Stop accepting connections and close the listening socket."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    async def __aenter__(self) -> "SearchHttpServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                if self._idle_timeout_s is None:
                    parsed = await self._read_request(reader)
                else:
                    try:
                        # The whole request must arrive within the idle
                        # budget — this also bounds a trickled half-request.
                        parsed = await asyncio.wait_for(
                            self._read_request(reader), timeout=self._idle_timeout_s
                        )
                    except asyncio.TimeoutError:
                        return  # idle connection: close cleanly, answer nothing
                if parsed is None:
                    return
                method, target, headers, body = parsed
                response = await self._app.dispatch(method, target, body, headers)
                writer.write(response.encode())
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    return
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return  # the peer went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], Optional[bytes]]]:
        """Parse one request off the stream; ``None`` on a clean EOF."""
        line = await reader.readline()
        if not line or not line.strip():
            return None
        try:
            method, target, _version = line.decode("ascii").split(None, 2)
        except (UnicodeDecodeError, ValueError):
            return None
        headers: Dict[str, str] = {}
        total = len(line)
        while True:
            header = await reader.readline()
            total += len(header)
            if total > MAX_REQUEST_BYTES:
                return None
            if not header or header in (b"\r\n", b"\n"):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body: Optional[bytes] = None
        length_header = headers.get("content-length")
        if length_header is not None:
            try:
                length = int(length_header)
            except ValueError:
                return None
            if length < 0 or length > MAX_REQUEST_BYTES:
                return None
            body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body
