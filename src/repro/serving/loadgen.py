"""Load generator for the HTTP serving tier.

Drives any ``dispatch(method, target, body) -> HttpResponse`` coroutine —
an in-process :meth:`~repro.serving.http.SearchHttpApp.dispatch` (how the
bench experiment and the CI perf smoke run, no sockets involved) or the
:func:`socket_dispatch` adapter against a live server — with a seeded,
reproducible request stream, and reduces the outcome to a
:class:`LoadReport` (QPS, status counts, p50/p95/p99 latency).

Two arrival processes:

* ``"closed"`` — a closed loop of ``concurrency`` workers, each issuing
  its next request the moment the previous one answers.  Measures
  capacity: the offered load adapts to the service.
* ``"poisson"`` — an open(ish) loop: exponential inter-arrival times at
  ``rate`` requests/second, with at most ``concurrency`` requests
  actually in flight (arrivals beyond that queue at the generator, which
  is what a finite client pool does).  Measures latency under a fixed
  offered load.

The request *sequence* is a pure function of the profile (one seeded
:class:`random.Random` draws patterns, taus and inter-arrival gaps), so
two runs against the same service compare like for like.

CLI (against a running :class:`~repro.serving.http.SearchHttpServer`)::

    python -m repro.serving.loadgen --host 127.0.0.1 --port 8080 \\
        --pattern ab --pattern ba --tau 0.3 --tau 0.7 \\
        --requests 500 --concurrency 16 --arrival poisson --rate 200
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ValidationError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import SlowQueryLog
from .http import HttpResponse

#: The transport signature the generator drives: exactly the shape of
#: :meth:`repro.serving.http.SearchHttpApp.dispatch`.
Dispatch = Callable[[str, str, Optional[bytes]], Awaitable[HttpResponse]]

ARRIVALS = ("closed", "poisson")


@dataclass(frozen=True)
class LoadProfile:
    """One reproducible load shape.

    Attributes
    ----------
    patterns:
        Patterns drawn uniformly per request (at least one).
    taus:
        Thresholds drawn uniformly per request; empty means "omit tau"
        (the service resolves the index minimum).
    top_k:
        Optional ``top_k`` sent with every request.
    requests:
        Total requests to issue.
    concurrency:
        Closed-loop worker count / open-loop in-flight cap.
    arrival:
        ``"closed"`` or ``"poisson"`` (see module docstring).
    rate:
        Offered load in requests/second; required for ``"poisson"``.
    seed:
        Seed for the request stream; same profile, same stream.
    page_limit:
        Optional ``limit`` parameter sent with every request (wire
        pagination: bounds response size independently of ``top_k``).
    timeout_ms:
        Optional end-to-end deadline sent with every request; budget
        exhaustion comes back as a 504 (counted, like every status — a
        timeout is a *result* of a load test, not a failure of one).
    debug_trace:
        Send ``debug=trace`` with every request so responses carry their
        span trees — what the ``--slow-log`` report feeds on.  Adds
        tracing overhead to every request; leave off for capacity runs.
    """

    patterns: Tuple[str, ...]
    taus: Tuple[float, ...] = field(default=())
    top_k: Optional[int] = None
    requests: int = 100
    concurrency: int = 8
    arrival: str = "closed"
    rate: Optional[float] = None
    seed: int = 0
    page_limit: Optional[int] = None
    timeout_ms: Optional[float] = None
    debug_trace: bool = False

    def __post_init__(self) -> None:
        if not self.patterns:
            raise ValidationError("LoadProfile needs at least one pattern")
        if self.requests < 1:
            raise ValidationError(f"requests must be >= 1, got {self.requests}")
        if self.concurrency < 1:
            raise ValidationError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.arrival not in ARRIVALS:
            raise ValidationError(
                f"arrival must be one of {ARRIVALS}, got {self.arrival!r}"
            )
        if self.arrival == "poisson":
            if self.rate is None or self.rate <= 0:
                raise ValidationError(
                    f"poisson arrivals need a positive rate, got {self.rate}"
                )
        if self.page_limit is not None and self.page_limit < 0:
            raise ValidationError(
                f"page_limit must be non-negative, got {self.page_limit}"
            )
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ValidationError(
                f"timeout_ms must be positive (or None), got {self.timeout_ms}"
            )

    def plan(self) -> List[Tuple[str, bytes, float]]:
        """The full request stream: ``(target, body, arrival_offset_s)`` rows.

        Deterministic in the profile: one seeded generator draws every
        pattern, tau and inter-arrival gap.  Closed-loop plans carry zero
        offsets (workers pace themselves).
        """
        rng = random.Random(self.seed)
        rows: List[Tuple[str, bytes, float]] = []
        clock = 0.0
        for _ in range(self.requests):
            body: Dict[str, Any] = {"pattern": rng.choice(self.patterns)}
            if self.taus:
                body["tau"] = rng.choice(self.taus)
            if self.top_k is not None:
                body["top_k"] = self.top_k
            if self.page_limit is not None:
                body["limit"] = self.page_limit
            if self.timeout_ms is not None:
                body["timeout_ms"] = self.timeout_ms
            if self.debug_trace:
                body["debug"] = "trace"
            if self.arrival == "poisson":
                assert self.rate is not None  # validated in __post_init__
                clock += rng.expovariate(self.rate)
            rows.append(
                ("/search", json.dumps(body, sort_keys=True).encode("utf-8"), clock)
            )
        return rows


@dataclass(frozen=True)
class LoadReport:
    """What one :func:`run_load` run measured.

    ``by_error`` counts non-2xx responses by the exception class named in
    the wire error body (``error.type`` — e.g. ``DeadlineExceededError``,
    ``ServiceOverloadedError``); non-2xx responses without a parseable
    error body count under ``"unknown"``.
    """

    requests: int
    by_status: Dict[int, int]
    elapsed_s: float
    qps: float
    latency_ms: Dict[str, float]
    by_error: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> int:
        """Number of 2xx responses."""
        return sum(
            count for status, count in self.by_status.items() if 200 <= status < 300
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable shape (status keys become strings)."""
        return {
            "requests": self.requests,
            "ok": self.ok,
            "by_status": {str(status): count for status, count in sorted(self.by_status.items())},
            "by_error": {name: count for name, count in sorted(self.by_error.items())},
            "elapsed_s": self.elapsed_s,
            "qps": self.qps,
            "latency_ms": dict(self.latency_ms),
        }


def _error_type(response: HttpResponse) -> str:
    """Exception class named in a wire error body (``"unknown"`` if absent)."""
    error = response.payload.get("error") if isinstance(response.payload, dict) else None
    if isinstance(error, dict):
        name = error.get("type")
        if isinstance(name, str) and name:
            return name
    return "unknown"


def _reduce(
    statuses: List[int],
    latencies: List[float],
    elapsed: float,
    errors: Optional[List[str]] = None,
) -> LoadReport:
    by_status: Dict[int, int] = {}
    for status in statuses:
        by_status[status] = by_status.get(status, 0) + 1
    by_error: Dict[str, int] = {}
    for name in errors or []:
        by_error[name] = by_error.get(name, 0) + 1
    # The shared repro.obs histogram is the repo's one quantile
    # implementation (nearest rank over retained samples); unbounded
    # retention keeps the run-wide percentiles exact.
    histogram = MetricsRegistry().histogram("loadgen_latency_ms", sample_limit=None)
    for value in latencies:
        histogram.observe(1000.0 * value)
    latency_ms: Dict[str, float] = {
        "p50": 0.0,
        "p95": 0.0,
        "p99": 0.0,
        "mean": 0.0,
        "max": 0.0,
    }
    if histogram.count:
        quantiles = histogram.quantiles((0.50, 0.95, 0.99))
        latency_ms = {
            "p50": quantiles[0.50],
            "p95": quantiles[0.95],
            "p99": quantiles[0.99],
            "mean": histogram.mean,
            "max": histogram.max,
        }
    return LoadReport(
        requests=len(statuses),
        by_status=by_status,
        elapsed_s=elapsed,
        qps=(len(statuses) / elapsed) if elapsed > 0 else 0.0,
        latency_ms=latency_ms,
        by_error=by_error,
    )


async def run_load(
    dispatch: Dispatch,
    profile: LoadProfile,
    *,
    slow_log: Optional[SlowQueryLog] = None,
) -> LoadReport:
    """Drive ``dispatch`` with ``profile``'s request stream; measure it.

    Every request is a ``POST /search`` (JSON body), so the same plan
    works over the in-process app and the socket transport.  Statuses are
    counted, never raised — a 429 storm is a *result* of a load test, not
    a failure of one.

    With ``slow_log`` given (and the profile sending ``debug_trace``),
    every response's span tree is recorded against the client-measured
    latency, so the worst-K keep their server-side breakdowns.
    """
    plan = profile.plan()
    statuses: List[int] = []
    latencies: List[float] = []
    errors: List[str] = []

    async def issue(target: str, body: bytes) -> None:
        begun = time.perf_counter()
        response = await dispatch("POST", target, body)
        elapsed = time.perf_counter() - begun
        latencies.append(elapsed)
        statuses.append(response.status)
        if not response.ok:
            errors.append(_error_type(response))
        elif slow_log is not None and isinstance(response.payload, dict):
            tree = response.payload.get("trace")
            if isinstance(tree, dict):
                slow_log.record(1000.0 * elapsed, tree)

    started = time.perf_counter()
    if profile.arrival == "closed":
        cursor = 0

        async def worker() -> None:
            nonlocal cursor
            while cursor < len(plan):
                target, body, _offset = plan[cursor]
                cursor += 1
                await issue(target, body)

        workers = min(profile.concurrency, len(plan))
        await asyncio.gather(*(worker() for _ in range(workers)))
    else:
        gate = asyncio.Semaphore(profile.concurrency)

        async def timed(target: str, body: bytes, offset: float) -> None:
            delay = offset - (time.perf_counter() - started)
            if delay > 0:
                await asyncio.sleep(delay)
            async with gate:
                await issue(target, body)

        await asyncio.gather(
            *(timed(target, body, offset) for target, body, offset in plan)
        )
    elapsed = time.perf_counter() - started
    return _reduce(statuses, latencies, elapsed, errors)


def socket_dispatch(host: str, port: int) -> Dispatch:
    """A :data:`Dispatch` that speaks HTTP/1.1 to a live server.

    One connection per call — honest client behaviour for a load test
    without connection-pool bookkeeping.  The response body is decoded
    back into an :class:`HttpResponse`, so reports look identical whether
    the transport was in-process or a socket.
    """

    async def dispatch(
        method: str, target: str, body: Optional[bytes] = None
    ) -> HttpResponse:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            payload = body or b""
            head = (
                f"{method} {target} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("ascii", "replace").split(None, 2)
            status = int(parts[1]) if len(parts) >= 2 and parts[1].isdigit() else 500
            length = 0
            while True:
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
                name, _, value = header.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip() or 0)
            raw = await reader.readexactly(length) if length else b""
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
            return HttpResponse(status, decoded)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return dispatch


def format_trace_summary(row: Dict[str, Any]) -> str:
    """One line per slow query: total latency plus every stage timing.

    ``row`` is one :meth:`~repro.obs.trace.SlowQueryLog.dump` entry; the
    stages print in tree (pre-)order so the line reads like the span tree
    flattened: ``request=.. validate=.. service=.. window_wait=.. ...``.
    """
    tree = row.get("trace") or {}
    stages: List[str] = []

    def walk(node: Dict[str, Any]) -> None:
        stages.append(f"{node['name']}={node['duration_ms']:.2f}ms")
        for child in node.get("children", []):
            walk(child)

    for span in tree.get("spans", []):
        walk(span)
    trace_id = tree.get("trace_id", "?")
    return f"{row['total_ms']:.2f}ms trace={trace_id} " + " ".join(stages)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: load-test a running server, print the JSON report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.loadgen",
        description="Drive a repro search HTTP server with a seeded load profile.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--pattern", action="append", required=True, help="repeatable pattern choice"
    )
    parser.add_argument(
        "--tau", action="append", type=float, default=None, help="repeatable tau choice"
    )
    parser.add_argument("--top-k", type=int, default=None)
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--arrival", choices=ARRIVALS, default="closed")
    parser.add_argument("--rate", type=float, default=None, help="req/s for poisson")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--limit", type=int, default=None, help="wire page limit")
    parser.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="per-request end-to-end deadline (budget exhaustion counts a 504)",
    )
    parser.add_argument(
        "--slow-log",
        type=int,
        default=None,
        metavar="K",
        help="trace every request (debug=trace) and print the K worst "
        "span trees after the report",
    )
    options = parser.parse_args(argv)
    profile = LoadProfile(
        patterns=tuple(options.pattern),
        taus=tuple(options.tau or ()),
        top_k=options.top_k,
        requests=options.requests,
        concurrency=options.concurrency,
        arrival=options.arrival,
        rate=options.rate,
        seed=options.seed,
        page_limit=options.limit,
        timeout_ms=options.timeout_ms,
        debug_trace=options.slow_log is not None,
    )
    slow_log = None if options.slow_log is None else SlowQueryLog(options.slow_log)
    report = asyncio.run(
        run_load(
            socket_dispatch(options.host, options.port), profile, slow_log=slow_log
        )
    )
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    if slow_log is not None:
        print(f"slowest {len(slow_log)} request(s):")
        for row in slow_log.dump():
            print("  " + format_trace_summary(row))
    return 0


if __name__ == "__main__":  # pragma: no cover — exercised via subprocess/CLI
    import sys

    sys.exit(main())
