"""Multi-copy replica routing: :class:`ReplicaSet` behind the serving tier.

One engine — even a sharded, process-fanned one — is one dispatch target:
every batch the :class:`~repro.serving.AsyncSearchService` closes lands on
it, and a stalled or faulted copy stalls the whole service.  A
:class:`ReplicaSet` holds **N copies of the same index** and routes each
batch to one of them.  On one box the copies are nearly free when loaded
with ``mmap=True``: every replica maps the same archive, so the heavy
arrays exist once in the page cache however many replicas serve them
(:meth:`ReplicaSet.load` wires exactly that up).

Routing policy, in order of application:

* **Least-loaded dispatch** — each batch goes to the healthy replica with
  the fewest batches currently in flight (ties break on the lowest
  ordinal, so a single-caller workload is deterministic).  Replicas answer
  from copies of the same index, so any replica's answer is every
  replica's answer — the tests pin byte-identical results against a
  single-replica set.
* **Hedged requests** (optional) — with ``hedge_after_ms`` set, a batch
  still unfinished after that delay is *also* dispatched to the next
  least-loaded replica; the first completion wins and the loser's answer
  is discarded.  Hedging converts a slow replica (page-cache miss storm,
  CPU contention) into one duplicated batch instead of a tail-latency
  spike.  Because replicas are copies, hedging can never change an answer.
* **Per-replica health** — a dispatch that fails with an *infrastructure*
  error (a broken worker pool, an I/O error — anything that is not the
  request's own :class:`~repro.exceptions.ValidationError` /
  :class:`~repro.exceptions.QueryError`) counts a fault against the
  replica and the batch fails over to the next healthy one.
  ``max_consecutive_faults`` consecutive faults mark a replica unhealthy
  and routing skips it; after ``probe_after`` subsequent dispatches the
  set routes it one probe batch, and a success restores it.  When every
  replica is unhealthy, dispatch fails fast with
  :class:`~repro.exceptions.NoHealthyReplicaError` (503 over the wire).
* **Drain-then-swap** — :meth:`swap` replaces replica engines one slot at
  a time for zero-downtime index replacement: new dispatches route to the
  new engine immediately, the old engine finishes its in-flight batches,
  and once drained it is closed (releasing worker processes / executors).
  Capacity never drops below N − 1 replicas during a swap.  Callers that
  instead mutate an :class:`~repro.api.engine.Engine` in place should use
  ``Engine.replace_index``, whose cache generation tag provides the same
  no-stale-answer guarantee at the single-engine level.

The set exposes the engine vocabulary the service consumes
(``search_many`` plus the introspection properties), so it drops into
``AsyncSearchService(engine=ReplicaSet(...))`` — and therefore under the
HTTP tier — without any of them knowing replicas exist.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Union

from ..api.requests import SearchRequest, SearchResult
from ..exceptions import (
    DrainTimeoutError,
    NoHealthyReplicaError,
    QueryError,
    ValidationError,
)
from ..faults import SITE_REPLICA_CALL, fire
from ..obs.metrics import MetricSample, MetricsRegistry

#: Exceptions that blame the *request*, not the replica: they propagate to
#: the caller without costing the replica health or triggering failover.
REQUEST_ERRORS = (ValidationError, QueryError)


class _Replica:
    """One copy of the index plus its routing state.

    The mutable counters are guarded by the owning :class:`ReplicaSet`'s
    lock; the replica object itself is the unit of drain accounting — a
    swap retires the whole object, so in-flight decrements always reach
    the engine they were dispatched against.
    """

    __slots__ = (
        "engine",
        "ordinal",
        "in_flight",
        "dispatches",
        "faults",
        "consecutive_faults",
        "healthy",
        "dispatches_since_unhealthy",
        "last_fault",
    )

    def __init__(self, engine: Any, ordinal: int) -> None:
        self.engine = engine
        self.ordinal = ordinal
        self.in_flight = 0
        self.dispatches = 0
        self.faults = 0
        self.consecutive_faults = 0
        self.healthy = True
        self.dispatches_since_unhealthy = 0
        self.last_fault: Optional[str] = None


class ReplicaSet:
    """N copies of one index behind least-loaded / hedged batch dispatch.

    Parameters
    ----------
    engines:
        The replica engines — copies of the *same* index (any object
        speaking the :class:`~repro.api.engine.QueryEngine` vocabulary).
        Build them with :meth:`load` to share one mmap'd archive.
    hedge_after_ms:
        Optional hedging delay: a batch unfinished after this many
        milliseconds is also sent to the next least-loaded replica and the
        first completion wins.  ``None`` (default) disables hedging.
    max_consecutive_faults:
        Consecutive infrastructure faults after which a replica is marked
        unhealthy and skipped by routing.
    probe_after:
        Number of set-wide dispatches after which an unhealthy replica is
        routed one probe batch (a success restores it to the rotation).
    """

    def __init__(
        self,
        engines: Sequence[Any],
        *,
        hedge_after_ms: Optional[float] = None,
        max_consecutive_faults: int = 3,
        probe_after: int = 16,
    ) -> None:
        if not engines:
            raise ValidationError("ReplicaSet needs at least one engine")
        if hedge_after_ms is not None and hedge_after_ms < 0:
            raise ValidationError(
                f"hedge_after_ms must be >= 0 (or None), got {hedge_after_ms}"
            )
        if max_consecutive_faults < 1:
            raise ValidationError(
                f"max_consecutive_faults must be >= 1, got {max_consecutive_faults}"
            )
        if probe_after < 1:
            raise ValidationError(f"probe_after must be >= 1, got {probe_after}")
        # Re-entrant so registry counter increments nest cleanly inside
        # routing-critical sections already holding the lock.
        self._lock = threading.RLock()
        self._replicas: List[_Replica] = [  # guarded-by: _lock
            _Replica(engine, ordinal) for ordinal, engine in enumerate(engines)
        ]
        self._hedge_after = (
            None if hedge_after_ms is None else hedge_after_ms / 1000.0
        )
        self._max_consecutive_faults = int(max_consecutive_faults)
        self._probe_after = int(probe_after)
        self._drained = threading.Condition(self._lock)
        self._executor: Optional[ThreadPoolExecutor] = None  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._metrics = MetricsRegistry(lock=self._lock)
        self._hedges = self._metrics.counter("replica_hedges_total")
        self._hedge_wins = self._metrics.counter("replica_hedge_wins_total")
        self._failovers = self._metrics.counter("replica_failovers_total")
        self._swaps = self._metrics.counter("replica_swaps_total")

    # -- construction -------------------------------------------------------------
    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        *,
        replicas: int,
        mmap: bool = True,
        query_executor: str = "thread",
        cache_size: Optional[int] = None,
        hedge_after_ms: Optional[float] = None,
        max_consecutive_faults: int = 3,
        probe_after: int = 16,
    ) -> "ReplicaSet":
        """Open ``replicas`` mmap-sharing copies of one saved archive.

        Every replica calls :func:`~repro.api.engine.load_index` on the
        same path; with ``mmap=True`` (the default here, unlike the bare
        loader) the copies map the same bytes, so N replicas cost one
        physical copy of the arrays plus N sets of bookkeeping.
        ``cache_size=None`` keeps the loader's default result cache per
        replica; pass ``0`` to disable caching entirely.
        """
        if replicas < 1:
            raise ValidationError(f"replicas must be >= 1, got {replicas}")
        from ..api.engine import load_index

        kwargs: dict = {"mmap": mmap, "query_executor": query_executor}
        if cache_size is not None:
            kwargs["cache_size"] = cache_size
        engines = [load_index(path, **kwargs) for _ in range(replicas)]
        return cls(
            engines,
            hedge_after_ms=hedge_after_ms,
            max_consecutive_faults=max_consecutive_faults,
            probe_after=probe_after,
        )

    @classmethod
    def from_engine(
        cls,
        engine: Any,
        *,
        replicas: int,
        hedge_after_ms: Optional[float] = None,
        max_consecutive_faults: int = 3,
        probe_after: int = 16,
    ) -> "ReplicaSet":
        """Fan ``replicas`` façades out over one in-RAM sharded engine.

        The disk-backed :meth:`load` shares physical memory through the
        page cache; this is its in-RAM counterpart for a
        :class:`~repro.api.sharding.ShardedEngine` that was *built* in
        this process.  Each replica is a new façade (own result cache,
        own worker pools, own routing slot) over the **same** shard
        engines — so in process mode every replica's workers attach to
        one set of shared-memory blocks (see :mod:`repro.api.shm`)
        instead of exporting the index once per replica.  ``engine``
        itself serves as replica 0.
        """
        if replicas < 1:
            raise ValidationError(f"replicas must be >= 1, got {replicas}")
        from ..api.sharding import ShardedEngine

        if not isinstance(engine, ShardedEngine):
            raise ValidationError(
                "from_engine replicates a ShardedEngine; build one (a "
                "single shard is fine) or use ReplicaSet(engines=...) "
                f"directly, got {type(engine).__name__}"
            )
        copies: List[Any] = [engine]
        for _ in range(replicas - 1):
            copies.append(
                ShardedEngine(
                    engine.shards,
                    engine.spec,
                    engine.plan,
                    query_executor=engine.query_executor,
                    partial=engine.partial,
                    worker_retries=engine.worker_retries,
                )
            )
        return cls(
            copies,
            hedge_after_ms=hedge_after_ms,
            max_consecutive_faults=max_consecutive_faults,
            probe_after=probe_after,
        )

    # -- introspection ------------------------------------------------------------
    @property
    def replica_count(self) -> int:
        """Number of replica slots."""
        with self._lock:
            return len(self._replicas)

    @property
    def engines(self) -> List[Any]:
        """The current replica engines, in slot order."""
        with self._lock:
            return [replica.engine for replica in self._replicas]

    def _primary(self) -> Any:
        with self._lock:
            return self._replicas[0].engine

    @property
    def kind(self) -> str:
        """Index kind shared by every replica."""
        return str(self._primary().kind)

    @property
    def tau_min(self) -> float:
        """Smallest query threshold the replicas support."""
        return float(self._primary().tau_min)

    @property
    def is_listing(self) -> bool:
        """Whether results carry ListingMatch (documents) instead of Occurrence."""
        return bool(self._primary().is_listing)

    def __repr__(self) -> str:
        with self._lock:
            healthy = sum(1 for replica in self._replicas if replica.healthy)
            total = len(self._replicas)
        return f"ReplicaSet(replicas={total}, healthy={healthy}, kind={self.kind!r})"

    def stats(self) -> dict:
        """Routing metrics: per-replica load/health plus set-wide counters."""
        with self._lock:
            per_replica = [
                {
                    "ordinal": replica.ordinal,
                    "healthy": replica.healthy,
                    "in_flight": replica.in_flight,
                    "dispatches": replica.dispatches,
                    "faults": replica.faults,
                    "consecutive_faults": replica.consecutive_faults,
                    "last_fault": replica.last_fault,
                }
                for replica in self._replicas
            ]
            return {
                "replicas": per_replica,
                "replica_count": len(self._replicas),
                "healthy_count": sum(1 for r in self._replicas if r.healthy),
                "hedges": self._hedges.value,
                "hedge_wins": self._hedge_wins.value,
                "failovers": self._failovers.value,
                "swaps": self._swaps.value,
                "config": {
                    "hedge_after_ms": (
                        None if self._hedge_after is None else self._hedge_after * 1000.0
                    ),
                    "max_consecutive_faults": self._max_consecutive_faults,
                    "probe_after": self._probe_after,
                },
            }

    def metrics_samples(self) -> List[MetricSample]:
        """Set-wide counters plus every replica engine's metrics.

        Engine samples are tagged ``replica="<ordinal>"`` so the merged
        ``/metrics`` exposition keeps the per-copy series apart (the same
        metric name appears once per replica, one label per series).
        """
        samples = self._metrics.collect()
        with self._lock:
            engines = [
                (replica.ordinal, replica.engine) for replica in self._replicas
            ]
        for ordinal, engine in engines:
            collect = getattr(engine, "metrics_samples", None)
            if callable(collect):
                engine_samples = collect()
            else:
                cache = getattr(engine, "cache", None)
                metrics = getattr(cache, "metrics", None)
                engine_samples = metrics.collect() if metrics is not None else []
            label = (("replica", str(ordinal)),)
            samples.extend(
                dataclasses.replace(sample, labels=label + sample.labels)
                for sample in engine_samples
            )
        return samples

    # -- routing ------------------------------------------------------------------
    def _pick_locked(self, exclude: Sequence[_Replica]) -> _Replica:
        """Least-loaded routable replica (caller holds ``_lock``).

        An unhealthy replica becomes *probe-due* once ``probe_after``
        routing decisions have passed since it went unhealthy; probe-due
        replicas take priority for one batch, so a recovered copy rejoins
        the rotation without an operator touching it.
        """
        excluded = set(id(replica) for replica in exclude)
        available = [
            replica for replica in self._replicas if id(replica) not in excluded
        ]
        healthy = [replica for replica in available if replica.healthy]
        probe_due = [
            replica
            for replica in available
            if not replica.healthy
            and replica.dispatches_since_unhealthy >= self._probe_after
        ]
        pool = probe_due if probe_due else healthy
        if not pool:
            # Nothing routable.  Unhealthy replicas still edge toward their
            # probe window, so a fully-unhealthy set can recover instead of
            # rejecting forever.
            for replica in available:
                if not replica.healthy:
                    replica.dispatches_since_unhealthy += 1
            raise NoHealthyReplicaError(
                "no healthy replica available to dispatch to "
                f"({len(self._replicas)} total, "
                f"{len(self._replicas) - len(available)} excluded)"
            )
        choice = min(pool, key=lambda replica: (replica.in_flight, replica.ordinal))
        choice.in_flight += 1
        choice.dispatches += 1
        for replica in self._replicas:
            if not replica.healthy and replica is not choice:
                replica.dispatches_since_unhealthy += 1
        return choice

    def _acquire(self, exclude: Sequence[_Replica]) -> _Replica:
        with self._lock:
            if self._closed:
                raise ValidationError("ReplicaSet is closed")
            return self._pick_locked(exclude)

    def _release(self, replica: _Replica, error: Optional[BaseException]) -> None:
        with self._lock:
            replica.in_flight -= 1
            if error is None:
                replica.consecutive_faults = 0
                if not replica.healthy:
                    replica.healthy = True
                    replica.dispatches_since_unhealthy = 0
            elif not isinstance(error, REQUEST_ERRORS):
                replica.faults += 1
                replica.consecutive_faults += 1
                replica.last_fault = f"{type(error).__name__}: {error}"
                if replica.consecutive_faults >= self._max_consecutive_faults:
                    replica.healthy = False
                    replica.dispatches_since_unhealthy = 0
            self._drained.notify_all()

    def _evaluate_on(
        self, replica: _Replica, requests: Sequence[SearchRequest]
    ) -> List[SearchResult]:
        """Run one batch on one replica, materializing every result.

        Materialization happens *here* — on the dispatching thread — so
        in-flight accounting, hedging and health observe the real work.
        Per-request evaluation errors are left inside the lazy result
        (touching it re-raises for the caller, matching the service's
        per-request error isolation); only infrastructure errors escape
        and are handled by the failover path.
        """
        error: Optional[BaseException] = None
        try:
            # The replica-call fault site fires inside the accounting: an
            # injected error counts a fault against this replica and takes
            # the ordinary failover path, exactly like a real dispatch
            # failure would.
            fire(SITE_REPLICA_CALL)
            results = replica.engine.search_many(requests)
            for result in results:
                try:
                    result.matches
                except REQUEST_ERRORS:
                    continue  # the caller's own error; re-raised when touched
            return results
        except BaseException as failure:
            error = failure
            raise
        finally:
            self._release(replica, error)

    def _hedge_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            executor = self._executor
            if executor is None:
                executor = ThreadPoolExecutor(
                    max_workers=max(4, 2 * len(self._replicas)),
                    thread_name_prefix="repro-replica",
                )
                self._executor = executor
            return executor

    def search_many(
        self, requests: Sequence[Union[SearchRequest, str]]
    ) -> List[SearchResult]:
        """Answer one batch through the routing policy.

        The batch goes to the least-loaded healthy replica; an
        infrastructure fault fails over to the next one (every replica
        tried at most once), and with hedging enabled a slow primary races
        a duplicate on a second replica.  Answers are byte-identical to a
        single replica's — the copies index the same data.
        """
        normalized = [SearchRequest.coerce(request) for request in requests]
        attempts: List[_Replica] = []
        total = self.replica_count
        while True:
            replica = self._acquire(exclude=attempts)
            attempts.append(replica)
            try:
                if self._hedge_after is None or total - len(attempts) < 1:
                    return self._evaluate_on(replica, normalized)
                return self._search_hedged(replica, normalized, attempts)
            except REQUEST_ERRORS:
                raise
            except NoHealthyReplicaError:
                raise
            except BaseException as failure:  # noqa: BLE001 — failover boundary
                self._failovers.inc()
                if len(attempts) >= total:
                    raise failure  # every replica tried; surface the last fault

    def _search_hedged(
        self,
        primary: _Replica,
        requests: List[SearchRequest],
        attempts: List[_Replica],
    ) -> List[SearchResult]:
        """Race ``primary`` against a delayed hedge on another replica.

        The primary runs on the hedge executor so this thread can arm the
        timer; if the delay passes, the next least-loaded replica gets the
        same batch and the first successful completion wins.  The loser
        runs to completion on its executor thread (its in-flight
        accounting resolves in ``_evaluate_on``) — answers are identical,
        so nothing observes which replica won except the stats.
        """
        executor = self._hedge_executor()
        assert self._hedge_after is not None  # caller checked
        futures: List["Future[List[SearchResult]]"] = [
            executor.submit(self._evaluate_on, primary, requests)
        ]
        hedged = False
        deadline = time.monotonic() + self._hedge_after
        while True:
            timeout: Optional[float] = None
            if not hedged:
                timeout = max(0.0, deadline - time.monotonic())
            done, pending = wait(futures, timeout=timeout, return_when=FIRST_COMPLETED)
            for future in done:
                error = future.exception()
                if error is None:
                    if hedged and futures.index(future) > 0:
                        self._hedge_wins.inc()
                    return future.result()
                if isinstance(error, REQUEST_ERRORS):
                    future.result()  # re-raises the caller's own error
            if done and not pending:
                # Every racer failed with an infrastructure error: re-raise
                # the primary's so search_many's failover picks a fresh replica.
                futures[0].result()
            if not hedged:
                # The delay elapsed with the primary still running: hedge.
                try:
                    hedge = self._acquire(exclude=attempts)
                except (NoHealthyReplicaError, ValidationError):
                    hedged = True  # nobody to hedge to; keep waiting
                    continue
                attempts.append(hedge)
                self._hedges.inc()
                futures.append(executor.submit(self._evaluate_on, hedge, requests))
                hedged = True

    # -- swap / lifecycle ---------------------------------------------------------
    def swap(
        self,
        build: Callable[[int], Any],
        *,
        drain_timeout: Optional[float] = 30.0,
        close_old: bool = True,
    ) -> List[Any]:
        """Replace every replica's engine with zero downtime; returns the old ones.

        One slot at a time: ``build(slot)`` constructs the replacement
        (e.g. ``lambda slot: load_index(new_path, mmap=True)``), the slot
        is atomically repointed — new dispatches route to the new engine
        immediately, so capacity never drops below N − 1 — and the *old*
        replica object drains (its in-flight batches finish against the
        engine they captured) before being closed.  Closing releases the
        old engine's worker processes / thread pools
        (:meth:`repro.api.sharding.ShardedEngine.close`); engines without
        a ``close`` are simply dropped.  Engines whose result cache would
        otherwise go stale do not need a generation bump here — the whole
        engine (cache included) is replaced, which is the same guarantee
        ``Engine.replace_index`` provides in place.

        A slot that cannot drain within ``drain_timeout`` seconds raises
        :class:`~repro.exceptions.DrainTimeoutError` (a
        :class:`TimeoutError` subclass; 503 over the wire) — the already
        swapped slots keep their new engines, the stuck slot keeps serving
        its old in-flight batches.
        """
        if drain_timeout is not None and drain_timeout <= 0:
            raise ValidationError(
                f"drain_timeout must be positive (or None), got {drain_timeout}"
            )
        previous: List[Any] = []
        for slot in range(self.replica_count):
            fresh = build(slot)
            with self._lock:
                if self._closed:
                    raise ValidationError("ReplicaSet is closed")
                old = self._replicas[slot]
                self._replicas[slot] = _Replica(fresh.engine if isinstance(fresh, _Replica) else fresh, slot)
                self._swaps.inc()
            self._drain(old, drain_timeout)
            if close_old:
                closer = getattr(old.engine, "close", None)
                if callable(closer):
                    closer()
            previous.append(old.engine)
        return previous

    def _drain(self, replica: _Replica, timeout: Optional[float]) -> None:
        """Wait until ``replica`` has no batch in flight."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while replica.in_flight > 0:
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise DrainTimeoutError(
                            f"replica {replica.ordinal} still has "
                            f"{replica.in_flight} batch(es) in flight after "
                            f"{timeout}s drain timeout"
                        )
                self._drained.wait(timeout=remaining)

    def close(self, *, close_engines: bool = True) -> None:
        """Shut the routing executor down and (by default) close every engine."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
            replicas = list(self._replicas)
        if executor is not None:
            executor.shutdown(wait=True)
        if close_engines:
            for replica in replicas:
                closer = getattr(replica.engine, "close", None)
                if callable(closer):
                    closer()

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
