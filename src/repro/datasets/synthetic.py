"""Synthetic uncertain-string workloads following the paper's recipe (Section 8.1).

The paper builds its probabilistic dataset from clean protein strings:

    "For each string s in the dataset we first obtain a set A(s) of strings
    that are within edit distance 4 to s.  Then a character-level
    probabilistic string S for string s is generated such that, for a
    position i, the pdf of S[i] is based on the normalized frequencies of
    the letters in the i-th position of all the strings in A(s).  We denote
    by θ the fraction of uncertain characters in the string [...] The average
    number of choices that each probabilistic character S[i] may have is set
    to 5."

This module reproduces that recipe with one simplification: instead of
materializing the full edit-distance-4 neighborhood (exponentially large),
it samples a configurable number of substitution-only neighbors per string
and derives each uncertain position's pdf from the letter frequencies across
the sampled neighborhood — the same normalized-frequency construction, with
the original character dominant and ≈5 choices per uncertain position.  θ is
controlled exactly by choosing which positions receive a neighborhood-based
pdf (the rest stay certain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ValidationError
from ..strings.alphabet import PROTEIN_SYMBOLS
from ..strings.collection import UncertainStringCollection
from ..strings.uncertain import UncertainString
from .protein import generate_protein_sequence, split_into_fragments


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the paper's synthetic uncertain-string generator.

    Attributes
    ----------
    theta:
        Fraction of uncertain positions (the paper's θ, 0.1–0.5).
    neighborhood_size:
        Number of sampled edit-neighborhood strings used to derive pdfs.
    max_edits:
        Maximum number of substitutions applied to create one neighbor
        (the paper uses edit distance 4).
    average_choices:
        Target number of characters per uncertain position (paper: 5).
    alphabet:
        Symbols the strings are drawn from.
    """

    theta: float = 0.3
    neighborhood_size: int = 20
    max_edits: int = 4
    average_choices: int = 5
    alphabet: Sequence[str] = PROTEIN_SYMBOLS

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta <= 1.0:
            raise ValidationError(f"theta must lie in [0, 1], got {self.theta}")
        if self.neighborhood_size <= 0:
            raise ValidationError("neighborhood_size must be positive")
        if self.max_edits < 0:
            raise ValidationError("max_edits must be non-negative")
        if self.average_choices < 2:
            raise ValidationError("average_choices must be at least 2")


def _position_distribution(
    original: str,
    alphabet: np.ndarray,
    rng: np.random.Generator,
    config: SyntheticConfig,
) -> Dict[str, float]:
    """Derive one uncertain position's pdf from a sampled neighborhood.

    Each sampled neighbor either keeps the original character or substitutes
    a random alternative; the pdf is the normalized frequency of the
    characters observed at this position, truncated to approximately
    ``average_choices`` characters.
    """
    # Number of alternative characters for this position: 2 .. 2*avg-2,
    # averaging out at `average_choices` (minus the original).
    spread = max(1, config.average_choices - 1)
    alternative_count = int(rng.integers(1, 2 * spread)) if spread > 1 else 1
    alternative_count = min(alternative_count, len(alphabet) - 1)
    alternatives = rng.choice(
        alphabet[alphabet != original], size=alternative_count, replace=False
    )

    counts: Dict[str, int] = {original: 0}
    for alternative in alternatives:
        counts[str(alternative)] = 0
    # Simulate the neighborhood: each neighbor keeps the original character
    # unless one of its (at most max_edits) substitutions landed here.
    substitution_rate = min(0.9, config.max_edits / max(config.max_edits, 8))
    for _ in range(config.neighborhood_size):
        if rng.random() < substitution_rate:
            choice = str(rng.choice(alternatives))
            counts[choice] += 1
        else:
            counts[original] += 1
    # The original string itself belongs to A(s).
    counts[original] += 1
    total = sum(counts.values())
    distribution = {
        character: count / total for character, count in counts.items() if count > 0
    }
    if len(distribution) == 1:
        # Degenerate sample (every neighbor kept the original): force one
        # alternative with a small probability so the position is uncertain.
        alternative = str(alternatives[0])
        distribution = {original: (total - 1) / total, alternative: 1 / total}
    return distribution


def generate_uncertain_string(
    length: int,
    *,
    theta: float = 0.3,
    seed: Optional[int] = None,
    config: Optional[SyntheticConfig] = None,
    base_sequence: Optional[str] = None,
) -> UncertainString:
    """Generate one uncertain string of ``length`` positions.

    Parameters
    ----------
    length:
        Number of positions (the paper's ``n``).
    theta:
        Fraction of uncertain positions; ignored when ``config`` is given.
    seed:
        RNG seed for reproducibility.
    config:
        Full :class:`SyntheticConfig`; built from ``theta`` when omitted.
    base_sequence:
        Deterministic backbone to derive the uncertain string from; a
        protein-like sequence is generated when omitted.

    Examples
    --------
    >>> s = generate_uncertain_string(100, theta=0.2, seed=1)
    >>> len(s)
    100
    >>> abs(s.uncertainty_fraction - 0.2) < 0.05
    True
    """
    if length <= 0:
        raise ValidationError(f"length must be positive, got {length}")
    if config is None:
        config = SyntheticConfig(theta=theta)
    rng = np.random.default_rng(seed)
    if base_sequence is None:
        base_sequence = generate_protein_sequence(
            length, seed=int(rng.integers(0, 2**31 - 1))
        )
    if len(base_sequence) < length:
        raise ValidationError(
            f"base_sequence has {len(base_sequence)} characters, need {length}"
        )
    base_sequence = base_sequence[:length]
    alphabet = np.asarray(list(config.alphabet))

    uncertain_count = int(round(config.theta * length))
    uncertain_positions = set(
        rng.choice(length, size=uncertain_count, replace=False).tolist()
    )
    rows: List[Dict[str, float]] = []
    for position, character in enumerate(base_sequence):
        if position in uncertain_positions:
            rows.append(_position_distribution(character, alphabet, rng, config))
        else:
            rows.append({character: 1.0})
    return UncertainString.from_table(rows)


def generate_collection(
    total_positions: int,
    *,
    theta: float = 0.3,
    seed: Optional[int] = None,
    config: Optional[SyntheticConfig] = None,
    mean_length: float = 32.5,
    std_length: float = 5.0,
    min_length: int = 20,
    max_length: int = 45,
) -> UncertainStringCollection:
    """Generate a collection of uncertain strings with ``total_positions`` in total.

    Follows the paper's listing-experiment setup: a long protein-like
    sequence is broken into fragments whose lengths approximately follow a
    normal distribution within ``[20, 45]``, and each fragment becomes an
    uncertain string with uncertainty fraction θ.

    Examples
    --------
    >>> collection = generate_collection(500, theta=0.2, seed=3)
    >>> collection.total_positions >= 500
    True
    >>> all(20 <= len(doc) <= 45 + 20 for doc in collection)
    True
    """
    if total_positions <= 0:
        raise ValidationError(f"total_positions must be positive, got {total_positions}")
    if config is None:
        config = SyntheticConfig(theta=theta)
    rng = np.random.default_rng(seed)
    backbone = generate_protein_sequence(
        total_positions + max_length, seed=int(rng.integers(0, 2**31 - 1))
    )
    fragments = split_into_fragments(
        backbone[:total_positions],
        mean_length=mean_length,
        std_length=std_length,
        min_length=min_length,
        max_length=max_length,
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    documents = []
    for identifier, fragment in enumerate(fragments):
        documents.append(
            generate_uncertain_string(
                len(fragment),
                config=config,
                seed=int(rng.integers(0, 2**31 - 1)),
                base_sequence=fragment,
            )
        )
    return UncertainStringCollection(documents)
