"""Query workload generation for the experiments.

The paper evaluates with "a collection of query substrings" of several
lengths (10, 100, 500, 1000 for the scaling experiments; 5–25 for the
pattern-length experiment) issued against the indexed uncertain string with
thresholds τ ≥ τ_min.  Queries are extracted from the most likely
deterministic realization of the indexed string so that a reasonable share
of them actually matches above the threshold — querying random garbage would
measure only the suffix-range lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ValidationError
from ..strings.collection import UncertainStringCollection
from ..strings.uncertain import UncertainString


@dataclass(frozen=True)
class QueryWorkload:
    """A batch of query patterns plus the threshold they are issued with.

    Attributes
    ----------
    patterns:
        The deterministic query substrings.
    tau:
        Query-time probability threshold.
    """

    patterns: tuple
    tau: float

    def __len__(self) -> int:
        return len(self.patterns)


def extract_patterns(
    string: UncertainString,
    lengths: Sequence[int],
    *,
    per_length: int = 10,
    seed: Optional[int] = None,
) -> List[str]:
    """Extract query patterns from the most likely realization of ``string``.

    Parameters
    ----------
    string:
        The uncertain string queries will be issued against.
    lengths:
        Pattern lengths to extract; lengths exceeding the string are skipped.
    per_length:
        Number of patterns per length.
    seed:
        RNG seed.

    Returns
    -------
    list of str
        ``per_length`` patterns for every usable length, in length order.
    """
    if per_length <= 0:
        raise ValidationError(f"per_length must be positive, got {per_length}")
    rng = np.random.default_rng(seed)
    backbone = string.most_likely_string()
    patterns: List[str] = []
    for length in lengths:
        if length <= 0:
            raise ValidationError(f"pattern lengths must be positive, got {length}")
        if length > len(backbone):
            continue
        starts = rng.integers(0, len(backbone) - length + 1, size=per_length)
        patterns.extend(backbone[start : start + length] for start in starts)
    if not patterns:
        raise ValidationError(
            f"no usable pattern lengths in {list(lengths)!r} for a string of "
            f"length {len(backbone)}"
        )
    return patterns


def extract_collection_patterns(
    collection: UncertainStringCollection,
    lengths: Sequence[int],
    *,
    per_length: int = 10,
    seed: Optional[int] = None,
) -> List[str]:
    """Extract query patterns from random documents of a collection."""
    rng = np.random.default_rng(seed)
    patterns: List[str] = []
    document_lengths = np.asarray([len(document) for document in collection])
    for length in lengths:
        if length <= 0:
            raise ValidationError(f"pattern lengths must be positive, got {length}")
        usable = np.flatnonzero(document_lengths >= length)
        if len(usable) == 0:
            continue
        for _ in range(per_length):
            document = collection[int(rng.choice(usable))]
            backbone = document.most_likely_string()
            start = int(rng.integers(0, len(backbone) - length + 1))
            patterns.append(backbone[start : start + length])
    if not patterns:
        raise ValidationError(
            f"no document in the collection is long enough for lengths {list(lengths)!r}"
        )
    return patterns


def workload(
    patterns: Sequence[str],
    tau: float,
) -> QueryWorkload:
    """Bundle patterns and a threshold into a :class:`QueryWorkload`."""
    if not patterns:
        raise ValidationError("a workload needs at least one pattern")
    return QueryWorkload(patterns=tuple(patterns), tau=float(tau))


def threshold_grid(start: float, stop: float, count: int) -> List[float]:
    """Evenly spaced thresholds in ``[start, stop]`` (used for Figures 7b/8b)."""
    if count <= 0:
        raise ValidationError(f"count must be positive, got {count}")
    if not 0.0 < start <= stop <= 1.0:
        raise ValidationError(f"invalid threshold interval [{start}, {stop}]")
    return [float(value) for value in np.linspace(start, stop, count)]
