"""Synthetic protein-like sequences (stand-in for the paper's real dataset).

The paper's experiments use "a concatenated protein sequence of mouse and
human (alphabet size 22), broken arbitrarily into shorter strings"
(Section 8.1).  That corpus is not redistributable, so this module generates
deterministic sequences with the same statistical fingerprints that matter
to a suffix-array index:

* the 22-symbol amino-acid alphabet (20 standard residues + B/Z),
* realistic residue frequencies (Swiss-Prot background distribution), and
* local repetitiveness, injected by occasionally replaying a recent motif —
  real protein corpora contain many repeated domains, which is what makes
  suffix ranges non-trivial.

See DESIGN.md (substitution table) for why this preserves the evaluation's
behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ValidationError
from ..strings.alphabet import PROTEIN_SYMBOLS

#: Approximate Swiss-Prot amino-acid background frequencies, extended with
#: small masses for the ambiguity codes B and Z so all 22 symbols occur.
PROTEIN_FREQUENCIES = {
    "A": 0.0825, "C": 0.0137, "D": 0.0545, "E": 0.0675, "F": 0.0386,
    "G": 0.0707, "H": 0.0227, "I": 0.0596, "K": 0.0584, "L": 0.0966,
    "M": 0.0242, "N": 0.0406, "P": 0.0470, "Q": 0.0393, "R": 0.0553,
    "S": 0.0656, "T": 0.0534, "V": 0.0687, "W": 0.0108, "Y": 0.0292,
    "B": 0.0006, "Z": 0.0005,
}


def protein_frequency_vector(symbols: Sequence[str] = PROTEIN_SYMBOLS) -> np.ndarray:
    """Normalized residue-frequency vector aligned with ``symbols``."""
    weights = np.array([PROTEIN_FREQUENCIES.get(symbol, 0.001) for symbol in symbols])
    return weights / weights.sum()


def generate_protein_sequence(
    length: int,
    *,
    seed: Optional[int] = None,
    repeat_probability: float = 0.08,
    repeat_length_range: tuple = (6, 20),
    symbols: Sequence[str] = PROTEIN_SYMBOLS,
) -> str:
    """Generate one protein-like deterministic sequence.

    Parameters
    ----------
    length:
        Number of residues to generate.
    seed:
        Seed for the underlying numpy generator (``None`` for entropy).
    repeat_probability:
        Per-step probability of replaying a recently generated motif,
        giving the sequence protein-like repetitiveness.
    repeat_length_range:
        Inclusive ``(low, high)`` bounds of replayed motif lengths.
    symbols:
        Alphabet to draw residues from.

    Examples
    --------
    >>> sequence = generate_protein_sequence(50, seed=7)
    >>> len(sequence)
    50
    >>> set(sequence) <= set(PROTEIN_SYMBOLS)
    True
    """
    if length <= 0:
        raise ValidationError(f"sequence length must be positive, got {length}")
    rng = np.random.default_rng(seed)
    frequencies = protein_frequency_vector(symbols)
    symbol_array = np.asarray(list(symbols))
    low, high = repeat_length_range
    if low <= 0 or high < low:
        raise ValidationError(
            f"repeat_length_range must be a positive increasing pair, got {repeat_length_range}"
        )

    pieces: List[str] = []
    produced = 0
    while produced < length:
        if produced > high and rng.random() < repeat_probability:
            # Replay a motif from the recent past (protein domain repetition).
            motif_length = int(rng.integers(low, high + 1))
            start = int(rng.integers(0, produced - motif_length + 1))
            existing = "".join(pieces)
            motif = existing[start : start + motif_length]
            pieces.append(motif)
            produced += len(motif)
        else:
            burst = int(min(length - produced, rng.integers(20, 80)))
            draw = rng.choice(symbol_array, size=burst, p=frequencies)
            pieces.append("".join(draw))
            produced += burst
    return "".join(pieces)[:length]


def split_into_fragments(
    sequence: str,
    *,
    mean_length: float = 32.5,
    std_length: float = 5.0,
    min_length: int = 20,
    max_length: int = 45,
    seed: Optional[int] = None,
) -> List[str]:
    """Break a sequence into fragments with ~N(mean, std) lengths in [min, max].

    Mirrors the paper's dataset preparation: "we break it arbitrarily into
    shorter strings [whose] length distributions follow approximately a
    normal distribution in the range of [20, 45]".
    """
    if not sequence:
        raise ValidationError("cannot split an empty sequence")
    if min_length <= 0 or max_length < min_length:
        raise ValidationError(
            f"invalid fragment bounds [{min_length}, {max_length}]"
        )
    rng = np.random.default_rng(seed)
    fragments: List[str] = []
    cursor = 0
    while cursor < len(sequence):
        target = int(round(rng.normal(mean_length, std_length)))
        target = max(min_length, min(max_length, target))
        fragment = sequence[cursor : cursor + target]
        if len(fragment) < min_length and fragments:
            # Attach a too-short tail to the previous fragment instead of
            # emitting a fragment below the minimum length.
            fragments[-1] += fragment
        else:
            fragments.append(fragment)
        cursor += target
    return fragments
