"""Dataset and workload generators reproducing the paper's Section 8.1 setup."""

from .protein import (
    PROTEIN_FREQUENCIES,
    generate_protein_sequence,
    protein_frequency_vector,
    split_into_fragments,
)
from .queries import (
    QueryWorkload,
    extract_collection_patterns,
    extract_patterns,
    threshold_grid,
    workload,
)
from .synthetic import SyntheticConfig, generate_collection, generate_uncertain_string

__all__ = [
    "PROTEIN_FREQUENCIES",
    "QueryWorkload",
    "SyntheticConfig",
    "extract_collection_patterns",
    "extract_patterns",
    "generate_collection",
    "generate_protein_sequence",
    "generate_uncertain_string",
    "protein_frequency_vector",
    "split_into_fragments",
    "threshold_grid",
    "workload",
]
