"""Workload construction (and caching) for the benchmark experiments.

Building an index over a freshly generated uncertain string is by far the
most expensive part of an experiment, and the paper's figures reuse the same
string/index across many query-time measurements.  This module provides
memoized builders so that each (n, θ, τ_min) combination is generated and
indexed exactly once per process, both for the `python -m repro.bench` CLI
and for the pytest-benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..api.engine import Engine, build_index
from ..core.general_index import GeneralUncertainStringIndex
from ..core.listing import UncertainStringListingIndex
from ..datasets.queries import extract_collection_patterns, extract_patterns
from ..datasets.synthetic import generate_collection, generate_uncertain_string
from ..strings.collection import UncertainStringCollection
from ..strings.uncertain import UncertainString

#: Seed shared by every workload so runs are reproducible.
DEFAULT_SEED = 20160315


@dataclass(frozen=True)
class SubstringWorkload:
    """A built substring-search workload: the string, its index and queries.

    ``engine`` wraps ``index`` behind the :mod:`repro.api` façade so
    experiments can exercise the batch path; ``index`` stays exposed for
    variant-specific measurements.
    """

    string: UncertainString
    index: GeneralUncertainStringIndex
    patterns: Tuple[str, ...]
    theta: float
    tau_min: float
    engine: Engine


@dataclass(frozen=True)
class ListingWorkload:
    """A built string-listing workload: the collection, its index and queries."""

    collection: UncertainStringCollection
    index: UncertainStringListingIndex
    patterns: Tuple[str, ...]
    theta: float
    tau_min: float
    engine: Engine


_STRING_CACHE: Dict[Tuple, UncertainString] = {}
_COLLECTION_CACHE: Dict[Tuple, UncertainStringCollection] = {}
_SUBSTRING_INDEX_CACHE: Dict[Tuple, Engine] = {}
_LISTING_INDEX_CACHE: Dict[Tuple, Engine] = {}


def clear_caches() -> None:
    """Drop every cached workload (used by tests and long CLI runs)."""
    _STRING_CACHE.clear()
    _COLLECTION_CACHE.clear()
    _SUBSTRING_INDEX_CACHE.clear()
    _LISTING_INDEX_CACHE.clear()


def cached_uncertain_string(n: int, theta: float, *, seed: int = DEFAULT_SEED) -> UncertainString:
    """Generate (or reuse) the uncertain string for one (n, θ) cell."""
    key = (n, round(theta, 6), seed)
    if key not in _STRING_CACHE:
        _STRING_CACHE[key] = generate_uncertain_string(n, theta=theta, seed=seed + n)
    return _STRING_CACHE[key]


def cached_collection(
    total_positions: int, theta: float, *, seed: int = DEFAULT_SEED
) -> UncertainStringCollection:
    """Generate (or reuse) the collection for one (n, θ) cell."""
    key = (total_positions, round(theta, 6), seed)
    if key not in _COLLECTION_CACHE:
        _COLLECTION_CACHE[key] = generate_collection(
            total_positions, theta=theta, seed=seed + total_positions
        )
    return _COLLECTION_CACHE[key]


def substring_workload(
    n: int,
    theta: float,
    *,
    tau_min: float = 0.1,
    query_lengths: Tuple[int, ...] = (10, 100, 500, 1000),
    patterns_per_length: int = 5,
    seed: int = DEFAULT_SEED,
) -> SubstringWorkload:
    """Build (or reuse) the substring-search workload for one experiment cell.

    The query patterns are extracted from the string's most likely
    realization at the requested lengths, mirroring the paper's mixed-length
    query batches (Section 8.2 averages over lengths 10/100/500/1000).

    The expensive part — the index — is cached per (n, θ, τ_min); pattern
    extraction is cheap and performed on every call so different panels can
    request different query lengths without rebuilding anything.
    """
    string = cached_uncertain_string(n, theta, seed=seed)
    index_key = (n, round(theta, 6), round(tau_min, 6), seed)
    if index_key not in _SUBSTRING_INDEX_CACHE:
        # Build through the façade (explicit kind: the experiments measure
        # the general index regardless of the planner's space heuristics).
        _SUBSTRING_INDEX_CACHE[index_key] = build_index(
            string, tau_min=tau_min, kind="general"
        )
    engine = _SUBSTRING_INDEX_CACHE[index_key]
    index = engine.index
    usable_lengths = [length for length in query_lengths if length <= n]
    patterns = extract_patterns(
        string, usable_lengths, per_length=patterns_per_length, seed=seed
    )
    return SubstringWorkload(
        string=string,
        index=index,
        patterns=tuple(patterns),
        theta=theta,
        tau_min=tau_min,
        engine=engine,
    )


def listing_workload(
    total_positions: int,
    theta: float,
    *,
    tau_min: float = 0.1,
    query_lengths: Tuple[int, ...] = (5, 10, 15),
    patterns_per_length: int = 5,
    metric: str = "max",
    seed: int = DEFAULT_SEED,
) -> ListingWorkload:
    """Build (or reuse) the string-listing workload for one experiment cell.

    Collection documents follow the paper's 20–45 position length
    distribution, so listing query lengths stay below the document lengths.
    The index is cached per (n, θ, τ_min, metric); patterns are regenerated
    on every call.
    """
    collection = cached_collection(total_positions, theta, seed=seed)
    index_key = (total_positions, round(theta, 6), round(tau_min, 6), metric, seed)
    if index_key not in _LISTING_INDEX_CACHE:
        _LISTING_INDEX_CACHE[index_key] = build_index(
            collection, tau_min=tau_min, metric=metric
        )
    engine = _LISTING_INDEX_CACHE[index_key]
    index = engine.index
    patterns = extract_collection_patterns(
        collection, query_lengths, per_length=patterns_per_length, seed=seed
    )
    return ListingWorkload(
        collection=collection,
        index=index,
        patterns=tuple(patterns),
        theta=theta,
        tau_min=tau_min,
        engine=engine,
    )
