"""Per-figure experiment generators (paper Section 8).

Every panel of Figures 7, 8 and 9 has a generator here that produces a
:class:`~repro.bench.harness.FigureTable` with one series per uncertainty
fraction θ, matching the paper's plots:

========  =====================================================================
fig7a–d   substring-search query time vs n, τ, τ_min and pattern length m
fig8a–d   string-listing query time vs the same four parameters
fig9a–c   index construction time vs n and τ_min, and index space vs n
========  =====================================================================

Additional ablation experiments (not figures in the paper but motivated by
its discussion) compare the efficient index against the simple scanning
index and the index-free online matcher, the two RMQ implementations, and
the exact vs approximate index.

Sizes are configurable through :class:`ExperimentScale`.  The paper runs up
to n = 300K positions on a C++ implementation; the default scale here tops
out at tens of thousands of positions so a pure-Python run finishes in
minutes — the *shape* of every curve (what grows, what stays flat, who wins)
is preserved and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.approximate import ApproximateSubstringIndex
from ..core.baseline import OnlineDynamicProgrammingMatcher
from ..core.factors import transform_uncertain_string
from ..core.simple_index import SimpleSpecialIndex
from ..core.general_index import GeneralUncertainStringIndex
from ..suffix.rmq import BlockRMQ, SparseTableRMQ
from .harness import FigureTable, Series, time_callable, time_query_batch
from .workloads import (
    cached_uncertain_string,
    listing_workload,
    substring_workload,
)


@dataclass(frozen=True)
class ExperimentScale:
    """Parameter grids for one benchmark run.

    The ``small`` scale is what the test-suite and CI exercise; ``default``
    reproduces every figure at laptop-friendly sizes; ``large`` pushes the
    string sizes up for closer comparison with the paper's axes.
    """

    name: str
    string_sizes: Tuple[int, ...]
    collection_sizes: Tuple[int, ...]
    thetas: Tuple[float, ...]
    tau_min: float
    tau: float
    tau_grid: Tuple[float, ...]
    tau_min_grid: Tuple[float, ...]
    pattern_lengths: Tuple[int, ...]
    mixed_query_lengths: Tuple[int, ...]
    listing_query_lengths: Tuple[int, ...]
    patterns_per_length: int
    fixed_string_size: int
    fixed_collection_size: int
    tau_min_panel_size: int
    query_repeats: int
    #: Reported-occurrence counts exercised by the ``query-kernel``
    #: experiment (scalar vs vectorized reporting throughput).
    kernel_occ_targets: Tuple[int, ...] = (100, 10_000)
    #: Worker counts exercised by the ``shard-build`` experiment.
    shard_build_workers: Tuple[int, ...] = (1, 2, 4)
    #: Replica counts exercised by the ``network-serving`` experiment.
    serving_replica_counts: Tuple[int, ...] = (1, 2, 4)


SMALL_SCALE = ExperimentScale(
    name="small",
    string_sizes=(500, 1000),
    collection_sizes=(500, 1000),
    thetas=(0.1, 0.3),
    tau_min=0.1,
    tau=0.2,
    tau_grid=(0.10, 0.12, 0.15),
    tau_min_grid=(0.10, 0.20),
    pattern_lengths=(4, 8, 12),
    mixed_query_lengths=(5, 10, 20),
    listing_query_lengths=(4, 8),
    patterns_per_length=3,
    fixed_string_size=1000,
    fixed_collection_size=1000,
    tau_min_panel_size=500,
    query_repeats=1,
    kernel_occ_targets=(100, 1000),
    shard_build_workers=(1, 2),
    serving_replica_counts=(1, 2),
)

DEFAULT_SCALE = ExperimentScale(
    name="default",
    string_sizes=(2000, 4000, 8000, 16000),
    collection_sizes=(2000, 4000, 8000, 16000),
    thetas=(0.1, 0.2, 0.3, 0.4),
    tau_min=0.1,
    tau=0.2,
    tau_grid=(0.10, 0.11, 0.12, 0.13, 0.14, 0.15),
    tau_min_grid=(0.05, 0.10, 0.15, 0.20),
    pattern_lengths=(5, 10, 15, 20, 25),
    mixed_query_lengths=(10, 100, 500, 1000),
    listing_query_lengths=(5, 10, 15),
    patterns_per_length=5,
    fixed_string_size=8000,
    fixed_collection_size=8000,
    tau_min_panel_size=4000,
    query_repeats=3,
    kernel_occ_targets=(100, 10_000, 1_000_000),
    shard_build_workers=(1, 2, 4),
)

LARGE_SCALE = ExperimentScale(
    name="large",
    string_sizes=(4000, 8000, 16000, 32000, 64000),
    collection_sizes=(4000, 8000, 16000, 32000, 64000),
    thetas=(0.1, 0.2, 0.3, 0.4),
    tau_min=0.1,
    tau=0.2,
    tau_grid=(0.10, 0.11, 0.12, 0.13, 0.14, 0.15),
    tau_min_grid=(0.04, 0.08, 0.12, 0.16, 0.20),
    pattern_lengths=(5, 10, 15, 20, 25),
    mixed_query_lengths=(10, 100, 500, 1000),
    listing_query_lengths=(5, 10, 15),
    patterns_per_length=5,
    fixed_string_size=16000,
    fixed_collection_size=16000,
    tau_min_panel_size=8000,
    query_repeats=3,
    kernel_occ_targets=(100, 10_000, 1_000_000),
    shard_build_workers=(1, 2, 4),
)

SCALES: Dict[str, ExperimentScale] = {
    "small": SMALL_SCALE,
    "default": DEFAULT_SCALE,
    "large": LARGE_SCALE,
}


def _theta_label(theta: float) -> str:
    return f"theta={theta:g}"


# ---------------------------------------------------------------------------
# Figure 7 — substring-search query time
# ---------------------------------------------------------------------------
def figure_7a(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Fig. 7(a): substring-search query time vs string size n."""
    table = FigureTable(
        figure_id="fig7a",
        title="Substring searching: query time vs string size",
        x_label="n (positions)",
        y_label="avg query time (ms)",
        notes=f"tau_min={scale.tau_min}, tau={scale.tau}, "
        f"query lengths {scale.mixed_query_lengths}",
    )
    for theta in scale.thetas:
        series = Series(_theta_label(theta))
        for n in scale.string_sizes:
            work = substring_workload(
                n,
                theta,
                tau_min=scale.tau_min,
                query_lengths=scale.mixed_query_lengths,
                patterns_per_length=scale.patterns_per_length,
            )
            series.add(
                n,
                time_query_batch(
                    work.index.query, work.patterns, scale.tau, repeats=scale.query_repeats
                ),
            )
        table.series.append(series)
    return table


def figure_7b(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Fig. 7(b): substring-search query time vs query threshold τ."""
    table = FigureTable(
        figure_id="fig7b",
        title="Substring searching: query time vs query threshold",
        x_label="tau",
        y_label="avg query time (ms)",
        notes=f"n={scale.fixed_string_size}, tau_min={scale.tau_min}",
    )
    for theta in scale.thetas:
        series = Series(_theta_label(theta))
        work = substring_workload(
            scale.fixed_string_size,
            theta,
            tau_min=scale.tau_min,
            query_lengths=scale.mixed_query_lengths,
            patterns_per_length=scale.patterns_per_length,
        )
        for tau in scale.tau_grid:
            series.add(
                tau,
                time_query_batch(
                    work.index.query, work.patterns, tau, repeats=scale.query_repeats
                ),
            )
        table.series.append(series)
    return table


def figure_7c(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Fig. 7(c): substring-search query time vs construction threshold τ_min."""
    table = FigureTable(
        figure_id="fig7c",
        title="Substring searching: query time vs construction threshold",
        x_label="tau_min",
        y_label="avg query time (ms)",
        notes=f"n={scale.tau_min_panel_size}, tau=max(tau, tau_min)",
    )
    for theta in scale.thetas:
        series = Series(_theta_label(theta))
        for tau_min in scale.tau_min_grid:
            work = substring_workload(
                scale.tau_min_panel_size,
                theta,
                tau_min=tau_min,
                query_lengths=scale.mixed_query_lengths,
                patterns_per_length=scale.patterns_per_length,
            )
            tau = max(scale.tau, tau_min)
            series.add(
                tau_min,
                time_query_batch(
                    work.index.query, work.patterns, tau, repeats=scale.query_repeats
                ),
            )
        table.series.append(series)
    return table


def figure_7d(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Fig. 7(d): substring-search query time vs pattern length m."""
    table = FigureTable(
        figure_id="fig7d",
        title="Substring searching: query time vs pattern length",
        x_label="m (pattern length)",
        y_label="avg query time (ms)",
        notes=f"n={scale.fixed_string_size}, tau_min={scale.tau_min}, tau={scale.tau}",
    )
    for theta in scale.thetas:
        series = Series(_theta_label(theta))
        work = substring_workload(
            scale.fixed_string_size,
            theta,
            tau_min=scale.tau_min,
            query_lengths=scale.pattern_lengths,
            patterns_per_length=scale.patterns_per_length,
        )
        by_length: Dict[int, List[str]] = {}
        for pattern in work.patterns:
            by_length.setdefault(len(pattern), []).append(pattern)
        for length in scale.pattern_lengths:
            patterns = by_length.get(length)
            if not patterns:
                continue
            series.add(
                length,
                time_query_batch(
                    work.index.query, patterns, scale.tau, repeats=scale.query_repeats
                ),
            )
        table.series.append(series)
    return table


# ---------------------------------------------------------------------------
# Figure 8 — string-listing query time
# ---------------------------------------------------------------------------
def figure_8a(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Fig. 8(a): string-listing query time vs collection size n."""
    table = FigureTable(
        figure_id="fig8a",
        title="String listing: query time vs collection size",
        x_label="n (total positions)",
        y_label="avg query time (ms)",
        notes=f"tau_min={scale.tau_min}, tau={scale.tau}",
    )
    for theta in scale.thetas:
        series = Series(_theta_label(theta))
        for n in scale.collection_sizes:
            work = listing_workload(
                n,
                theta,
                tau_min=scale.tau_min,
                query_lengths=scale.listing_query_lengths,
                patterns_per_length=scale.patterns_per_length,
            )
            series.add(
                n,
                time_query_batch(
                    work.index.query, work.patterns, scale.tau, repeats=scale.query_repeats
                ),
            )
        table.series.append(series)
    return table


def figure_8b(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Fig. 8(b): string-listing query time vs query threshold τ."""
    table = FigureTable(
        figure_id="fig8b",
        title="String listing: query time vs query threshold",
        x_label="tau",
        y_label="avg query time (ms)",
        notes=f"n={scale.fixed_collection_size}, tau_min={scale.tau_min}",
    )
    for theta in scale.thetas:
        series = Series(_theta_label(theta))
        work = listing_workload(
            scale.fixed_collection_size,
            theta,
            tau_min=scale.tau_min,
            query_lengths=scale.listing_query_lengths,
            patterns_per_length=scale.patterns_per_length,
        )
        for tau in scale.tau_grid:
            series.add(
                tau,
                time_query_batch(
                    work.index.query, work.patterns, tau, repeats=scale.query_repeats
                ),
            )
        table.series.append(series)
    return table


def figure_8c(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Fig. 8(c): string-listing query time vs construction threshold τ_min."""
    table = FigureTable(
        figure_id="fig8c",
        title="String listing: query time vs construction threshold",
        x_label="tau_min",
        y_label="avg query time (ms)",
        notes=f"n={scale.tau_min_panel_size}",
    )
    for theta in scale.thetas:
        series = Series(_theta_label(theta))
        for tau_min in scale.tau_min_grid:
            work = listing_workload(
                scale.tau_min_panel_size,
                theta,
                tau_min=tau_min,
                query_lengths=scale.listing_query_lengths,
                patterns_per_length=scale.patterns_per_length,
            )
            tau = max(scale.tau, tau_min)
            series.add(
                tau_min,
                time_query_batch(
                    work.index.query, work.patterns, tau, repeats=scale.query_repeats
                ),
            )
        table.series.append(series)
    return table


def figure_8d(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Fig. 8(d): string-listing query time vs pattern length m."""
    table = FigureTable(
        figure_id="fig8d",
        title="String listing: query time vs pattern length",
        x_label="m (pattern length)",
        y_label="avg query time (ms)",
        notes=f"n={scale.fixed_collection_size}, tau_min={scale.tau_min}, tau={scale.tau}",
    )
    for theta in scale.thetas:
        series = Series(_theta_label(theta))
        work = listing_workload(
            scale.fixed_collection_size,
            theta,
            tau_min=scale.tau_min,
            query_lengths=scale.listing_query_lengths,
            patterns_per_length=scale.patterns_per_length,
        )
        by_length: Dict[int, List[str]] = {}
        for pattern in work.patterns:
            by_length.setdefault(len(pattern), []).append(pattern)
        for length in scale.listing_query_lengths:
            patterns = by_length.get(length)
            if not patterns:
                continue
            series.add(
                length,
                time_query_batch(
                    work.index.query, patterns, scale.tau, repeats=scale.query_repeats
                ),
            )
        table.series.append(series)
    return table


# ---------------------------------------------------------------------------
# Figure 9 — construction time and index space
# ---------------------------------------------------------------------------
def figure_9a(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Fig. 9(a): index construction time vs string size n."""
    table = FigureTable(
        figure_id="fig9a",
        title="Construction time vs string size",
        x_label="n (positions)",
        y_label="construction time (s)",
        notes=f"tau_min={scale.tau_min}",
    )
    for theta in scale.thetas:
        series = Series(_theta_label(theta))
        for n in scale.string_sizes:
            string = cached_uncertain_string(n, theta)
            elapsed = time_callable(
                lambda: GeneralUncertainStringIndex(string, tau_min=scale.tau_min)
            )
            series.add(n, elapsed)
        table.series.append(series)
    return table


def figure_9b(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Fig. 9(b): index construction time vs construction threshold τ_min."""
    table = FigureTable(
        figure_id="fig9b",
        title="Construction time vs construction threshold",
        x_label="tau_min",
        y_label="construction time (s)",
        notes=f"n={scale.tau_min_panel_size}",
    )
    for theta in scale.thetas:
        series = Series(_theta_label(theta))
        string = cached_uncertain_string(scale.tau_min_panel_size, theta)
        for tau_min in scale.tau_min_grid:
            elapsed = time_callable(
                lambda: GeneralUncertainStringIndex(string, tau_min=tau_min)
            )
            series.add(tau_min, elapsed)
        table.series.append(series)
    return table


def figure_9c(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Fig. 9(c): index space vs string size n."""
    table = FigureTable(
        figure_id="fig9c",
        title="Index space vs string size",
        x_label="n (positions)",
        y_label="index space (MB)",
        notes=f"tau_min={scale.tau_min}; measured bytes of every index component",
    )
    for theta in scale.thetas:
        series = Series(_theta_label(theta))
        for n in scale.string_sizes:
            work = substring_workload(
                n,
                theta,
                tau_min=scale.tau_min,
                query_lengths=scale.mixed_query_lengths,
                patterns_per_length=scale.patterns_per_length,
            )
            series.add(n, work.index.nbytes() / (1024.0 * 1024.0))
        table.series.append(series)
    return table


# ---------------------------------------------------------------------------
# Ablations (motivated by Sections 4.1/4.2, 8.7 and 7)
# ---------------------------------------------------------------------------
def ablation_index_variants(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Efficient RMQ index vs simple scanning index vs index-free matcher."""
    table = FigureTable(
        figure_id="ablation-variants",
        title="Query time: efficient index vs simple index vs online matcher",
        x_label="n (positions)",
        y_label="avg query time (ms)",
        notes=f"theta={scale.thetas[-1]}, tau_min={scale.tau_min}, tau={scale.tau}",
    )
    theta = scale.thetas[-1]
    efficient = Series("efficient (RMQ)")
    simple = Series("simple (scan)")
    online = Series("online DP (no index)")
    for n in scale.string_sizes:
        work = substring_workload(
            n,
            theta,
            tau_min=scale.tau_min,
            query_lengths=scale.mixed_query_lengths,
            patterns_per_length=scale.patterns_per_length,
        )
        transformed = work.index.transformed
        simple_index = SimpleSpecialIndex(transformed.to_special_string())
        matcher = OnlineDynamicProgrammingMatcher(work.string)
        efficient.add(
            n,
            time_query_batch(
                work.index.query, work.patterns, scale.tau, repeats=scale.query_repeats
            ),
        )
        simple.add(
            n, time_query_batch(simple_index.query, work.patterns, scale.tau)
        )
        online.add(n, time_query_batch(matcher.query, work.patterns, scale.tau))
    table.series.extend([efficient, simple, online])
    return table


def ablation_rmq(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Sparse-table RMQ vs block RMQ: query time and space."""
    import numpy as np

    table = FigureTable(
        figure_id="ablation-rmq",
        title="RMQ implementations: query time (ms per 1000 queries) and space (MB)",
        x_label="array size",
        y_label="see series label",
        notes="values drawn uniformly at random",
    )
    rng = np.random.default_rng(7)
    sparse_time = Series("sparse: time")
    block_time = Series("block: time")
    sparse_space = Series("sparse: space MB")
    block_space = Series("block: space MB")
    for size in scale.string_sizes:
        values = rng.random(size)
        sparse = SparseTableRMQ(values)
        block = BlockRMQ(values)
        queries = [
            (int(left), int(right))
            for left, right in zip(
                rng.integers(0, size, 1000), rng.integers(0, size, 1000)
            )
        ]
        queries = [(min(a, b), max(a, b)) for a, b in queries]

        def run(structure):
            def inner():
                for left, right in queries:
                    structure.query(left, right)

            return inner

        sparse_time.add(size, time_callable(run(sparse)) * 1000.0)
        block_time.add(size, time_callable(run(block)) * 1000.0)
        sparse_space.add(size, sparse.nbytes() / (1024.0 * 1024.0))
        block_space.add(size, block.nbytes() / (1024.0 * 1024.0))
    table.series.extend([sparse_time, block_time, sparse_space, block_space])
    return table


def ablation_approximate(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Exact general index vs approximate link index (query time)."""
    table = FigureTable(
        figure_id="ablation-approx",
        title="Exact vs approximate index: query time",
        x_label="n (positions)",
        y_label="avg query time (ms)",
        notes=f"theta={scale.thetas[0]}, tau_min={scale.tau_min}, tau={scale.tau}, epsilon=0.05",
    )
    theta = scale.thetas[0]
    exact = Series("exact (general index)")
    approximate = Series("approximate (links)")
    for n in scale.string_sizes:
        work = substring_workload(
            n,
            theta,
            tau_min=scale.tau_min,
            query_lengths=scale.mixed_query_lengths,
            patterns_per_length=scale.patterns_per_length,
        )
        approx_index = ApproximateSubstringIndex(
            work.string, tau_min=scale.tau_min, epsilon=0.05
        )
        exact.add(
            n,
            time_query_batch(
                work.index.query, work.patterns, scale.tau, repeats=scale.query_repeats
            ),
        )
        approximate.add(
            n, time_query_batch(approx_index.query, work.patterns, scale.tau)
        )
    table.series.extend([exact, approximate])
    return table


def ablation_transformation(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Transformed text size (the (1/τ_min)² · n bound) vs τ_min."""
    table = FigureTable(
        figure_id="ablation-transformation",
        title="Maximal-factor transformation size vs construction threshold",
        x_label="tau_min",
        y_label="expansion ratio N/n",
        notes=f"n={scale.tau_min_panel_size}",
    )
    for theta in scale.thetas:
        series = Series(_theta_label(theta))
        string = cached_uncertain_string(scale.tau_min_panel_size, theta)
        for tau_min in scale.tau_min_grid:
            transformed = transform_uncertain_string(string, tau_min)
            series.add(tau_min, transformed.expansion_ratio)
        table.series.append(series)
    return table


def ablation_batch_engine(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Engine batch path vs one-by-one queries (repro.api façade).

    Serving-shaped workload over the listing engine: each pattern is asked
    at every threshold of the scale's τ grid — ``search_many`` traverses
    the suffix range once per pattern at the lowest threshold and derives
    the tighter answers by filtering (refinement is exact on the listing
    index; see :mod:`repro.api.batch`).
    """
    from ..api.requests import SearchRequest

    table = FigureTable(
        figure_id="ablation-batch",
        title="Query time: engine.search_many vs one-by-one engine.search",
        x_label="collection positions",
        y_label="avg time per request (ms)",
        notes=(
            f"listing engine, theta={scale.thetas[-1]}, tau_min={scale.tau_min}, "
            f"each pattern queried at taus {scale.tau_grid}"
        ),
    )
    theta = scale.thetas[-1]
    one_by_one = Series("one-by-one")
    batched = Series("batched (search_many)")
    for n in scale.collection_sizes:
        work = listing_workload(
            n,
            theta,
            tau_min=scale.tau_min,
            query_lengths=scale.listing_query_lengths,
            patterns_per_length=scale.patterns_per_length,
        )
        engine = work.engine
        requests = [
            SearchRequest(pattern, tau=tau)
            for pattern in work.patterns
            for tau in scale.tau_grid
        ]

        def run_one_by_one() -> None:
            for request in requests:
                engine.search(request).count

        def run_batched() -> None:
            for result in engine.search_many(requests):
                result.count

        one_by_one.add(
            n,
            time_callable(run_one_by_one, repeats=scale.query_repeats)
            * 1000.0
            / len(requests),
        )
        batched.add(
            n,
            time_callable(run_batched, repeats=scale.query_repeats)
            * 1000.0
            / len(requests),
        )
    table.series.extend([one_by_one, batched])
    return table


def sharding_scaling(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Sharded fan-out + result cache on a repeated serving workload.

    Serving-shaped measurement over the general substring engine: the same
    batch of ``(pattern, tau)`` requests is replayed ``rounds`` times
    against a :class:`~repro.api.sharding.ShardedEngine` at increasing
    shard counts.  Three series per shard count:

    * cold ``search_many`` throughput — first round, every request a cache
      miss, per-shard evaluation fanned out on the thread pool;
    * warm throughput — the remaining rounds, answered from the LRU
      result cache without touching any shard;
    * the cache hit rate after all rounds (with ``rounds`` replays of the
      same workload the expected rate is ``(rounds - 1) / rounds``).
    """
    from ..api.requests import SearchRequest
    from ..api.sharding import build_sharded_index

    rounds = 10
    table = FigureTable(
        figure_id="sharding-scaling",
        title="ShardedEngine: search_many throughput and cache hit rate vs shards",
        x_label="shards",
        y_label="see series label",
        notes=(
            f"general engine, n={scale.fixed_string_size}, "
            f"theta={scale.thetas[-1]}, tau_min={scale.tau_min}, "
            f"workload replayed {rounds}x"
        ),
    )
    theta = scale.thetas[-1]
    work = substring_workload(
        scale.fixed_string_size,
        theta,
        tau_min=scale.tau_min,
        query_lengths=scale.pattern_lengths,
        patterns_per_length=scale.patterns_per_length,
    )
    requests = [
        SearchRequest(pattern, tau=tau)
        for pattern in work.patterns
        for tau in scale.tau_grid
    ]
    max_pattern_len = max(len(pattern) for pattern in work.patterns)

    cold = Series("cold search_many (req/s)")
    warm = Series("warm search_many (req/s)")
    hit_rate = Series("cache hit rate (%)")
    for shards in (1, 2, 4):
        engine = build_sharded_index(
            work.string,
            shards=shards,
            tau_min=scale.tau_min,
            kind="general",
            max_pattern_len=max_pattern_len,
        )

        def run_batch() -> None:
            for result in engine.search_many(requests):
                result.count

        cold.add(shards, len(requests) / max(time_callable(run_batch), 1e-9))
        warm_elapsed = time_callable(run_batch, repeats=rounds - 1)
        warm.add(shards, len(requests) / max(warm_elapsed, 1e-9))
        hit_rate.add(shards, 100.0 * engine.cache.stats()["hit_rate"])
        engine.close()
    table.series.extend([cold, warm, hit_rate])
    return table


def query_kernel(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Vectorized vs scalar reporting kernel: reported occurrences per second.

    Measures the tentpole of the vectorized query pipeline in isolation:
    :func:`~repro.core.base.report_above_threshold` (batched frontier over
    ``rmq.query_batch``) against
    :func:`~repro.core.base.report_above_threshold_scalar` (one Python-level
    RMQ probe per reported occurrence), on a random value array with the
    threshold chosen so that exactly ``occ`` entries are reported.
    """
    import numpy as np

    from ..core.base import report_above_threshold, report_above_threshold_scalar
    from ..suffix.rmq import SparseTableRMQ

    table = FigureTable(
        figure_id="query-kernel",
        title="Threshold reporting kernel: scalar vs vectorized throughput",
        x_label="occ (reported occurrences)",
        y_label="see series label",
        notes=(
            "SparseTableRMQ over uniform random values, full-range query, "
            "threshold set for exactly occ reported entries"
        ),
    )
    rng = np.random.default_rng(17)
    scalar_series = Series("scalar (occ/s)")
    vectorized_series = Series("vectorized (occ/s)")
    speedup_series = Series("speedup (x)")
    for occ in scale.kernel_occ_targets:
        n = max(occ + occ // 4, 64)
        values = rng.random(n)
        # Exactly `occ` entries sit strictly above the (occ+1)-th largest.
        threshold = float(np.partition(values, n - occ - 1)[n - occ - 1])
        rmq = SparseTableRMQ(values)
        # Sub-millisecond cells are noisy: warm up once (numpy dispatch,
        # allocator) and take several repeats below 100k occurrences.
        repeats = max(scale.query_repeats, 3) if occ < 100_000 else 1

        def run_scalar() -> None:
            for _ in report_above_threshold_scalar(rmq, values, 0, n - 1, threshold):
                pass

        def run_vectorized() -> None:
            report_above_threshold(rmq, values, 0, n - 1, threshold)

        reported = report_above_threshold(rmq, values, 0, n - 1, threshold)
        assert len(reported) == occ, (len(reported), occ)
        scalar_elapsed = time_callable(run_scalar, repeats=repeats, warmup=1)
        vectorized_elapsed = time_callable(run_vectorized, repeats=repeats, warmup=1)
        scalar_series.add(occ, occ / max(scalar_elapsed, 1e-12))
        vectorized_series.add(occ, occ / max(vectorized_elapsed, 1e-12))
        speedup_series.add(occ, scalar_elapsed / max(vectorized_elapsed, 1e-12))
    table.series.extend([scalar_series, vectorized_series, speedup_series])
    return table


def shard_build(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Sharded construction: process-pool workers vs serial build time.

    Builds the same 4-shard general-index ensemble at increasing
    ``workers`` counts (``build_sharded_index(..., workers=N)``) and
    reports wall-clock build time plus the speedup over ``workers=1``.
    Speedup tracks the machine's core count — a single-core runner reports
    ~1x (plus process spawn overhead), which is the honest number.
    """
    from ..api.sharding import build_sharded_index

    table = FigureTable(
        figure_id="shard-build",
        title="Sharded construction: build time vs process-pool workers",
        x_label="workers",
        y_label="see series label",
        notes=(
            f"general engine, n={scale.fixed_string_size}, "
            f"theta={scale.thetas[-1]}, tau_min={scale.tau_min}, 4 shards"
        ),
    )
    theta = scale.thetas[-1]
    string = cached_uncertain_string(scale.fixed_string_size, theta)
    build_time = Series("build time (s)")
    speedup = Series("speedup vs workers=1 (x)")
    serial_elapsed = None
    for workers in scale.shard_build_workers:
        elapsed = time_callable(
            lambda: build_sharded_index(
                string,
                shards=4,
                tau_min=scale.tau_min,
                kind="general",
                workers=workers,
            )
        )
        if serial_elapsed is None:
            serial_elapsed = elapsed
        build_time.add(workers, elapsed)
        speedup.add(workers, serial_elapsed / max(elapsed, 1e-12))
    table.series.extend([build_time, speedup])
    return table


def serving_throughput(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Coalesced async serving vs naive sequential, plus cold-start timings.

    Two serving questions per collection size, four series:

    * **QPS** — the same repeated-pattern request stream (every pattern
      asked at every threshold of the τ grid, replayed by 8 simulated
      users) answered (a) naively, one blocking ``engine.search`` per
      request, and (b) through :class:`~repro.serving.AsyncSearchService`,
      which coalesces the concurrent submissions into micro-batched
      ``search_many`` calls — deduplication and same-pattern threshold
      refinement amortize across the simulated users.  Result caching is
      disabled on both sides, so the gap measures *coalescing*, not cache
      hits.
    * **Cold start** — the same engine saved as a legacy version-1 archive
      (compressed, RMQ rebuilt on load) and as a version-2 archive
      (serialized RMQ payloads, loaded with ``mmap=True``): time for
      ``load_index`` to return a servable engine.
    """
    import asyncio
    import tempfile
    from pathlib import Path

    from ..api.engine import Engine, load_index
    from ..api.requests import SearchRequest
    from ..serving import AsyncSearchService

    users = 8
    table = FigureTable(
        figure_id="serving-throughput",
        title="AsyncSearchService: coalesced vs naive QPS, and cold-start time",
        x_label="collection positions",
        y_label="see series label",
        notes=(
            f"listing engine, theta={scale.thetas[-1]}, tau_min={scale.tau_min}, "
            f"each pattern at taus {scale.tau_grid}, {users} simulated users, "
            "caches disabled; cold start averaged over 2 loads"
        ),
    )
    theta = scale.thetas[-1]
    naive_series = Series("naive sequential (req/s)")
    coalesced_series = Series("coalesced service (req/s)")
    cold_v1_series = Series("cold start v1 rebuild (ms)")
    cold_v2_series = Series("cold start v2 mmap (ms)")
    for n in scale.collection_sizes:
        work = listing_workload(
            n,
            theta,
            tau_min=scale.tau_min,
            query_lengths=scale.listing_query_lengths,
            patterns_per_length=scale.patterns_per_length,
        )
        engine = Engine(work.engine.index, work.engine.plan, cache_size=0)
        patterns = work.patterns[: min(4, len(work.patterns))]
        requests = [
            SearchRequest(pattern, tau=tau)
            for _ in range(users)
            for pattern in patterns
            for tau in scale.tau_grid
        ]

        def run_naive() -> None:
            for request in requests:
                engine.search(request).count

        async def storm() -> None:
            async with AsyncSearchService(
                engine,
                max_wait_ms=2.0,
                max_batch=len(requests),
                max_pending=len(requests),
            ) as service:
                await asyncio.gather(*(service.submit(r) for r in requests))

        naive_elapsed = time_callable(run_naive, repeats=scale.query_repeats)
        coalesced_elapsed = time_callable(
            lambda: asyncio.run(storm()), repeats=scale.query_repeats
        )
        naive_series.add(n, len(requests) / max(naive_elapsed, 1e-9))
        coalesced_series.add(n, len(requests) / max(coalesced_elapsed, 1e-9))

        with tempfile.TemporaryDirectory() as scratch:
            v2_path = engine.save(Path(scratch) / "v2", version=2)
            v1_path = engine.save(Path(scratch) / "v1", version=1)
            cold_v1_series.add(
                n,
                1000.0
                * time_callable(lambda: load_index(v1_path), repeats=2, warmup=1),
            )
            cold_v2_series.add(
                n,
                1000.0
                * time_callable(
                    lambda: load_index(v2_path, mmap=True), repeats=2, warmup=1
                ),
            )
    table.series.extend(
        [naive_series, coalesced_series, cold_v1_series, cold_v2_series]
    )
    return table


def network_serving(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """The full network tier end to end: QPS and latency vs replica count.

    One engine is built, saved, and reopened as a
    :class:`~repro.serving.ReplicaSet` of N mmap-sharing copies for each N
    in ``scale.serving_replica_counts``; the set serves an
    :class:`~repro.serving.AsyncSearchService` behind a
    :class:`~repro.serving.SearchHttpApp`, driven by the seeded load
    generator over the **in-process transport** (the same closed-loop
    profile every time, so replica counts compare like for like and no
    socket noise enters the measurement).  Four series over replica count:
    QPS plus the p50/p95/p99 request latency.

    Honest single-core caveat (as with ``shard-build``): replica
    parallelism needs spare cores.  On a single-core runner the replicas
    share one CPU and whole-batch least-loaded dispatch does the same
    total work at every count, so the curves stay flat — the experiment
    then demonstrates that routing overhead is negligible, not that
    replicas speed anything up.  Result caches are disabled so QPS
    measures dispatch plus evaluation, not cache hits.
    """
    import asyncio
    import tempfile
    from pathlib import Path

    from ..api.engine import Engine
    from ..serving import AsyncSearchService, LoadProfile, ReplicaSet, SearchHttpApp
    from ..serving.loadgen import run_load

    concurrency = 8
    requests = 100 * scale.query_repeats
    table = FigureTable(
        figure_id="network-serving",
        title="HTTP serving tier: QPS and latency percentiles vs replica count",
        x_label="replicas",
        y_label="see series label",
        notes=(
            f"listing engine, theta={scale.thetas[-1]}, tau_min={scale.tau_min}, "
            f"n={scale.fixed_collection_size}; closed-loop load generator, "
            f"{requests} requests, concurrency {concurrency}, taus {scale.tau_grid}, "
            "in-process HTTP transport, caches disabled; replicas mmap one archive "
            "(flat curves on single-core runners: the copies share the CPU)"
        ),
    )
    theta = scale.thetas[-1]
    work = listing_workload(
        scale.fixed_collection_size,
        theta,
        tau_min=scale.tau_min,
        query_lengths=scale.listing_query_lengths,
        patterns_per_length=scale.patterns_per_length,
    )
    engine = Engine(work.engine.index, work.engine.plan, cache_size=0)
    patterns = tuple(work.patterns[: min(4, len(work.patterns))])
    profile = LoadProfile(
        patterns=patterns,
        taus=tuple(scale.tau_grid),
        requests=requests,
        concurrency=concurrency,
        seed=20160315,
    )

    async def drive(replicas: ReplicaSet) -> "dict":
        async with AsyncSearchService(
            replicas, max_wait_ms=1.0, max_batch=concurrency, max_pending=4 * concurrency
        ) as service:
            report = await run_load(SearchHttpApp(service).dispatch, profile)
        return report.to_dict()

    qps_series = Series("QPS (req/s)")
    p50_series = Series("p50 latency (ms)")
    p95_series = Series("p95 latency (ms)")
    p99_series = Series("p99 latency (ms)")
    with tempfile.TemporaryDirectory() as scratch:
        archive = engine.save(Path(scratch) / "index")
        for count in scale.serving_replica_counts:
            replica_set = ReplicaSet.load(
                archive, replicas=count, mmap=True, cache_size=0
            )
            try:
                report = asyncio.run(drive(replica_set))
            finally:
                replica_set.close()
            qps_series.add(count, report["qps"])
            p50_series.add(count, report["latency_ms"]["p50"])
            p95_series.add(count, report["latency_ms"]["p95"])
            p99_series.add(count, report["latency_ms"]["p99"])
    table.series.extend([qps_series, p50_series, p95_series, p99_series])
    return table


def observability_overhead(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """What the observability layer costs: QPS/latency per telemetry mode.

    The same engine, profile, and in-process HTTP transport as
    ``network-serving`` (single replica), run three times:

    * **mode 0 — tracing off**: the always-on metrics registry only (every
      counter in the serving stack goes through ``repro.obs``); no trace
      objects exist, so every hook site takes its ``is None`` fast path;
    * **mode 1 — metrics only**: same, plus a concurrent ``/metrics``
      scraper hammering the Prometheus exposition while the load runs
      (the cost of *reading* the registry under load);
    * **mode 2 — full tracing**: every request traced (``debug=trace``
      rides each body, a slow-query log is attached), so span records are
      appended at each stage and trees are assembled and echoed per
      response.

    Six series over the mode index: QPS and p50/p99 latency, plus QPS and
    p99 expressed as a ratio to mode 0 — the regression record for "the
    observability layer is (near) free until you turn it on".
    """
    import asyncio

    from ..api.engine import Engine
    from ..obs import SlowQueryLog
    from ..serving import AsyncSearchService, LoadProfile, SearchHttpApp
    from ..serving.loadgen import run_load

    concurrency = 8
    requests = 100 * scale.query_repeats
    table = FigureTable(
        figure_id="obs-overhead",
        title="Observability overhead: QPS and latency per telemetry mode",
        x_label="mode (0=tracing off, 1=metrics scraped, 2=full tracing)",
        y_label="see series label",
        notes=(
            f"listing engine, theta={scale.thetas[-1]}, tau_min={scale.tau_min}, "
            f"n={scale.fixed_collection_size}; closed-loop load generator, "
            f"{requests} requests, concurrency {concurrency}, taus {scale.tau_grid}, "
            "in-process HTTP transport, caches disabled; one warm-up run per mode "
            "is discarded"
        ),
    )
    theta = scale.thetas[-1]
    work = listing_workload(
        scale.fixed_collection_size,
        theta,
        tau_min=scale.tau_min,
        query_lengths=scale.listing_query_lengths,
        patterns_per_length=scale.patterns_per_length,
    )
    engine = Engine(work.engine.index, work.engine.plan, cache_size=0)
    patterns = tuple(work.patterns[: min(4, len(work.patterns))])

    def make_profile(debug_trace: bool) -> LoadProfile:
        return LoadProfile(
            patterns=patterns,
            taus=tuple(scale.tau_grid),
            requests=requests,
            concurrency=concurrency,
            seed=20160315,
            debug_trace=debug_trace,
        )

    def run_mode(debug_trace: bool, scrape: bool, slow_log_capacity: int) -> "dict":
        slow_log = SlowQueryLog(slow_log_capacity) if slow_log_capacity else None

        async def go() -> "dict":
            async with AsyncSearchService(
                engine, max_wait_ms=1.0, max_batch=concurrency,
                max_pending=4 * concurrency,
            ) as service:
                app = SearchHttpApp(service, slow_log=slow_log)
                stop = asyncio.Event()

                async def scraper() -> None:
                    # 100 scrapes/s — already orders of magnitude denser
                    # than a real Prometheus interval, without turning the
                    # experiment into a benchmark of the scraper itself.
                    while not stop.is_set():
                        await app.dispatch("GET", "/metrics")
                        await asyncio.sleep(0.01)

                task = asyncio.ensure_future(scraper()) if scrape else None
                try:
                    report = await run_load(app.dispatch, make_profile(debug_trace))
                finally:
                    stop.set()
                    if task is not None:
                        await task
                return report.to_dict()

        asyncio.run(go())  # warm-up: JIT caches, thread pools, allocator
        return asyncio.run(go())

    modes = (
        (0, dict(debug_trace=False, scrape=False, slow_log_capacity=0)),
        (1, dict(debug_trace=False, scrape=True, slow_log_capacity=0)),
        (2, dict(debug_trace=True, scrape=True, slow_log_capacity=8)),
    )
    qps_series = Series("QPS (req/s)")
    p50_series = Series("p50 latency (ms)")
    p99_series = Series("p99 latency (ms)")
    qps_ratio = Series("QPS vs tracing-off (ratio)")
    p99_ratio = Series("p99 vs tracing-off (ratio)")
    baseline: Dict[str, float] = {}
    for mode, kwargs in modes:
        report = run_mode(**kwargs)
        qps = report["qps"]
        p99 = report["latency_ms"]["p99"]
        if mode == 0:
            baseline["qps"] = qps
            baseline["p99"] = p99
        qps_series.add(mode, qps)
        p50_series.add(mode, report["latency_ms"]["p50"])
        p99_series.add(mode, p99)
        qps_ratio.add(mode, qps / baseline["qps"] if baseline["qps"] else 0.0)
        p99_ratio.add(mode, p99 / baseline["p99"] if baseline["p99"] else 0.0)
    table.series.extend(
        [qps_series, p50_series, p99_series, qps_ratio, p99_ratio]
    )
    return table


def archive_size(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """Archive format v2 vs v3: bytes on disk and mmap cold-start time.

    Reference workload: the paper's headline structure — a
    :class:`~repro.core.special_index.SpecialUncertainStringIndex` with
    its sparse-table RMQ tower — over a synthetic special uncertain
    string (4-letter alphabet, uniform [0.5, 1) probabilities, seeded per
    size).  This is the workload where the format change matters most:
    a v2 archive serializes every level's full O(n log n)-word sparse
    table, a v3 archive only the Fischer–Heun block positions
    (O(n / log n) words per structure), so v3 is expected to be a small
    fraction of v2 — the CI perf smoke guards v3 ≤ 0.6 × v2 — while cold
    start stays flat (the summary tables rebuilt on load are
    O(n/b · log n) gathers).

    Five series over the string sizes of the scale: archive bytes for
    both versions, their ratio, and the median ``load_index(mmap=True)``
    wall-clock for both (plus the v1 rebuild-on-load time for context).
    """
    import tempfile
    import time as time_module
    from pathlib import Path

    import numpy as np

    from ..api.engine import build_index, load_index
    from ..strings.special import SpecialUncertainString

    table = FigureTable(
        figure_id="archive-size",
        title="Archive v2 vs v3: size on disk and mmap cold start",
        x_label="string positions",
        y_label="see series label",
        notes=(
            "special index (sparse RMQ tower) over a synthetic special "
            "uncertain string, alphabet ACGT, probabilities ~U[0.5, 1); "
            "cold start = min of 5 load_index calls after 1 warmup "
            "(mmap=True for v2/v3, eager rebuild for v1)"
        ),
    )
    v2_bytes = Series("archive v2 (bytes)")
    v3_bytes = Series("archive v3 (bytes)")
    ratio = Series("v3 / v2 size (x)")
    cold_v1 = Series("cold start v1 rebuild (ms)")
    cold_v2 = Series("cold start v2 mmap (ms)")
    cold_v3 = Series("cold start v3 mmap (ms)")

    def best_load_ms(path: Path, mmap: bool) -> float:
        # Min-of-5 after a warmup: the standard noise-robust cold-start
        # estimator — scheduling hiccups and page-cache churn only ever
        # inflate a sample, so the minimum is the cleanest observation.
        load_index(path, mmap=mmap)
        samples = []
        for _ in range(5):
            started = time_module.perf_counter()
            load_index(path, mmap=mmap)
            samples.append((time_module.perf_counter() - started) * 1000.0)
        return min(samples)

    for n in scale.string_sizes:
        rng = np.random.default_rng(1234 + n)
        characters = rng.choice(list("ACGT"), size=n)
        probabilities = rng.uniform(0.5, 1.0, size=n).round(6)
        string = SpecialUncertainString(
            [(c, float(p)) for c, p in zip(characters, probabilities)]
        )
        engine = build_index(string)
        with tempfile.TemporaryDirectory() as scratch:
            v1_path = engine.save(Path(scratch) / "v1", version=1)
            v2_path = engine.save(Path(scratch) / "v2", version=2)
            v3_path = engine.save(Path(scratch) / "v3", version=3)
            size_v2 = v2_path.stat().st_size
            size_v3 = v3_path.stat().st_size
            v2_bytes.add(n, float(size_v2))
            v3_bytes.add(n, float(size_v3))
            ratio.add(n, size_v3 / size_v2)
            cold_v1.add(n, best_load_ms(v1_path, mmap=False))
            cold_v2.add(n, best_load_ms(v2_path, mmap=True))
            cold_v3.add(n, best_load_ms(v3_path, mmap=True))
    table.series.extend([v2_bytes, v3_bytes, ratio, cold_v1, cold_v2, cold_v3])
    return table


def memory_frontier(scale: ExperimentScale = DEFAULT_SCALE) -> FigureTable:
    """The in-RAM half of the space frontier: compact payloads + shm workers.

    Reference workload: the same synthetic special uncertain string the
    ``archive-size`` experiment uses (alphabet ACGT, probabilities
    ~U[0.5, 1), seeded per size).  Three questions, one series each:

    * **In-RAM footprint** — ``build_index(...)`` vs
      ``build_index(..., compact=True)``: dtype-minimized stored arrays
      plus the compact RMQ summaries rebuilt from them.  The CI perf
      smoke guards compact ≤ 0.6 × wide; answers are byte-identical.
    * **Worker boundary** — pickled bytes of the shared-memory worker
      spec (block name + array layout; see :mod:`repro.api.shm`) vs the
      legacy pickled-payload spec: O(array count) vs O(index bytes).
    * **Serving cost** — process-pool cold spawn (pool creation + shm
      attach + first query) and warm in-process query throughput for the
      wide and compact builds (narrowing must not slow the kernels).
    """
    import pickle
    import time as time_module

    import numpy as np

    from ..api.engine import build_index
    from ..api.persistence import index_to_payload
    from ..api.sharding import build_sharded_index
    from ..api.shm import export_for_index
    from ..strings.special import SpecialUncertainString

    table = FigureTable(
        figure_id="memory-frontier",
        title="In-RAM bytes, worker-spec bytes and serving cost: wide vs compact",
        x_label="string positions",
        y_label="see series label",
        notes=(
            "special index over a synthetic special uncertain string "
            "(alphabet ACGT, probabilities ~U[0.5, 1), seed 1234+n); "
            "warm QPS = uncached index.query over text substrings; cold "
            "spawn = 2-shard process pool creation + first query"
        ),
    )
    wide_ram = Series("in-RAM wide (bytes)")
    compact_ram = Series("in-RAM compact (bytes)")
    ratio = Series("compact / wide (x)")
    spec_pickled = Series("shm worker spec pickled (bytes)")
    payload_pickled = Series("legacy payload spec pickled (bytes)")
    cold_spawn = Series("process-pool cold spawn (ms)")
    qps_wide = Series("warm QPS wide (q/s)")
    qps_compact = Series("warm QPS compact (q/s)")

    def throughput(index: object, patterns: List[str], tau: float) -> float:
        repeats = max(2, scale.query_repeats)
        for pattern in patterns:  # warmup pass
            index.query(pattern, tau)
        started = time_module.perf_counter()
        for _ in range(repeats):
            for pattern in patterns:
                index.query(pattern, tau)
        elapsed = time_module.perf_counter() - started
        return (repeats * len(patterns)) / elapsed if elapsed > 0 else 0.0

    for n in scale.string_sizes:
        rng = np.random.default_rng(1234 + n)
        characters = rng.choice(list("ACGT"), size=n)
        probabilities = rng.uniform(0.5, 1.0, size=n).round(6)
        string = SpecialUncertainString(
            [(c, float(p)) for c, p in zip(characters, probabilities)]
        )
        wide_engine = build_index(string)
        compact_engine = build_index(string, compact=True)
        wide_total = wide_engine.nbytes()
        compact_total = compact_engine.nbytes()
        wide_ram.add(n, float(wide_total))
        compact_ram.add(n, float(compact_total))
        ratio.add(n, compact_total / wide_total)

        export = export_for_index(compact_engine.index)
        try:
            spec_pickled.add(n, float(len(pickle.dumps(export.spec()))))
        finally:
            export.release()
        payload_pickled.add(
            n,
            float(
                len(pickle.dumps(("payload", index_to_payload(compact_engine.index))))
            ),
        )

        offsets = rng.integers(0, n - 6, size=8)
        patterns = [string.text[int(o) : int(o) + 5] for o in offsets]
        sharded = build_sharded_index(
            string, shards=2, max_pattern_len=16, query_executor="process"
        )
        try:
            started = time_module.perf_counter()
            sharded.count(patterns[0], tau=scale.tau)
            cold_spawn.add(n, (time_module.perf_counter() - started) * 1000.0)
        finally:
            sharded.close()

        qps_wide.add(n, throughput(wide_engine.index, patterns, scale.tau))
        qps_compact.add(n, throughput(compact_engine.index, patterns, scale.tau))
    table.series.extend(
        [
            wide_ram,
            compact_ram,
            ratio,
            spec_pickled,
            payload_pickled,
            cold_spawn,
            qps_wide,
            qps_compact,
        ]
    )
    return table


#: Registry used by the CLI and the tests.
EXPERIMENTS: Dict[str, Callable[[ExperimentScale], FigureTable]] = {
    "fig7a": figure_7a,
    "fig7b": figure_7b,
    "fig7c": figure_7c,
    "fig7d": figure_7d,
    "fig8a": figure_8a,
    "fig8b": figure_8b,
    "fig8c": figure_8c,
    "fig8d": figure_8d,
    "fig9a": figure_9a,
    "fig9b": figure_9b,
    "fig9c": figure_9c,
    "ablation-variants": ablation_index_variants,
    "ablation-rmq": ablation_rmq,
    "ablation-batch": ablation_batch_engine,
    "sharding-scaling": sharding_scaling,
    "ablation-approx": ablation_approximate,
    "ablation-transformation": ablation_transformation,
    "query-kernel": query_kernel,
    "shard-build": shard_build,
    "serving-throughput": serving_throughput,
    "network-serving": network_serving,
    "observability-overhead": observability_overhead,
    "archive-size": archive_size,
    "memory-frontier": memory_frontier,
}


def run_experiments(
    names: Sequence[str],
    scale: ExperimentScale = DEFAULT_SCALE,
) -> List[FigureTable]:
    """Run the named experiments and return their tables in order."""
    return [table for table, _ in run_experiments_timed(names, scale)]


def run_experiments_timed(
    names: Sequence[str],
    scale: ExperimentScale = DEFAULT_SCALE,
) -> List[Tuple[FigureTable, float]]:
    """Run the named experiments, returning each table with its wall-clock seconds.

    The per-experiment timing feeds the machine-readable ``--json`` output
    of the CLI (``BENCH_<experiment>.json``).
    """
    import time

    results: List[Tuple[FigureTable, float]] = []
    for name in names:
        if name not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
            )
        started = time.perf_counter()
        table = EXPERIMENTS[name](scale)
        results.append((table, time.perf_counter() - started))
    return results
