"""Benchmark harness primitives: timed runs and figure-shaped result tables.

The paper reports every experiment as a small line chart: one x-axis
parameter (string length, τ, τ_min, pattern length), one line per
uncertainty fraction θ, y-axis query/construction time or space.  The
harness mirrors that shape: an experiment produces a :class:`FigureTable`
holding one :class:`Series` per θ, which the reporting module renders as a
fixed-width table or CSV.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class SeriesPoint:
    """One (x, y) measurement of an experiment series."""

    x: float
    value: float


@dataclass
class Series:
    """One line of a figure: a labelled sequence of measurements."""

    label: str
    points: List[SeriesPoint] = field(default_factory=list)

    def add(self, x: float, value: float) -> None:
        """Append a measurement to the series."""
        self.points.append(SeriesPoint(float(x), float(value)))

    @property
    def xs(self) -> List[float]:
        """The x coordinates in insertion order."""
        return [point.x for point in self.points]

    @property
    def values(self) -> List[float]:
        """The y values in insertion order."""
        return [point.value for point in self.points]


@dataclass
class FigureTable:
    """All series of one figure panel, plus labelling metadata.

    Attributes
    ----------
    figure_id:
        Identifier matching the paper (e.g. ``"fig7a"``).
    title:
        Human-readable description of the panel.
    x_label, y_label:
        Axis labels (used by the reporting module).
    series:
        One :class:`Series` per θ value (or per index variant for ablations).
    notes:
        Free-form notes, e.g. the parameter values held fixed.
    """

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: str = ""

    def series_by_label(self, label: str) -> Series:
        """Return the series with the given label (raising ``KeyError`` if absent)."""
        for candidate in self.series:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no series labelled {label!r} in {self.figure_id}")

    def x_values(self) -> List[float]:
        """Union of all x coordinates across series, sorted."""
        values = sorted({point.x for series in self.series for point in series.points})
        return values


def time_callable(
    function: Callable[[], object],
    *,
    repeats: int = 1,
    warmup: int = 0,
) -> float:
    """Return the average wall-clock seconds of ``function()`` over ``repeats`` runs."""
    for _ in range(warmup):
        function()
    started = time.perf_counter()
    for _ in range(repeats):
        function()
    elapsed = time.perf_counter() - started
    return elapsed / max(repeats, 1)


def time_query_batch(
    query: Callable[[str, float], object],
    patterns: Sequence[str],
    tau: float,
    *,
    repeats: int = 1,
) -> float:
    """Average milliseconds per query over a batch of patterns.

    Mirrors the paper's reporting, which averages query time over a
    collection of query substrings at a fixed threshold.
    """
    if not patterns:
        raise ValueError("cannot time an empty pattern batch")

    def run() -> None:
        for pattern in patterns:
            query(pattern, tau)

    total_seconds = time_callable(run, repeats=repeats)
    return total_seconds * 1000.0 / len(patterns)


@dataclass
class ExperimentRecord:
    """Raw record of one experiment cell (useful for CSV export / debugging)."""

    figure_id: str
    parameters: Dict[str, float]
    value: float
    unit: str


class ResultStore:
    """Accumulates :class:`ExperimentRecord` objects across an experiment run."""

    def __init__(self) -> None:
        self._records: List[ExperimentRecord] = []

    def add(
        self, figure_id: str, parameters: Dict[str, float], value: float, unit: str
    ) -> None:
        """Record one measurement."""
        self._records.append(ExperimentRecord(figure_id, dict(parameters), value, unit))

    @property
    def records(self) -> Tuple[ExperimentRecord, ...]:
        """All recorded measurements."""
        return tuple(self._records)

    def filter(self, figure_id: str) -> List[ExperimentRecord]:
        """Records belonging to one figure."""
        return [record for record in self._records if record.figure_id == figure_id]
