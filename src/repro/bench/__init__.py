"""Benchmark harness reproducing the paper's experimental evaluation (Section 8)."""

from .experiments import (
    DEFAULT_SCALE,
    EXPERIMENTS,
    LARGE_SCALE,
    SCALES,
    SMALL_SCALE,
    ExperimentScale,
    run_experiments,
)
from .harness import FigureTable, Series, SeriesPoint, time_callable, time_query_batch
from .reporting import format_csv, format_markdown, format_table, render_report
from .workloads import (
    ListingWorkload,
    SubstringWorkload,
    clear_caches,
    listing_workload,
    substring_workload,
)

__all__ = [
    "DEFAULT_SCALE",
    "EXPERIMENTS",
    "ExperimentScale",
    "FigureTable",
    "LARGE_SCALE",
    "ListingWorkload",
    "SCALES",
    "SMALL_SCALE",
    "Series",
    "SeriesPoint",
    "SubstringWorkload",
    "clear_caches",
    "format_csv",
    "format_markdown",
    "format_table",
    "listing_workload",
    "render_report",
    "run_experiments",
    "substring_workload",
    "time_callable",
    "time_query_batch",
]
