"""Command-line entry point: ``python -m repro.bench`` / ``repro-bench``.

Regenerates the paper's experimental figures as text/Markdown/CSV tables.

Examples
--------
Run everything at the default scale and print text tables::

    python -m repro.bench --all

Run one figure at the large scale and write Markdown::

    python -m repro.bench --figure fig7a --scale large --format markdown -o fig7a.md
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from .experiments import EXPERIMENTS, SCALES, run_experiments_timed
from .reporting import render_report, write_json_artifact


def build_parser() -> argparse.ArgumentParser:
    """Create the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's experimental figures (Section 8).",
    )
    parser.add_argument(
        "--figure",
        action="append",
        dest="figures",
        choices=sorted(EXPERIMENTS),
        help="figure/ablation to run (repeatable)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every figure and ablation"
    )
    parser.add_argument(
        "--paper-figures",
        action="store_true",
        help="run figures 7, 8 and 9 (no ablations)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="default",
        help="parameter grid to use (default: %(default)s)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "markdown", "csv"),
        default="text",
        help="output format (default: %(default)s)",
    )
    parser.add_argument(
        "-o", "--output", type=Path, default=None, help="write the report to a file"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write one machine-readable BENCH_<experiment>.json per experiment",
    )
    parser.add_argument(
        "--json-dir",
        type=Path,
        default=None,
        help=(
            "directory for the BENCH_<experiment>.json artifacts "
            "(implies --json; default: current directory)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the selected experiments and emit the report."""
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.all:
        names = sorted(EXPERIMENTS)
    elif arguments.paper_figures:
        names = [name for name in sorted(EXPERIMENTS) if name.startswith("fig")]
    elif arguments.figures:
        names = arguments.figures
    else:
        parser.error("choose --all, --paper-figures or at least one --figure")
        return 2  # pragma: no cover - parser.error raises SystemExit

    scale = SCALES[arguments.scale]
    started = time.perf_counter()
    timed_tables = run_experiments_timed(names, scale)
    elapsed = time.perf_counter() - started
    tables = [table for table, _ in timed_tables]
    report = render_report(tables, fmt=arguments.format)
    footer = f"\n# completed {len(tables)} experiment(s) at scale '{scale.name}' in {elapsed:.1f}s\n"
    if arguments.format == "text":
        report += footer

    if arguments.json or arguments.json_dir is not None:
        json_dir = arguments.json_dir if arguments.json_dir is not None else Path(".")
        for table, wall_clock in timed_tables:
            path = write_json_artifact(
                table,
                json_dir,
                scale=scale.name,
                wall_clock_seconds=wall_clock,
            )
            print(f"wrote {path}", file=sys.stderr)

    if arguments.output is not None:
        arguments.output.write_text(report, encoding="utf-8")
        print(f"wrote {arguments.output}", file=sys.stderr)
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
