"""Rendering of benchmark results as fixed-width tables, CSV and Markdown.

The paper presents its evaluation as line charts; the harness reproduces
each chart as a table whose rows are the x-axis values and whose columns are
the θ series (or index variants for the ablations).  The same tables are
embedded in EXPERIMENTS.md.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .harness import FigureTable


def _format_number(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.2f}"
    return f"{value:.4f}"


def format_table(table: FigureTable) -> str:
    """Render one :class:`FigureTable` as a fixed-width text table."""
    xs = table.x_values()
    headers = [table.x_label] + [series.label for series in table.series]
    rows: List[List[str]] = []
    for x in xs:
        row = [_format_number(x)]
        for series in table.series:
            value = next((point.value for point in series.points if point.x == x), None)
            row.append(_format_number(value))
        rows.append(row)

    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rows)) if rows else len(headers[column])
        for column in range(len(headers))
    ]
    out = io.StringIO()
    out.write(f"== {table.figure_id}: {table.title} ==\n")
    if table.notes:
        out.write(f"   ({table.notes}; y = {table.y_label})\n")
    out.write(
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)) + "\n"
    )
    out.write("  ".join("-" * width for width in widths) + "\n")
    for row in rows:
        out.write("  ".join(cell.rjust(width) for cell, width in zip(row, widths)) + "\n")
    return out.getvalue()


def format_markdown(table: FigureTable) -> str:
    """Render one :class:`FigureTable` as a GitHub-flavoured Markdown table."""
    xs = table.x_values()
    headers = [table.x_label] + [series.label for series in table.series]
    out = io.StringIO()
    out.write(f"### {table.figure_id} — {table.title}\n\n")
    if table.notes:
        out.write(f"*{table.notes}; y = {table.y_label}*\n\n")
    out.write("| " + " | ".join(headers) + " |\n")
    out.write("|" + "|".join(["---"] * len(headers)) + "|\n")
    for x in xs:
        cells = [_format_number(x)]
        for series in table.series:
            value = next((point.value for point in series.points if point.x == x), None)
            cells.append(_format_number(value))
        out.write("| " + " | ".join(cells) + " |\n")
    out.write("\n")
    return out.getvalue()


def format_csv(table: FigureTable) -> str:
    """Render one :class:`FigureTable` as CSV (x column plus one column per series)."""
    xs = table.x_values()
    headers = [table.x_label] + [series.label for series in table.series]
    lines = [",".join(headers)]
    for x in xs:
        cells = [repr(x)]
        for series in table.series:
            value = next((point.value for point in series.points if point.x == x), None)
            cells.append("" if value is None else repr(value))
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def figure_table_to_dict(
    table: FigureTable,
    *,
    scale: Optional[str] = None,
    wall_clock_seconds: Optional[float] = None,
) -> Dict[str, object]:
    """Machine-readable form of one :class:`FigureTable`.

    Carries the experiment name, its parameters (the table's labelling
    metadata), the wall-clock seconds of the run and every measured series
    — the record a perf-trajectory tool can diff across commits.
    """
    payload: Dict[str, object] = {
        "experiment": table.figure_id,
        "title": table.title,
        "parameters": {
            "scale": scale,
            "x_label": table.x_label,
            "y_label": table.y_label,
            "notes": table.notes,
        },
        "wall_clock_seconds": wall_clock_seconds,
        "series": [
            {
                "label": series.label,
                "points": [
                    {"x": point.x, "value": point.value} for point in series.points
                ],
            }
            for series in table.series
        ],
    }
    return payload


def json_artifact_name(figure_id: str) -> str:
    """File name of one experiment's JSON artifact (``BENCH_<experiment>.json``)."""
    sanitized = "".join(
        character if character.isalnum() else "_" for character in figure_id
    )
    return f"BENCH_{sanitized}.json"


def write_json_artifact(
    table: FigureTable,
    directory: Union[str, Path],
    *,
    scale: Optional[str] = None,
    wall_clock_seconds: Optional[float] = None,
) -> Path:
    """Write one experiment's ``BENCH_<experiment>.json`` and return its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / json_artifact_name(table.figure_id)
    payload = figure_table_to_dict(
        table, scale=scale, wall_clock_seconds=wall_clock_seconds
    )
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def render_report(tables: Iterable[FigureTable], *, fmt: str = "text") -> str:
    """Render several tables with the requested format (``text``/``markdown``/``csv``)."""
    renderers = {"text": format_table, "markdown": format_markdown, "csv": format_csv}
    if fmt not in renderers:
        raise ValueError(f"unknown format {fmt!r}; expected one of {sorted(renderers)}")
    renderer = renderers[fmt]
    return "\n".join(renderer(table) for table in tables)
