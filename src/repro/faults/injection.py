"""Deterministic, seeded fault injection for the serving stack.

Every resilience claim this package makes — deadlines hold, dead worker
pools recover, degraded answers enumerate their failed shards — is only a
claim until something actually fails on demand.  This module provides the
"on demand": the hot paths of the engine and serving layers each carry one
**named injection site** (:data:`SITES`), a no-op unless a
:class:`FaultPlan` has been installed for the current process, and a plan
schedules crashes, delays and taxonomy errors against those sites with a
seeded RNG so every run of a chaos test replays the same failures.

Sites (each fired by exactly one call point):

==========================  =====================================================
site                        fired at
==========================  =====================================================
``worker-dispatch``         per shard, before the sharded engine dispatches the
                            shard's query (thread or process fan-out)
``archive-load``            entry of ``load_index_payload`` — every archive open,
                            parent or (fork-inherited) worker side
``replica-call``            before a :class:`~repro.serving.ReplicaSet` replica
                            evaluates a batch
``cache-access``            entry of :meth:`~repro.api.cache.ResultCache.get`
``batch-flush``             when the :class:`~repro.serving.AsyncSearchService`
                            closes a micro-batch window, before evaluation
==========================  =====================================================

Zero overhead when disabled: the module-level :func:`fire` returns
immediately while no injector is installed (one global load and an ``is
None`` test), so production paths pay nothing for being injectable.

Determinism: trigger decisions come from one ``random.Random(seed)`` plus
per-site call ordinals, both owned by the installed
:class:`FaultInjector` and updated under a lock — the call *sites* are
sequential on their dispatch paths (the sharded engine fires per shard in
shard order before submitting), so a fixed plan against a fixed workload
fires at the same ordinals every run.  Plans are per-process state: a
worker process forked *after* a plan was installed inherits it (the
default ``fork`` start method copies the module global), which is how a
spec can target ``archive-load`` inside a worker; processes spawned fresh
start clean.

Fault kinds:

* ``"error"`` — raise a taxonomy class (:class:`InjectedFaultError` by
  default; any :class:`~repro.exceptions.ReproError` subclass by name).
* ``"delay"`` — ``time.sleep(delay_s)`` at the site; the tool for
  deadline tests (a delay at ``batch-flush`` blocks the event loop, which
  is exactly the hang a deadline must bound).
* ``"crash"`` — invoke the *crash hook* the site provides (the sharded
  engine's worker-dispatch site hands one that SIGKILLs the shard's
  worker process, producing a real ``BrokenProcessPool``); sites without
  a hook degrade to the ``"error"`` behaviour.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Type

from .. import exceptions
from ..exceptions import InjectedFaultError, ReproError, ValidationError
from ..obs.metrics import MetricSample, MetricsRegistry

#: Shard query dispatch (one firing per shard, in shard order).
SITE_WORKER_DISPATCH = "worker-dispatch"
#: Archive open in :func:`repro.api.persistence.load_index_payload`.
SITE_ARCHIVE_LOAD = "archive-load"
#: Replica batch evaluation in :class:`repro.serving.ReplicaSet`.
SITE_REPLICA_CALL = "replica-call"
#: Result-cache lookup in :meth:`repro.api.cache.ResultCache.get`.
SITE_CACHE_ACCESS = "cache-access"
#: Micro-batch window close in :class:`repro.serving.AsyncSearchService`.
SITE_BATCH_FLUSH = "batch-flush"

#: Every named injection site a :class:`FaultSpec` may target.
SITES = frozenset(
    {
        SITE_WORKER_DISPATCH,
        SITE_ARCHIVE_LOAD,
        SITE_REPLICA_CALL,
        SITE_CACHE_ACCESS,
        SITE_BATCH_FLUSH,
    }
)

#: Fault kinds a spec may schedule.
KINDS = ("error", "delay", "crash")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault against one site.

    Attributes
    ----------
    site:
        The injection site (one of :data:`SITES`).
    kind:
        ``"error"``, ``"delay"`` or ``"crash"`` (see module docstring).
    probability:
        Per-call trigger probability, drawn from the plan's seeded RNG.
        Defaults to ``1.0`` (every call triggers until ``times`` runs
        out).  Ignored when ``at`` is set.
    at:
        Optional 0-based call ordinal: trigger exactly on the ``at``-th
        firing of the site in this process, deterministically, instead of
        rolling ``probability``.
    times:
        Maximum number of triggers before the spec goes dormant — how a
        fault is "retried away" (a spec with ``times=1`` fails the first
        attempt and lets the retry succeed).
    error:
        Name of the taxonomy class to raise for ``"error"`` faults (and
        for ``"crash"`` faults at sites without a crash hook), resolved
        against :mod:`repro.exceptions`; must subclass
        :class:`~repro.exceptions.ReproError`.
    message:
        Optional extra text appended to the raised error.
    delay_s:
        Sleep duration for ``"delay"`` faults, in seconds.
    """

    site: str
    kind: str = "error"
    probability: float = 1.0
    at: Optional[int] = None
    times: int = 1
    error: str = "InjectedFaultError"
    message: str = ""
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValidationError(
                f"unknown fault site {self.site!r}; expected one of {sorted(SITES)}"
            )
        if self.kind not in KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValidationError(
                f"probability must be within [0, 1], got {self.probability}"
            )
        if self.at is not None and self.at < 0:
            raise ValidationError(f"at must be a non-negative ordinal, got {self.at}")
        if self.times < 1:
            raise ValidationError(f"times must be >= 1, got {self.times}")
        if self.delay_s < 0:
            raise ValidationError(f"delay_s must be >= 0, got {self.delay_s}")
        self.resolve_error()  # validate eagerly, not at fire time

    def resolve_error(self) -> Type[ReproError]:
        """The taxonomy class :attr:`error` names (validated at construction)."""
        resolved = getattr(exceptions, self.error, None)
        if not (isinstance(resolved, type) and issubclass(resolved, ReproError)):
            raise ValidationError(
                f"error {self.error!r} is not a ReproError subclass in "
                "repro.exceptions"
            )
        return resolved


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of :class:`FaultSpec` entries.

    The plan is pure data (JSON-friendly: sites, kinds and error classes
    are strings) — :func:`inject_faults` turns it into the live, stateful
    :class:`FaultInjector` for the duration of a ``with`` block.  The
    same plan over the same workload replays the same faults.
    """

    specs: Tuple[FaultSpec, ...] = field(default=())
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept any iterable of specs; store the canonical tuple.
        object.__setattr__(self, "specs", tuple(self.specs))


class _SpecState:
    """Mutable trigger bookkeeping for one spec (guarded by the injector)."""

    __slots__ = ("spec", "remaining", "fired")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.remaining = spec.times
        self.fired = 0


class FaultInjector:
    """The live state behind an installed :class:`FaultPlan`.

    Tracks per-site call ordinals, per-spec remaining trigger budgets and
    the seeded RNG.  Callers never construct one directly — use
    :func:`inject_faults` — but tests read :meth:`stats` off the value the
    context manager yields to assert the plan actually fired.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        # Re-entrant: labeled counter updates happen while the trigger
        # decision already holds the lock (the registry shares it).
        self._state_lock = threading.RLock()
        self._rng = random.Random(plan.seed)  # guarded-by: _state_lock
        self._metrics = MetricsRegistry(lock=self._state_lock)
        self._calls = {
            site: self._metrics.counter("fault_calls_total", site=site)
            for site in SITES
        }
        self._fired = {
            site: self._metrics.counter("fault_fired_total", site=site)
            for site in SITES
        }
        self._states: Dict[str, List[_SpecState]] = {}  # guarded-by: _state_lock
        for spec in plan.specs:
            self._states.setdefault(spec.site, []).append(_SpecState(spec))

    @property
    def plan(self) -> FaultPlan:
        """The plan this injector executes."""
        return self._plan

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-site call and trigger counts (for chaos-test assertions).

        The legacy view over the labeled ``fault_calls_total`` /
        ``fault_fired_total`` counters: zero-count sites are filtered, and
        the whole dict is one snapshot under the injector lock.
        """
        with self._state_lock:
            calls = {
                site: counter.value
                for site, counter in self._calls.items()
                if counter.value
            }
            fired = {
                site: counter.value
                for site, counter in self._fired.items()
                if counter.value
            }
            return {"calls": calls, "fired": fired}

    def metrics_samples(self) -> List[MetricSample]:
        """Labeled per-site counters for ``/metrics`` exposition."""
        return self._metrics.collect()

    def _triggered(self, site: str) -> Tuple[FaultSpec, ...]:
        """Decide (under the lock) which specs trigger on this call."""
        with self._state_lock:
            ordinal = self._calls[site].value
            self._calls[site].inc()
            triggered = []
            for state in self._states.get(site, ()):
                if state.remaining <= 0:
                    continue
                spec = state.spec
                if spec.at is not None:
                    hit = ordinal == spec.at
                else:
                    hit = self._rng.random() < spec.probability
                if hit:
                    state.remaining -= 1
                    state.fired += 1
                    self._fired[site].inc()
                    triggered.append(spec)
            return tuple(triggered)

    def fire(self, site: str, *, crash: Optional[Callable[[], None]] = None) -> None:
        """Apply every triggered fault at ``site`` (see module docstring).

        Actions run outside the lock (a delay must not serialize other
        sites).  When several specs trigger on one call, delays and
        crashes apply first and the first error-raising spec raises.
        """
        if site not in SITES:
            raise ValidationError(
                f"unknown fault site {site!r}; expected one of {sorted(SITES)}"
            )
        errors = []
        for spec in self._triggered(site):
            if spec.kind == "delay":
                time.sleep(spec.delay_s)
            elif spec.kind == "crash" and crash is not None:
                crash()
            else:
                errors.append(spec)
        for spec in errors:
            suffix = f": {spec.message}" if spec.message else ""
            # The class is validated (at spec construction) to be a
            # ReproError subclass, so this stays inside the taxonomy even
            # though the name is dynamic.
            error_class = spec.resolve_error()
            raise error_class(  # repro-check: allow(exception-taxonomy)
                f"injected {spec.kind} fault at site {site!r}{suffix}"
            )


#: The process-wide installed injector (``None`` while injection is off —
#: the fast path of :func:`fire`).
_INJECTOR: Optional[FaultInjector] = None  # guarded-by: _INSTALL_LOCK
_INSTALL_LOCK = threading.Lock()


def active_injector() -> Optional[FaultInjector]:
    """The currently installed injector, or ``None``."""
    return _INJECTOR


def fire(site: str, *, crash: Optional[Callable[[], None]] = None) -> None:
    """Fire an injection site: a no-op unless a plan is installed.

    This is the only call the instrumented hot paths make.  ``crash`` is
    the site's optional crash hook — e.g. "SIGKILL the worker process this
    dispatch is about to use" — invoked only when a ``"crash"`` spec
    triggers.
    """
    injector = _INJECTOR
    if injector is None:
        return
    injector.fire(site, crash=crash)


@contextlib.contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Install ``plan`` for the current process for the ``with`` block.

    Yields the live :class:`FaultInjector` (whose :meth:`~FaultInjector.stats`
    chaos tests assert against) and uninstalls it on exit, even when the
    block raises.  Nesting is refused — two active plans would make the
    trigger ordinals meaningless.
    """
    global _INJECTOR
    injector = FaultInjector(plan)
    with _INSTALL_LOCK:
        if _INJECTOR is not None:
            raise ValidationError(
                "a fault plan is already installed; nesting inject_faults() "
                "would make trigger ordinals ambiguous"
            )
        _INJECTOR = injector
    try:
        yield injector
    finally:
        with _INSTALL_LOCK:
            _INJECTOR = None
