"""Deterministic fault injection for the :mod:`repro` serving stack.

See :mod:`repro.faults.injection` for the model: named injection sites on
the hot paths, a seeded :class:`FaultPlan` scheduling crashes / delays /
taxonomy errors against them, zero overhead while no plan is installed.

Typical chaos-test shape::

    from repro.faults import FaultPlan, FaultSpec, SITE_WORKER_DISPATCH, inject_faults

    plan = FaultPlan(specs=(FaultSpec(SITE_WORKER_DISPATCH, kind="crash", at=1),), seed=7)
    with inject_faults(plan) as injector:
        result = engine.search("ab", tau=0.3)   # shard 1's worker dies; recovery kicks in
    assert injector.stats()["fired"] == {SITE_WORKER_DISPATCH: 1}
"""

from .injection import (
    KINDS,
    SITE_ARCHIVE_LOAD,
    SITE_BATCH_FLUSH,
    SITE_CACHE_ACCESS,
    SITE_REPLICA_CALL,
    SITE_WORKER_DISPATCH,
    SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_injector,
    fire,
    inject_faults,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "KINDS",
    "SITE_ARCHIVE_LOAD",
    "SITE_BATCH_FLUSH",
    "SITE_CACHE_ACCESS",
    "SITE_REPLICA_CALL",
    "SITE_WORKER_DISPATCH",
    "SITES",
    "active_injector",
    "fire",
    "inject_faults",
]
