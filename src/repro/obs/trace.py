"""Request-scoped tracing: span records, span trees, slow-query log.

A :class:`Trace` is minted per request at the HTTP boundary (or adopted
from a caller-supplied ``X-Repro-Trace-Id`` header) and rides on
``SearchRequest.trace`` — excluded from equality/hashing so dedupe
buckets, cache keys, and batch refinement are byte-identical with
tracing on.  Every layer that touches the request appends flat,
thread-safe span *records* ``(name, duration_ms, parent, meta)``;
nothing blocks on tree structure at record time.  The tree is assembled
in :meth:`Trace.to_dict` in two passes (create nodes, then link each to
the first record named by its ``parent``), so a child recorded from an
executor thread *before* its parent's duration is known still lands in
the right place.

Span glossary (names are stable API, see README "Observability"):

``request``        root; total HTTP dispatch time
``validate``       request parsing + validation (HTTP layer)
``service``        submit-to-answer inside :class:`AsyncSearchService`
``window_wait``    enqueue to batch-window dispatch (child of service)
``evaluate``       engine evaluation of the window (child of service;
                   meta: window ordinal, bucket size, deduplication)
``plan``           pattern checks / request normalization (child of evaluate)
``cache``          result-cache consultation (child of evaluate; meta hit)
``kernel``         index evaluation proper (child of cache; meta kind)
``fan_out``        sharded fan-out (child of evaluate)
``shard``          one shard's evaluation (child of fan_out; meta shard,
                   attempt, executor mode, worker eval time)
``merge``          heap-merge of shard answers (child of evaluate)
``serialize``      response payload construction (HTTP layer)

Records adopted from a dedupe twin's primary carry
``dedupe_shared=True`` in their meta.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple


def mint_trace_id() -> str:
    """A fresh 32-hex-character trace identifier."""
    return uuid.uuid4().hex


class Trace:
    """Thread-safe flat span-record collector for one request."""

    __slots__ = ("trace_id", "_lock", "_records")

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id if trace_id else mint_trace_id()
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []  # guarded-by: _lock

    def add(
        self,
        name: str,
        duration_ms: float,
        *,
        parent: Optional[str] = None,
        **meta: Any,
    ) -> None:
        """Append one finished span record (out-of-order arrival is fine)."""
        record = {"name": name, "duration_ms": float(duration_ms),
                  "parent": parent, "meta": meta}
        with self._lock:
            self._records.append(record)

    @contextmanager
    def span(
        self, name: str, *, parent: Optional[str] = None, **meta: Any
    ) -> Iterator[Dict[str, Any]]:
        """Time a block and record it; the yielded dict extends the meta."""
        extra: Dict[str, Any] = dict(meta)
        start = time.perf_counter()
        try:
            yield extra
        finally:
            self.add(name, (time.perf_counter() - start) * 1000.0,
                     parent=parent, **extra)

    def count(self, name: str) -> int:
        """How many records carry *name* (e.g. kernel runs = cache misses)."""
        with self._lock:
            return sum(1 for record in self._records if record["name"] == name)

    def size(self) -> int:
        """Total records so far (cheap change detection across a call)."""
        with self._lock:
            return len(self._records)

    def records(self) -> List[Dict[str, Any]]:
        """Copies of all records, oldest first."""
        with self._lock:
            return [dict(record, meta=dict(record["meta"])) for record in self._records]

    def extract(self, root: str) -> List[Dict[str, Any]]:
        """Copies of records whose parent chain (by name) reaches *root*.

        The *root* record itself does not need to exist yet — engine
        spans parented to ``evaluate`` are extractable before the
        service records the ``evaluate`` span.
        """
        records = self.records()
        parents = {record["name"]: record["parent"] for record in records}
        out: List[Dict[str, Any]] = []
        for record in records:
            name: Optional[str] = record["parent"]
            hops = 0
            while name is not None and hops <= len(parents):
                if name == root:
                    out.append(record)
                    break
                name = parents.get(name)
                hops += 1
        return out

    def adopt(self, records: List[Dict[str, Any]], **mark: Any) -> None:
        """Copy foreign records in (dedupe twins), tagging each with *mark*."""
        copies = [dict(record, meta={**record["meta"], **mark}) for record in records]
        with self._lock:
            self._records.extend(copies)

    def to_dict(self, total_ms: Optional[float] = None) -> Dict[str, Any]:
        """Assemble the span tree.

        Two passes: build one node per record, then attach each node to
        the first node named by its ``parent`` (unparented or unmatched
        records become roots).  When ``total_ms`` is given, a synthetic
        ``request`` root wraps everything.
        """
        records = self.records()
        nodes: List[Dict[str, Any]] = []
        first_by_name: Dict[str, Dict[str, Any]] = {}
        for record in records:
            node: Dict[str, Any] = {
                "name": record["name"],
                "duration_ms": record["duration_ms"],
                "children": [],
            }
            if record["meta"]:
                node["meta"] = record["meta"]
            nodes.append(node)
            if record["name"] not in first_by_name:
                first_by_name[record["name"]] = node
        roots: List[Dict[str, Any]] = []
        for record, node in zip(records, nodes):
            parent_node = None
            if record["parent"] is not None:
                parent_node = first_by_name.get(record["parent"])
            if parent_node is None or parent_node is node:
                roots.append(node)
            else:
                parent_node["children"].append(node)
        tree: Dict[str, Any] = {"trace_id": self.trace_id}
        if total_ms is not None:
            tree["spans"] = [{
                "name": "request",
                "duration_ms": float(total_ms),
                "children": roots,
            }]
        else:
            tree["spans"] = roots
        return tree


class SlowQueryLog:
    """Bounded worst-K store of finished span trees.

    ``record()`` keeps the *capacity* slowest traces seen so far (a
    min-heap on total latency, ties broken by arrival order);
    ``dump()`` returns them worst-first for the ``/stats`` payload and
    the load generator's ``--slow-log`` report.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity <= 0:
            raise ValueError("slow-query log capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._heap: List[Tuple[float, int, Dict[str, Any]]] = []  # guarded-by: _lock

    def record(self, total_ms: float, trace_tree: Dict[str, Any]) -> None:
        entry = (float(total_ms), next(self._seq), trace_tree)
        with self._lock:
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
            elif entry[0] > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)

    def dump(self) -> List[Dict[str, Any]]:
        """Worst-first ``{"total_ms", "trace"}`` rows."""
        with self._lock:
            entries = sorted(self._heap, key=lambda row: (-row[0], row[1]))
        return [{"total_ms": total, "trace": tree} for total, _, tree in entries]

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
