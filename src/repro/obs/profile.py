"""Opt-in sampling timer around the vectorized kernels.

Mirrors the ``repro.faults`` installation discipline exactly: a single
module-global profiler slot plus an ``is None`` fast path at every hook
site, so a disabled profiler costs one global read and one comparison on
the kernel hot path — nothing else.

Usage::

    with profile_kernels(sample_rate=0.25) as profiler:
        run_bench()
    print(profiler.stats())   # per-stage count / mean / p95 / max (ms)

Hook sites live in ``Engine._evaluate`` (stage = index kind) and the
sharded per-shard evaluation (stage = ``shard``); bench runs use the
stats to attribute an occ/s regression to a stage.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from .metrics import Histogram, MetricsRegistry


class KernelProfiler:
    """Sampling kernel timer backed by per-stage obs histograms."""

    def __init__(self, sample_rate: float = 1.0, seed: Optional[int] = None) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        self.sample_rate = sample_rate
        self._random = random.Random(seed)
        self._lock = threading.RLock()
        self._registry = MetricsRegistry(lock=self._lock)
        self._histograms: Dict[str, Histogram] = {}  # guarded-by: _lock

    def should_sample(self) -> bool:
        """Decide (seeded, cheap) whether to time this kernel call."""
        if self.sample_rate >= 1.0:
            return True
        return self._random.random() < self.sample_rate

    def observe(self, stage: str, duration_ms: float) -> None:
        with self._lock:
            histogram = self._histograms.get(stage)
            if histogram is None:
                histogram = self._registry.histogram("kernel_eval_ms", stage=stage)
                self._histograms[stage] = histogram
        histogram.observe(duration_ms)

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-stage ``{count, mean_ms, p50_ms, p95_ms, max_ms}``."""
        with self._lock:
            stages = dict(self._histograms)
        out: Dict[str, Dict[str, Any]] = {}
        for stage, histogram in sorted(stages.items()):
            quantiles = histogram.quantiles((0.5, 0.95))
            out[stage] = {
                "count": histogram.count,
                "mean_ms": histogram.mean,
                "p50_ms": quantiles[0.5],
                "p95_ms": quantiles[0.95],
                "max_ms": histogram.max,
            }
        return out

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry


_INSTALL_LOCK = threading.Lock()
_PROFILER: Optional[KernelProfiler] = None  # guarded-by: _INSTALL_LOCK


def active_profiler() -> Optional[KernelProfiler]:
    """The installed profiler, or ``None`` — the hot-path fast check."""
    return _PROFILER


@contextmanager
def profile_kernels(
    sample_rate: float = 1.0, seed: Optional[int] = None
) -> Iterator[KernelProfiler]:
    """Install a :class:`KernelProfiler` for the duration of the block."""
    global _PROFILER
    profiler = KernelProfiler(sample_rate=sample_rate, seed=seed)
    with _INSTALL_LOCK:
        if _PROFILER is not None:
            raise ValueError("a kernel profiler is already installed")
        _PROFILER = profiler
    try:
        yield profiler
    finally:
        with _INSTALL_LOCK:
            _PROFILER = None
