"""Lock-safe metrics registry with Prometheus text exposition.

One registry per component, one lock per registry — and the lock can be
*supplied* (``MetricsRegistry(lock=...)``), so a component that already
guards its state with an ``RLock`` hands that same lock to its registry.
Counter increments made while the component lock is held re-enter
cleanly, and a ``stats()`` snapshot taken under the component lock is
consistent across every metric in the registry (no torn reads between
``completed`` and the latency histogram's ``count``).

Every metric name must be registered in :data:`METRIC_TABLE` — the one
central table the ``metrics-discipline`` lint rule checks call sites
against — and follow the naming discipline: ``snake_case``, counters end
in ``_total``, gauges and histograms end in a unit suffix (``_ms``,
``_bytes``, ``_ratio``, ``_count``).

Histograms use fixed log-spaced latency buckets (:data:`BUCKET_BOUNDS_MS`)
for exposition and retain raw samples (bounded ring by default) for
*exact* nearest-rank quantile extraction — the same formula the load
generator has always used, now in one place repo-wide.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    ContextManager,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..exceptions import ValidationError

#: Central metric-name table: every Counter/Gauge/Histogram name created
#: through a :class:`MetricsRegistry` anywhere in the repo must appear
#: here (enforced at runtime below and statically by the
#: ``metrics-discipline`` rule in ``repro.tools.check``).
METRIC_TABLE: Dict[str, str] = {
    # repro.api.cache — ResultCache
    "cache_hits_total": "Result-cache lookups answered from a live entry.",
    "cache_misses_total": "Result-cache lookups that fell through to evaluation.",
    "cache_evictions_total": "Result-cache entries evicted by LRU capacity pressure.",
    "cache_expirations_total": "Result-cache entries dropped after their TTL lapsed.",
    "cache_size_count": "Live (unexpired) entries currently held by the result cache.",
    "cache_generation_count": "Current result-cache generation tag (bumped on index swaps).",
    # repro.api.sharding — ShardedEngine resilience
    "sharding_pool_recoveries_total": "Crashed worker pools discarded and rebuilt from retained shard specs.",
    "sharding_partial_answers_total": "Fan-outs degraded to a PartialAnswer after retries were exhausted.",
    # repro.serving.service — AsyncSearchService
    "service_submitted_total": "Requests accepted into the micro-batch queue.",
    "service_completed_total": "Requests answered successfully (including partial answers).",
    "service_failed_total": "Requests that surfaced an error to their caller.",
    "service_cancelled_total": "Requests whose caller future was cancelled mid-flight.",
    "service_rejected_total": "Requests refused by admission control (queue plus in-flight full).",
    "service_deduplicated_total": "Requests coalesced onto an identical in-window request.",
    "service_deadline_exceeded_total": "Requests that exhausted their end-to-end deadline.",
    "service_partial_answers_total": "Requests answered with a degraded PartialAnswer.",
    "service_batches_total": "Micro-batch windows dispatched to the engine.",
    "service_batched_requests_total": "Requests carried by dispatched micro-batch windows.",
    "service_in_flight_count": "Requests currently evaluating in the engine executor.",
    "service_queue_depth_count": "Requests waiting in the current batch window.",
    "service_max_batch_count": "Largest micro-batch window dispatched so far.",
    "service_max_queue_depth_count": "High-water mark of the pending queue.",
    "service_latency_ms": "End-to-end submit-to-answer latency per request.",
    # repro.serving.replicas — ReplicaSet
    "replica_hedges_total": "Hedged duplicate dispatches launched after hedge_after_ms.",
    "replica_hedge_wins_total": "Hedged dispatches that finished before the primary replica.",
    "replica_failovers_total": "Batches retried on another replica after an infrastructure fault.",
    "replica_swaps_total": "Zero-downtime engine swaps completed.",
    # repro.faults — FaultInjector (labeled per site)
    "fault_calls_total": "Traversals of a fault-injection site, labeled by site.",
    "fault_fired_total": "Faults actually fired at a site, labeled by site.",
    # repro.obs.profile — KernelProfiler (labeled per stage / index kind)
    "kernel_eval_ms": "Sampled vectorized-kernel evaluation time, labeled by stage.",
    # repro.serving.loadgen
    "loadgen_latency_ms": "Load-generator observed end-to-end request latency.",
}

#: Fixed log-spaced histogram bucket upper bounds, in milliseconds:
#: 0.125 ms doubling up to ~16 s, plus the implicit +Inf bucket.
BUCKET_BOUNDS_MS: Tuple[float, ...] = tuple(0.125 * (2.0**i) for i in range(18))

#: Default per-histogram retained-sample ring size.  Quantiles are exact
#: while the observation count stays at or below this; afterwards they
#: are exact over the most recent window.  Pass ``sample_limit=None``
#: for unbounded retention (the load generator does, for exact run-wide
#: percentiles).
DEFAULT_SAMPLE_LIMIT = 4096

_SNAKE_CASE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Unit suffixes allowed on gauges and histograms; counters must end in
#: ``_total`` instead (Prometheus convention).
UNIT_SUFFIXES: Tuple[str, ...] = ("_ms", "_bytes", "_ratio", "_count")

LabelPairs = Tuple[Tuple[str, str], ...]


def check_metric_name(name: str, kind: str) -> None:
    """Validate *name* against the central table and naming discipline."""
    if name not in METRIC_TABLE:
        raise ValidationError(
            f"metric name {name!r} is not registered in repro.obs.metrics.METRIC_TABLE"
        )
    if not _SNAKE_CASE.match(name):
        raise ValidationError(f"metric name {name!r} is not snake_case")
    if kind == "counter":
        if not name.endswith("_total"):
            raise ValidationError(f"counter name {name!r} must end in '_total'")
    elif not name.endswith(UNIT_SUFFIXES):
        raise ValidationError(
            f"{kind} name {name!r} must end in a unit suffix {UNIT_SUFFIXES}"
        )


@dataclass(frozen=True)
class MetricSample:
    """One collected metric series, ready for exposition."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    labels: LabelPairs = ()
    value: float = 0.0
    # Histogram-only fields: cumulative (le, count) pairs ending at +inf.
    buckets: Tuple[Tuple[float, int], ...] = field(default=())
    sum: float = 0.0
    count: int = 0


class Counter:
    """Monotonic counter; increments and reads are lock-protected."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelPairs, lock: ContextManager[bool]) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0  # guarded-by: _lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        """Zero the counter (legacy ``reset_stats()`` views only)."""
        with self._lock:
            self._value = 0

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def _sample(self, help_text: str, extra: LabelPairs) -> MetricSample:
        return MetricSample(
            name=self.name, kind="counter", help=help_text,
            labels=extra + self.labels, value=float(self._value),
        )


class Gauge:
    """Point-in-time value: settable, inc/dec-able, or callback-backed."""

    __slots__ = ("name", "labels", "_lock", "_value", "_fn")

    def __init__(
        self,
        name: str,
        labels: LabelPairs,
        lock: ContextManager[bool],
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self._fn = fn
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the gauge to *value* if larger (high-water marks)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            if self._fn is not None:
                return float(self._fn())
            return self._value

    def _sample(self, help_text: str, extra: LabelPairs) -> MetricSample:
        current = float(self._fn()) if self._fn is not None else self._value
        return MetricSample(
            name=self.name, kind="gauge", help=help_text,
            labels=extra + self.labels, value=current,
        )


class Histogram:
    """Log-spaced-bucket histogram with exact nearest-rank quantiles.

    Bucket counts, sum, count, and max feed Prometheus exposition; a
    retained-sample ring (bounded by ``sample_limit``, unbounded when
    ``None``) feeds :meth:`quantile` — the repo's one quantile
    implementation, using the nearest-rank formula
    ``rank = max(0, min(n - 1, int(q * n)))`` over the sorted samples.
    """

    __slots__ = ("name", "labels", "_lock", "_bounds", "_counts", "_sum",
                 "_count", "_max", "_samples")

    def __init__(
        self,
        name: str,
        labels: LabelPairs,
        lock: ContextManager[bool],
        bounds: Tuple[float, ...] = BUCKET_BOUNDS_MS,
        sample_limit: Optional[int] = DEFAULT_SAMPLE_LIMIT,
    ) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._max = 0.0  # guarded-by: _lock
        self._samples: Deque[float] = deque(maxlen=sample_limit)  # guarded-by: _lock

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value
            self._counts[bisect_left(self._bounds, value)] += 1
            self._samples.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile over the retained samples."""
        with self._lock:
            values = sorted(self._samples)
        if not values:
            return 0.0
        rank = max(0, min(len(values) - 1, int(q * len(values))))
        return values[rank]

    def quantiles(self, qs: Iterable[float]) -> Dict[float, float]:
        """Several quantiles from one sort of the retained samples."""
        with self._lock:
            values = sorted(self._samples)
        out: Dict[float, float] = {}
        for q in qs:
            if not values:
                out[q] = 0.0
            else:
                out[q] = values[max(0, min(len(values) - 1, int(q * len(values))))]
        return out

    def _sample(self, help_text: str, extra: LabelPairs) -> MetricSample:
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self._bounds, self._counts):
            running += bucket_count
            cumulative.append((bound, running))
        cumulative.append((math.inf, self._count))
        return MetricSample(
            name=self.name, kind="histogram", help=help_text,
            labels=extra + self.labels,
            buckets=tuple(cumulative), sum=self._sum, count=self._count,
        )


class MetricsRegistry:
    """A named collection of metrics sharing one (re-entrant) lock.

    Components pass their own ``threading.RLock`` via ``lock=`` so that
    metric updates, legacy ``stats()`` snapshots, and :meth:`collect`
    all serialize on the same monitor; :meth:`hold` exposes that lock
    for grouped multi-metric updates.
    """

    def __init__(self, *, lock: Optional[ContextManager[bool]] = None) -> None:
        self._lock: ContextManager[bool] = threading.RLock() if lock is None else lock
        self._metrics: Dict[Tuple[str, LabelPairs], object] = {}  # guarded-by: _lock

    def hold(self) -> ContextManager[bool]:
        """The registry lock, for atomically grouped updates/snapshots."""
        return self._lock

    @staticmethod
    def _label_pairs(labels: Mapping[str, str]) -> LabelPairs:
        return tuple(sorted((str(k), str(v)) for k, v in labels.items()))

    def counter(self, name: str, **labels: str) -> Counter:
        check_metric_name(name, "counter")
        key = (name, self._label_pairs(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Counter(name, key[1], self._lock)
                self._metrics[key] = metric
            if not isinstance(metric, Counter):
                raise ValidationError(f"metric {name!r} already registered with another kind")
            return metric

    def gauge(
        self, name: str, fn: Optional[Callable[[], float]] = None, **labels: str
    ) -> Gauge:
        check_metric_name(name, "gauge")
        key = (name, self._label_pairs(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Gauge(name, key[1], self._lock, fn=fn)
                self._metrics[key] = metric
            if not isinstance(metric, Gauge):
                raise ValidationError(f"metric {name!r} already registered with another kind")
            return metric

    def histogram(
        self,
        name: str,
        *,
        bounds: Tuple[float, ...] = BUCKET_BOUNDS_MS,
        sample_limit: Optional[int] = DEFAULT_SAMPLE_LIMIT,
        **labels: str,
    ) -> Histogram:
        check_metric_name(name, "histogram")
        key = (name, self._label_pairs(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Histogram(name, key[1], self._lock, bounds=bounds,
                                   sample_limit=sample_limit)
                self._metrics[key] = metric
            if not isinstance(metric, Histogram):
                raise ValidationError(f"metric {name!r} already registered with another kind")
            return metric

    def collect(self, extra_labels: Optional[Mapping[str, str]] = None) -> List[MetricSample]:
        """One consistent snapshot of every metric, under one lock hold.

        ``extra_labels`` are prepended to each sample's label set — the
        hook replica sets use to tag per-replica engine registries with
        ``replica="N"`` at exposition time.
        """
        extra = self._label_pairs(extra_labels or {})
        samples: List[MetricSample] = []
        with self._lock:
            for (name, _), metric in sorted(self._metrics.items(), key=lambda kv: kv[0]):
                help_text = METRIC_TABLE[name]
                if isinstance(metric, Counter):
                    samples.append(metric._sample(help_text, extra))
                elif isinstance(metric, Gauge):
                    samples.append(metric._sample(help_text, extra))
                elif isinstance(metric, Histogram):
                    samples.append(metric._sample(help_text, extra))
        return samples


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _labels_text(labels: LabelPairs) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"' for key, value in labels)
    return "{" + inner + "}"


def render_prometheus(samples: Iterable[MetricSample]) -> str:
    """Render samples as Prometheus text exposition format.

    Samples from *multiple* registries are merged by metric name so each
    name gets exactly one ``# HELP`` / ``# TYPE`` block, with every
    labeled series listed beneath it — required when the same metric
    exists once per replica or per engine.
    """
    by_name: Dict[str, List[MetricSample]] = {}
    order: List[str] = []
    for sample in samples:
        if sample.name not in by_name:
            by_name[sample.name] = []
            order.append(sample.name)
        by_name[sample.name].append(sample)
    lines: List[str] = []
    for name in sorted(order):
        series = by_name[name]
        kind = series[0].kind
        lines.append(f"# HELP {name} {series[0].help}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in series:
            label_text = _labels_text(sample.labels)
            if kind == "histogram":
                for bound, cumulative in sample.buckets:
                    bucket_labels = sample.labels + (("le", _format_value(bound)),)
                    lines.append(
                        f"{name}_bucket{_labels_text(bucket_labels)} {cumulative}"
                    )
                lines.append(f"{name}_sum{label_text} {repr(float(sample.sum))}")
                lines.append(f"{name}_count{label_text} {sample.count}")
            else:
                lines.append(f"{name}{label_text} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"
