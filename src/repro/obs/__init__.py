"""Unified observability layer: metrics, request tracing, profiling.

``repro.obs`` is the shared telemetry substrate for the serving stack.
It deliberately sits *below* ``repro.api`` / ``repro.serving`` in the
import graph (it imports only the exception taxonomy), so every layer —
caches, sharded engines, the async batcher, replica routing, fault
injection, the load generator — can speak one metrics vocabulary without
import cycles.

Three pieces:

* :mod:`repro.obs.metrics` — a lock-safe :class:`MetricsRegistry` of
  counters, gauges, and histograms (fixed log-spaced latency buckets,
  exact nearest-rank quantiles), every name registered in the central
  :data:`METRIC_TABLE`, rendered to Prometheus text exposition format by
  :func:`render_prometheus`.
* :mod:`repro.obs.trace` — request-scoped :class:`Trace` span
  collection (flat thread-safe records assembled into a span tree) and
  the :class:`SlowQueryLog` worst-K ring buffer.
* :mod:`repro.obs.profile` — an opt-in sampling timer around the
  vectorized kernels, with the same module-global ``is None`` fast-path
  discipline as :mod:`repro.faults`.
"""

from .metrics import (
    BUCKET_BOUNDS_MS,
    METRIC_TABLE,
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    render_prometheus,
)
from .profile import KernelProfiler, active_profiler, profile_kernels
from .trace import SlowQueryLog, Trace

__all__ = [
    "BUCKET_BOUNDS_MS",
    "METRIC_TABLE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "render_prometheus",
    "KernelProfiler",
    "active_profiler",
    "profile_kernels",
    "SlowQueryLog",
    "Trace",
]
