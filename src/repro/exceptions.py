"""Exception hierarchy for the ``repro`` package.

All library errors derive from :class:`ReproError` so applications can catch
everything raised by this package with a single ``except`` clause while still
being able to distinguish validation problems from query-time problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied data fails validation.

    Examples: a position distribution whose probabilities do not sum to one,
    a probability outside ``[0, 1]``, or an empty uncertain string.
    """


class ThresholdError(ValidationError):
    """Raised when a probability threshold is outside its legal range.

    Query thresholds must satisfy ``tau_min <= tau <= 1`` where ``tau_min``
    is the construction-time threshold of the index being queried.
    """


class AlphabetError(ValidationError):
    """Raised when a character is not part of the expected alphabet."""


class QueryError(ReproError):
    """Raised when a query cannot be executed against an index."""


class PatternTooLongError(QueryError):
    """Raised when a pattern exceeds what an index was configured to answer.

    Only raised by indexes explicitly configured with
    ``long_pattern_mode="error"``; the default configuration falls back to a
    suffix-range scan for long patterns instead of raising.
    """


class ConstructionError(ReproError):
    """Raised when an index cannot be constructed from the given input."""


class ServiceOverloadedError(ReproError):
    """Raised when a serving front end rejects a request at admission.

    The :class:`repro.serving.AsyncSearchService` bounds its pending-request
    queue; once the bound is reached, new submissions fail fast with this
    error instead of growing the queue (and the tail latency) without limit.
    Callers should back off and retry.
    """


class NoHealthyReplicaError(ReproError):
    """Raised when a replica set has no healthy replica left to dispatch to.

    The :class:`repro.serving.ReplicaSet` tracks per-replica health and
    fails over around faulted replicas; once every replica has been marked
    unhealthy the set fails fast with this error (the HTTP tier maps it to
    a 503) instead of queueing work no copy of the index can answer.
    """


class ServiceStoppedError(ReproError, RuntimeError):
    """Raised when a request reaches a serving front end after ``stop()``.

    Derives from :class:`RuntimeError` as well so callers that treat a
    stopped service as a generic lifecycle error keep working; new code
    should catch :class:`ReproError` (or this class) instead.
    """


class WorkerError(ReproError, RuntimeError):
    """Raised when a shard worker process violates an internal invariant.

    Example: a query routed to a worker for a shard it does not own — or a
    worker pool that died (``BrokenProcessPool``) and could not be revived
    by the sharded engine's crash-recovery retry.  The class pickles across
    the process boundary, so the parent observes the same exception type
    the worker raised.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """Raised when a request outlives its end-to-end ``timeout_ms`` budget.

    Set :attr:`repro.api.requests.SearchRequest.timeout_ms` (or the
    ``timeout_ms`` wire parameter) to bound how long a caller waits: the
    serving tier stops waiting once the budget is spent, and the sharded
    engine stops waiting on its worker futures once the remaining budget
    runs out.  Derives from :class:`TimeoutError` as well, so generic
    timeout handling keeps working; the HTTP tier maps it to 504.
    """


class DrainTimeoutError(ReproError, TimeoutError):
    """Raised when a replica swap cannot drain in-flight batches in time.

    :meth:`repro.serving.ReplicaSet.swap` waits ``drain_timeout`` seconds
    for each retired replica's in-flight batches to finish before closing
    its engine; if they do not, the swap surfaces this instead of closing
    an engine mid-query.  TimeoutError-compatible; the HTTP tier maps it
    to 504 rather than letting it fall through to a generic 500.
    """


class InjectedFaultError(ReproError):
    """The error the fault-injection framework raises by default.

    Only ever raised on purpose, by an active :class:`repro.faults.FaultPlan`
    whose spec did not name a different taxonomy class — so a test (or an
    operator reading logs) can always tell an injected fault from an
    organic one.
    """


class CorrelationError(ValidationError):
    """Raised when a correlation rule is inconsistent with its string."""
