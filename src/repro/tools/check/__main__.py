"""Entry point: ``python -m repro.tools.check``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
