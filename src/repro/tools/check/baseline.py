"""Baseline (suppression) file support for the static-analysis suite.

A baseline is a JSON document mapping finding fingerprints to a short
record of what they suppressed::

    {
      "version": 1,
      "suppressions": {
        "3f2a9c1d0b44": {"rule": "hot-path-purity", "path": "core/base.py",
                          "message": "..."}
      }
    }

Fingerprints exclude line numbers, so unrelated edits do not invalidate
entries — but an entry whose finding no longer occurs is *stale* and is
reported as an error, so the baseline can only ever shrink.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from . import Finding


def load_baseline(path: Path) -> Dict[str, dict]:
    """Read ``path`` and return the suppression table (fingerprint → record)."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "suppressions" not in data:
        raise ValueError(f"{path}: not a baseline file (missing 'suppressions')")
    suppressions = data["suppressions"]
    if not isinstance(suppressions, dict):
        raise ValueError(f"{path}: 'suppressions' must be an object")
    return suppressions


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Write a baseline suppressing exactly ``findings``."""
    suppressions = {
        finding.fingerprint(): {
            "rule": finding.rule,
            "path": finding.path,
            "message": finding.message,
        }
        for finding in findings
    }
    payload = {"version": 1, "suppressions": suppressions}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def apply_baseline(
    findings: List[Finding], suppressions: Dict[str, dict]
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings into (active, suppressed) and report stale fingerprints."""
    active: List[Finding] = []
    suppressed: List[Finding] = []
    seen = set()
    for finding in findings:
        fingerprint = finding.fingerprint()
        if fingerprint in suppressions:
            suppressed.append(finding)
            seen.add(fingerprint)
        else:
            active.append(finding)
    stale = sorted(fp for fp in suppressions if fp not in seen)
    return active, suppressed, stale
