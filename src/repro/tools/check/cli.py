"""Command line for the static-analysis suite.

Usage::

    python -m repro.tools.check                      # all rules, installed repro
    python -m repro.tools.check --rule lock-discipline --rule hot-path-purity
    python -m repro.tools.check --root src/repro --format json
    python -m repro.tools.check --baseline check-baseline.json
    python -m repro.tools.check --write-baseline check-baseline.json

Exit codes: 0 clean, 1 findings (or stale baseline entries), 2 usage
error (unknown rule, unreadable baseline, bad root).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from . import Finding, run_checks
from .baseline import apply_baseline, load_baseline, write_baseline
from .rules import rule_names


def _default_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.check",
        description="Repo-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="directory to scan (default: the installed repro package)",
    )
    parser.add_argument(
        "--package",
        default=None,
        help="dotted package name for the root (default: the root directory name)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help=f"run only this rule (repeatable); known: {', '.join(rule_names())}",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="JSON baseline file; listed fingerprints are suppressed, "
        "stale entries are an error",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="write current findings to PATH as a baseline and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list available rules and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    out = sys.stdout

    if options.list_rules:
        from .rules import ALL_RULES

        for rule in ALL_RULES:
            print(f"{rule.name}: {rule.description}", file=out)
        return 0

    root = options.root if options.root is not None else _default_root()
    if not root.is_dir():
        print(f"error: scan root {root} is not a directory", file=sys.stderr)
        return 2
    package = options.package
    if options.root is None and package is None:
        package = "repro"

    try:
        findings = run_checks(root, rule_names=options.rules, package=package)
    except ValueError as exc:  # unknown rule name
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if options.write_baseline is not None:
        write_baseline(options.write_baseline, findings)
        print(
            f"wrote baseline with {len(findings)} suppression(s) to "
            f"{options.write_baseline}",
            file=out,
        )
        return 0

    suppressed: List[Finding] = []
    stale: List[str] = []
    if options.baseline is not None:
        try:
            table = load_baseline(options.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        findings, suppressed, stale = apply_baseline(findings, table)

    if options.format == "json":
        document = {
            "findings": [
                {
                    "path": finding.path,
                    "line": finding.line,
                    "rule": finding.rule,
                    "message": finding.message,
                    "fingerprint": finding.fingerprint(),
                }
                for finding in findings
            ],
            "suppressed": len(suppressed),
            "stale_baseline_entries": stale,
        }
        print(json.dumps(document, indent=2), file=out)
    else:
        for finding in findings:
            print(finding.render(), file=out)
        for fingerprint in stale:
            print(
                f"baseline: stale suppression {fingerprint} — the finding no "
                "longer occurs; remove it from the baseline",
                file=out,
            )
        summary = f"{len(findings)} finding(s)"
        if suppressed:
            summary += f", {len(suppressed)} suppressed"
        if stale:
            summary += f", {len(stale)} stale baseline entr(y/ies)"
        print(summary, file=out)

    return 1 if findings or stale else 0
