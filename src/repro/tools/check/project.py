"""Project model for the static-analysis suite.

Loads every Python module under a scan root once, parses it, attaches
parent links to the AST, extracts comments (via :mod:`tokenize`, so rules
can see ``# guarded-by:`` annotations and ``# repro-check:`` pragmas) and
module-level string constants (so rules can resolve schema names written
as ``SCHEMA = "index/special"`` or simple concatenations thereof).

Rules receive one :class:`Project` and never touch the filesystem
themselves, which is what makes them trivially testable against fixture
trees.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

#: Prefix shared by every in-source pragma the suite understands.
PRAGMA = "repro-check:"

_GUARDED_BY = re.compile(r"guarded-by:\s*([A-Za-z_][A-Za-z0-9_-]*)")
_ALLOW = re.compile(r"repro-check:\s*allow\(([a-z-]+)\)")
_MARKER = re.compile(r"repro-check:\s*([a-z-]+)")


def attach_parents(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Map every node to its parent so rules can walk *up* the tree."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _extract_comments(source: str) -> Dict[int, str]:
    """``{line: comment text}`` for every comment token in ``source``."""
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except tokenize.TokenError:  # pragma: no cover - unparseable tail
        pass
    return comments


def _string_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments (schema constants)."""
    constants: Dict[str, str] = {}
    for node in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        folded = _fold_string(value, constants)
        if folded is not None:
            constants[target.id] = folded
    return constants


def _fold_string(node: ast.expr, constants: Dict[str, str]) -> Optional[str]:
    """Evaluate a string literal / constant name / ``+`` concatenation."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    if isinstance(node, ast.Attribute):
        # Cross-module constant reference (``payload.PATH_SEPARATOR``) —
        # the attribute name is resolved by the caller against the project.
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _fold_string(node.left, constants)
        right = _fold_string(node.right, constants)
        if left is not None and right is not None:
            return left + right
    return None


class ModuleInfo:
    """One parsed module plus the side tables rules need."""

    def __init__(self, path: Path, relpath: str, name: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.name = name
        self.source = source
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.parents = attach_parents(self.tree)
        self.comments = _extract_comments(source)
        self.constants = _string_constants(self.tree)

    # -- pragma and annotation helpers ---------------------------------------------
    def has_marker(self, marker: str) -> bool:
        """Whether any ``# repro-check: <marker>`` comment appears in the module."""
        for text in self.comments.values():
            match = _MARKER.search(text)
            if match is not None and match.group(1) == marker:
                return True
        return False

    def allows(self, rule: str, line: int) -> bool:
        """Whether line carries ``# repro-check: allow(<rule>)``."""
        text = self.comments.get(line, "")
        match = _ALLOW.search(text)
        return match is not None and match.group(1) == rule

    def guard_annotation(self, line: int) -> Optional[str]:
        """Name from a ``# guarded-by: <lock>`` comment on ``line``, if any."""
        match = _GUARDED_BY.search(self.comments.get(line, ""))
        return match.group(1) if match is not None else None

    def resolve_string(self, node: ast.expr) -> Optional[str]:
        """Best-effort static value of a string expression in this module."""
        return _fold_string(node, self.constants)

    # -- tree helpers ---------------------------------------------------------------
    def enclosing(self, node: ast.AST, *kinds: type) -> Optional[ast.AST]:
        """Nearest ancestor of one of ``kinds`` (not crossing anything)."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, kinds):
                return current
            current = self.parents.get(current)
        return None

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        return self.enclosing(node, ast.FunctionDef, ast.AsyncFunctionDef)

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        """Nearest class ``node`` lives in, looking through method bodies."""
        found = self.enclosing(node, ast.ClassDef)
        return found if isinstance(found, ast.ClassDef) else None

    def ancestors_until_function(self, node: ast.AST) -> Iterator[ast.AST]:
        """Ancestors of ``node`` up to (excluding) the enclosing function."""
        current = self.parents.get(node)
        while current is not None and not isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module, ast.ClassDef)
        ):
            yield current
            current = self.parents.get(current)


class Project:
    """Every module under one scan root, parsed once and shared by rules."""

    def __init__(self, root: Path, modules: List[ModuleInfo], errors: List[Tuple[str, int, str]]):
        self.root = root
        self.modules = modules
        #: ``(relpath, line, message)`` for files that failed to parse.
        self.errors = errors

    @classmethod
    def load(cls, root: Path, package: Optional[str] = None) -> "Project":
        root = root.resolve()
        prefix = package if package is not None else root.name
        modules: List[ModuleInfo] = []
        errors: List[Tuple[str, int, str]] = []
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root)
            relpath = rel.as_posix()
            parts = list(rel.with_suffix("").parts)
            if parts and parts[-1] == "__init__":
                parts = parts[:-1]
            name = ".".join([prefix] + parts) if parts else prefix
            source = path.read_text(encoding="utf-8")
            try:
                modules.append(ModuleInfo(path, relpath, name, source))
            except SyntaxError as exc:
                errors.append((relpath, exc.lineno or 1, f"syntax error: {exc.msg}"))
        return cls(root, modules, errors)

    def find_module(self, suffix: str) -> Optional[ModuleInfo]:
        """Module whose dotted name ends with ``suffix`` (e.g. ``payload``)."""
        for module in self.modules:
            if module.name == suffix or module.name.endswith("." + suffix):
                return module
        return None


def call_name(func: ast.expr) -> Optional[str]:
    """Terminal identifier of a call target (``a.b.c(...)`` → ``c``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
