"""Repo-aware static analysis for the repro codebase.

Run as ``python -m repro.tools.check``.  The suite parses every module
under a scan root (the installed ``repro`` package by default) once and
runs pluggable AST rules over the shared :class:`~.project.Project`:

``payload-schema``
    Every constructed payload schema is registered in
    ``repro.payload.SCHEMA_REGISTRY``, registered schemas are actually
    constructed or dispatched somewhere, ``index/*`` schemas are unique
    per index class, and the persistence kind table covers exactly the
    registered ``index/*`` schemas.
``worker-boundary``
    Process-pool submissions ship only plain data (payloads, paths,
    plans, flat arrays) — never engines, indexes, caches or locks.
``exception-taxonomy``
    ``raise`` statements in ``api``/``serving`` modules use classes from
    :mod:`repro.exceptions` (or a small set of builtin validation
    errors).
``hot-path-purity``
    Modules marked ``# repro-check: hot-path`` keep per-element Python
    work out of query paths (no ``math.*`` in loops, no list-append
    accumulation in ``for`` loops, no ``range(len(...))`` iteration)
    outside ``*_scalar`` reference functions.
``lock-discipline``
    Attributes annotated ``# guarded-by: <lock>`` are only mutated under
    ``with <lock>`` (or, for the ``event-loop`` pseudo-lock, only by the
    owning class).

Findings can be suppressed by fingerprint through a JSON baseline file;
stale baseline entries are themselves an error so the baseline can only
shrink.  See ``repro.tools.check.cli`` for the command line.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from .project import Project

__all__ = ["Finding", "Rule", "run_checks", "Project"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    rule: str
    message: str

    def fingerprint(self) -> str:
        """Stable id for baseline suppression (line-number independent)."""
        raw = f"{self.rule}::{self.path}::{self.message}"
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:12]

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule:
    """Base class for pluggable checks.

    Subclasses set :attr:`name` / :attr:`description` and implement
    :meth:`check`, yielding :class:`Finding` objects.  A rule must not
    mutate the project; several rules share one parsed tree.
    """

    name: str = ""
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module_relpath: str, line: int, message: str) -> Finding:
        return Finding(path=module_relpath, line=line, rule=self.name, message=message)


def run_checks(
    root: Path,
    rule_names: Optional[Sequence[str]] = None,
    package: Optional[str] = None,
) -> List[Finding]:
    """Load ``root`` and run the (selected) rules; findings come back sorted."""
    from .rules import get_rules

    project = Project.load(root, package=package)
    findings: List[Finding] = [
        Finding(path=relpath, line=line, rule="parse", message=message)
        for relpath, line, message in project.errors
    ]
    for rule in get_rules(rule_names):
        findings.extend(rule.check(project))
    return sorted(findings)
