"""metrics-discipline: metric names form a closed, well-formed vocabulary.

Every ``Counter`` / ``Gauge`` / ``Histogram`` a :class:`MetricsRegistry`
creates is keyed by name, and the ``/metrics`` exposition merges series
from many registries by that name — so an unregistered or misspelled
name silently forks a metric, and a name without the conventional suffix
misleads every dashboard built on it.  This rule checks, across the
whole scan root:

* every ``.counter("...")`` / ``.gauge("...")`` / ``.histogram("...")``
  call whose name resolves statically names an entry of
  ``repro.obs.metrics.METRIC_TABLE`` (the one central name table);
* metric names are ``snake_case``;
* counter names end in ``_total`` and gauge/histogram names end in a
  unit suffix (``_ms``, ``_bytes``, ``_ratio``, ``_count``) — the
  Prometheus naming conventions the exposition relies on;
* every registered name is actually created somewhere, so the table
  cannot rot.

The runtime enforces the same contract per call
(:func:`repro.obs.metrics.check_metric_name`); this rule catches the
violations before anything runs, including names only reachable on
error paths.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Tuple

from .. import Finding, Rule
from ..project import ModuleInfo, Project
from .payload_schema import _find_dict_of_strings

#: Registry factory methods, mapped to the metric kind they create.
_FACTORIES: Dict[str, str] = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
}

_SNAKE_CASE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Unit suffixes allowed on gauges and histograms (counters take
#: ``_total``).  Mirrors ``repro.obs.metrics.UNIT_SUFFIXES``.
UNIT_SUFFIXES: Tuple[str, ...] = ("_ms", "_bytes", "_ratio", "_count")


def _metric_name(module: ModuleInfo, node: ast.Call) -> str | None:
    """The statically-resolvable metric name of a factory call, if any."""
    if node.args:
        return module.resolve_string(node.args[0])
    for keyword in node.keywords:
        if keyword.arg == "name":
            return module.resolve_string(keyword.value)
    return None


class MetricsDisciplineRule(Rule):
    name = "metrics-discipline"
    description = (
        "metric names are registered in METRIC_TABLE, snake_case, and unit-suffixed"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        located = _find_dict_of_strings(project, "METRIC_TABLE", values=False)
        if located is None:
            yield Finding(
                path=".",
                line=1,
                rule=self.name,
                message="no module defines METRIC_TABLE (central metric-name table)",
            )
            return
        table_module, table_node, table = located

        created: List[str] = []
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute) and func.attr in _FACTORIES
                ):
                    continue
                kind = _FACTORIES[func.attr]
                metric = _metric_name(module, node)
                if metric is None:
                    continue
                created.append(metric)
                if metric not in table:
                    yield self.finding(
                        module.relpath,
                        node.lineno,
                        f"metric {metric!r} is created but not registered in METRIC_TABLE",
                    )
                    continue
                if not _SNAKE_CASE.match(metric):
                    yield self.finding(
                        module.relpath,
                        node.lineno,
                        f"metric {metric!r} is not snake_case",
                    )
                if kind == "counter":
                    if not metric.endswith("_total"):
                        yield self.finding(
                            module.relpath,
                            node.lineno,
                            f"counter {metric!r} must end in '_total'",
                        )
                elif not metric.endswith(UNIT_SUFFIXES):
                    yield self.finding(
                        module.relpath,
                        node.lineno,
                        f"{kind} {metric!r} must end in a unit suffix "
                        f"{UNIT_SUFFIXES}",
                    )

        # Registered names must be alive: created by some call site.
        alive = set(created)
        for metric in sorted(table):
            if metric not in alive:
                yield self.finding(
                    table_module.relpath,
                    table_node.lineno,
                    f"registered metric {metric!r} is never created",
                )
