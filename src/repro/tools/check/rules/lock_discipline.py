"""lock-discipline: ``# guarded-by:`` annotations are honoured.

Shared mutable state in the façade declares its lock with a trailing
comment on the attribute's initialising assignment::

    self._entries = OrderedDict()   # guarded-by: _lock
    _calibration_state = {}         # guarded-by: _calibration_lock

The rule registers every annotated attribute (instance attributes
initialised in a class body, and module-level globals) and then verifies
that each mutation — assignment, augmented assignment, ``del``,
subscript store, or a mutating method call such as ``.append`` /
``.update`` — happens lexically inside a ``with`` over the named lock in
the same function.  The initialising method (``__init__``) is exempt:
the object is not shared before construction completes.

The pseudo-lock ``event-loop`` declares single-owner state: attributes
mutated only from methods of the declaring class (everything runs on the
service's event loop, so no lock object exists).  For those, the rule
flags mutations through any receiver other than ``self``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .. import Finding, Rule
from ..project import ModuleInfo, Project

EVENT_LOOP = "event-loop"

MUTATORS = {
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "insert",
    "remove",
    "pop",
    "popitem",
    "popleft",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "move_to_end",
    "sort",
    "reverse",
}


def _self_attr(node: ast.expr) -> Optional[str]:
    """Attribute name when ``node`` is ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _flatten_targets(target.value)
    else:
        yield target


def _store_root(target: ast.expr) -> ast.expr:
    """The object being mutated by a store target (unwrap subscripts)."""
    while isinstance(target, ast.Subscript):
        target = target.value
    return target


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = "guarded-by annotated state is only mutated under its lock"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if "guarded-by" not in module.source:
                continue
            class_guards, module_guards = self._collect_guards(module)
            event_loop_attrs = {
                attr
                for guards in class_guards.values()
                for attr, guard in guards.items()
                if guard == EVENT_LOOP
            }
            for cls, guards in class_guards.items():
                yield from self._check_class(module, cls, guards)
            yield from self._check_module_globals(module, module_guards)
            yield from self._check_foreign_mutations(module, class_guards, event_loop_attrs)

    # -- registration ---------------------------------------------------------------
    def _collect_guards(
        self, module: ModuleInfo
    ) -> Tuple[Dict[ast.ClassDef, Dict[str, str]], Dict[str, str]]:
        class_guards: Dict[ast.ClassDef, Dict[str, str]] = {}
        module_guards: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            target: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            else:
                continue
            guard = module.guard_annotation(node.lineno)
            if guard is None:
                continue
            attr = _self_attr(target)
            if attr is not None:
                cls = module.enclosing_class(node)
                if cls is not None:
                    class_guards.setdefault(cls, {})[attr] = guard
            elif isinstance(target, ast.Name) and module.enclosing_function(node) is None:
                module_guards[target.id] = guard
        return class_guards, module_guards

    # -- instance attributes ---------------------------------------------------------
    def _check_class(
        self, module: ModuleInfo, cls: ast.ClassDef, guards: Dict[str, str]
    ) -> Iterator[Finding]:
        for node in ast.walk(cls):
            func = module.enclosing_function(node)
            if func is None or getattr(func, "name", "") == "__init__":
                continue
            if module.enclosing_class(func) is not cls:
                continue
            for attr, mutation_line in self._attr_mutations(node, guards):
                guard = guards[attr]
                if guard == EVENT_LOOP:
                    continue  # owner-class mutation; foreign receivers are
                    # checked in _check_foreign_mutations.
                if not self._under_lock(module, node, func, guard, receiver="self"):
                    yield self.finding(
                        module.relpath,
                        mutation_line,
                        f"{cls.name}.{attr} is guarded-by {guard} but mutated "
                        f"outside `with self.{guard}`",
                    )

    def _attr_mutations(
        self, node: ast.AST, guards: Dict[str, str]
    ) -> Iterator[Tuple[str, int]]:
        """(attr, line) pairs for guarded ``self.<attr>`` mutations at ``node``."""
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            for target in node.targets:
                targets.extend(_flatten_targets(target))
        elif isinstance(node, ast.AugAssign):
            targets.append(node.target)
        elif isinstance(node, ast.Delete):
            targets.extend(node.targets)
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and node.func.attr in MUTATORS:
                attr = _self_attr(node.func.value)
                if attr is not None and attr in guards:
                    yield attr, node.lineno
            return
        for target in targets:
            attr = _self_attr(_store_root(target))
            if attr is not None and attr in guards:
                yield attr, target.lineno

    # -- module globals ---------------------------------------------------------------
    def _check_module_globals(
        self, module: ModuleInfo, guards: Dict[str, str]
    ) -> Iterator[Finding]:
        if not guards:
            return
        for node in ast.walk(module.tree):
            func = module.enclosing_function(node)
            if func is None:
                continue  # the initialising module-level assignment
            name: Optional[str] = None
            line = getattr(node, "lineno", 0)
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                raw_targets = node.targets if not isinstance(node, ast.AugAssign) else [node.target]
                for target in raw_targets:
                    for flat in _flatten_targets(target):
                        root = _store_root(flat)
                        if isinstance(root, ast.Name) and root.id in guards:
                            name = root.id
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute) and node.func.attr in MUTATORS:
                    value = node.func.value
                    if isinstance(value, ast.Name) and value.id in guards:
                        name = value.id
            if name is None:
                continue
            guard = guards[name]
            if not self._under_lock(module, node, func, guard, receiver=None):
                yield self.finding(
                    module.relpath,
                    line,
                    f"{name} is guarded-by {guard} but mutated outside `with {guard}`",
                )

    # -- event-loop state -------------------------------------------------------------
    def _check_foreign_mutations(
        self,
        module: ModuleInfo,
        class_guards: Dict[ast.ClassDef, Dict[str, str]],
        event_loop_attrs: Set[str],
    ) -> Iterator[Finding]:
        if not event_loop_attrs:
            return
        for node in ast.walk(module.tree):
            attr: Optional[str] = None
            line = getattr(node, "lineno", 0)
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                raw_targets = node.targets if not isinstance(node, ast.AugAssign) else [node.target]
                for target in raw_targets:
                    for flat in _flatten_targets(target):
                        root = _store_root(flat)
                        if (
                            isinstance(root, ast.Attribute)
                            and root.attr in event_loop_attrs
                            and not (
                                isinstance(root.value, ast.Name) and root.value.id == "self"
                            )
                        ):
                            attr = root.attr
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATORS
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr in event_loop_attrs
                    and not (
                        isinstance(node.func.value.value, ast.Name)
                        and node.func.value.value.id == "self"
                    )
                ):
                    attr = node.func.value.attr
            if attr is not None:
                yield self.finding(
                    module.relpath,
                    line,
                    f"{attr} is event-loop state of its owning class but is "
                    "mutated through a foreign receiver",
                )

    # -- lock matching ----------------------------------------------------------------
    def _under_lock(
        self,
        module: ModuleInfo,
        node: ast.AST,
        func: ast.AST,
        guard: str,
        receiver: Optional[str],
    ) -> bool:
        """Whether ``node`` sits inside ``with <guard>`` within ``func``."""
        current = module.parents.get(node)
        while current is not None and current is not func:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            if isinstance(current, (ast.With, ast.AsyncWith)):
                for item in current.items:
                    expr = item.context_expr
                    if receiver == "self":
                        if _self_attr(expr) == guard:
                            return True
                    if isinstance(expr, ast.Name) and expr.id == guard:
                        return True
            current = module.parents.get(current)
        return False
