"""hot-path-purity: query kernels stay vectorized.

Modules that opt in with a ``# repro-check: hot-path`` comment promise
their query paths do array-at-a-time work (numpy) rather than
per-element Python.  Inside every function of a marked module the rule
flags the three regression patterns that historically crept in:

* a ``math.*`` scalar call inside a loop or comprehension,
* list accumulation (``.append`` / ``.extend`` / ``.insert``) inside a
  ``for`` statement (``while`` chunk loops are allowed — those iterate
  over blocks, not elements),
* ``for i in range(len(...))`` index iteration.

Escapes: functions named ``*_scalar`` (the intentionally slow reference
implementations used by property tests), and a
``# repro-check: allow(hot-path-purity)`` pragma on the ``def`` line for
deliberate exceptions such as API-boundary conversions.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .. import Finding, Rule
from ..project import ModuleInfo, Project

MARKER = "hot-path"
ACCUMULATORS = {"append", "extend", "insert"}
LOOPS = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


class HotPathPurityRule(Rule):
    name = "hot-path-purity"
    description = "hot modules avoid per-element Python work"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not module.has_marker(MARKER):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.name.endswith("_scalar"):
                        continue
                    if module.allows(self.name, node.lineno):
                        continue
                    yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleInfo, func: ast.AST
    ) -> Iterator["Finding"]:
        for node in ast.walk(func):
            if node is not func and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are visited on their own
            if module.enclosing_function(node) is not func:
                continue
            if isinstance(node, ast.Call):
                yield from self._check_call(module, func, node)
            elif isinstance(node, ast.For):
                yield from self._check_for(module, func, node)

    def _check_call(self, module: ModuleInfo, func: ast.AST, node: ast.Call) -> Iterator["Finding"]:
        target = node.func
        # math.* scalar call inside any loop or comprehension.
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "math"
            and self._loop_context(module, func, node) is not None
        ):
            yield self.finding(
                module.relpath,
                node.lineno,
                f"math.{target.attr} called per element in a loop "
                f"(in {getattr(func, 'name', '?')}); vectorize with numpy",
            )
        # list accumulation inside a for statement.
        if (
            isinstance(target, ast.Attribute)
            and target.attr in ACCUMULATORS
            and isinstance(self._loop_context(module, func, node), ast.For)
        ):
            yield self.finding(
                module.relpath,
                node.lineno,
                f".{target.attr} accumulation inside a for loop "
                f"(in {getattr(func, 'name', '?')}); build arrays instead",
            )

    def _check_for(self, module: ModuleInfo, func: ast.AST, node: ast.For) -> Iterator["Finding"]:
        # for i in range(len(...)) — index iteration over per-element data.
        iterator = node.iter
        if not (isinstance(iterator, ast.Call) and isinstance(iterator.func, ast.Name)):
            return
        if iterator.func.id != "range" or len(iterator.args) != 1:
            return
        arg = iterator.args[0]
        if isinstance(arg, ast.Call) and isinstance(arg.func, ast.Name) and arg.func.id == "len":
            yield self.finding(
                module.relpath,
                node.lineno,
                f"for-over-range(len(...)) iteration (in {getattr(func, 'name', '?')}); "
                "use vectorized indexing",
            )

    def _loop_context(
        self, module: ModuleInfo, func: ast.AST, node: ast.AST
    ) -> Optional[ast.AST]:
        """Nearest enclosing loop of ``node`` within ``func``, if any."""
        current = module.parents.get(node)
        while current is not None and current is not func:
            if isinstance(current, LOOPS):
                return current
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None
            current = module.parents.get(current)
        return None
