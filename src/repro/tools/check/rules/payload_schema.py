"""payload-schema: schema names form a closed, registered vocabulary.

The persistence layer dispatches restores on ``IndexPayload.schema``
strings, so an unregistered or colliding schema silently breaks
round-tripping.  This rule checks, across the whole scan root:

* every ``IndexPayload(schema=...)`` construction whose schema resolves
  statically names an entry of ``repro.payload.SCHEMA_REGISTRY``;
* every registered schema is actually *used* — constructed somewhere, or
  dispatched on (an ``== SCHEMA`` comparison or ``expect_schema`` call),
  so the registry cannot rot;
* ``index/*`` schemas are constructed by exactly one index class (RMQ
  schemas are deliberately shared between equivalent implementations);
* the persistence kind table (``_KIND_BY_CLASS``) and the registered
  ``index/*`` schemas cover each other exactly.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .. import Finding, Rule
from ..project import ModuleInfo, Project, call_name

INDEX_PREFIX = "index/"


def _find_dict_of_strings(
    project: Project, target_name: str, values: bool
) -> Optional[Tuple[ModuleInfo, ast.AST, Set[str]]]:
    """Locate a module-level ``target_name = {...}`` and collect its string
    keys (``values=False``) or values (``values=True``)."""
    for module in project.modules:
        for node in module.tree.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not (isinstance(target, ast.Name) and target.id == target_name):
                continue
            if not isinstance(value, ast.Dict):
                continue
            out: Set[str] = set()
            entries = value.values if values else value.keys
            for entry in entries:
                if entry is None:
                    continue
                folded = module.resolve_string(entry)
                if folded is not None:
                    out.add(folded)
            return module, node, out
    return None


class PayloadSchemaRule(Rule):
    name = "payload-schema"
    description = "payload schemas are registered, used, unique, and persisted"

    def check(self, project: Project) -> Iterator[Finding]:
        located = _find_dict_of_strings(project, "SCHEMA_REGISTRY", values=False)
        if located is None:
            yield Finding(
                path=".",
                line=1,
                rule=self.name,
                message="no module defines SCHEMA_REGISTRY (central schema registry)",
            )
            return
        registry_module, registry_node, registry = located

        constructed: Dict[str, List[Tuple[ModuleInfo, int, Optional[str]]]] = {}
        dispatched: Set[str] = set()

        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    name = call_name(node.func)
                    if name == "IndexPayload":
                        schema = self._construction_schema(module, node)
                        if schema is None:
                            continue
                        cls = module.enclosing_class(node)
                        constructed.setdefault(schema, []).append(
                            (module, node.lineno, cls.name if cls else None)
                        )
                        if schema not in registry and module is not registry_module:
                            yield self.finding(
                                module.relpath,
                                node.lineno,
                                f"schema {schema!r} is constructed but not in SCHEMA_REGISTRY",
                            )
                    elif name == "expect_schema" and len(node.args) >= 2:
                        folded = module.resolve_string(node.args[1])
                        if folded is not None:
                            dispatched.add(folded)
                elif isinstance(node, ast.Compare) and len(node.comparators) == 1:
                    for side in (node.left, node.comparators[0]):
                        folded = module.resolve_string(side)
                        if folded is not None and folded in registry:
                            dispatched.add(folded)

        # Registered schemas must be alive: constructed or dispatched on.
        for schema in sorted(registry):
            if schema not in constructed and schema not in dispatched:
                yield self.finding(
                    registry_module.relpath,
                    registry_node.lineno,
                    f"registered schema {schema!r} is neither constructed nor dispatched",
                )

        # index/* schemas identify one index class each.
        for schema, sites in sorted(constructed.items()):
            if not schema.startswith(INDEX_PREFIX):
                continue
            classes = {cls for (_, _, cls) in sites if cls is not None}
            if len(classes) > 1:
                module, line, _ = sites[-1]
                owners = ", ".join(sorted(classes))
                yield self.finding(
                    module.relpath,
                    line,
                    f"index schema {schema!r} is constructed by multiple classes ({owners})",
                )

        # Persistence dispatch covers exactly the registered index schemas.
        kinds_located = _find_dict_of_strings(project, "_KIND_BY_CLASS", values=True)
        if kinds_located is None:
            return
        kinds_module, kinds_node, kinds = kinds_located
        registered_kinds = {
            schema[len(INDEX_PREFIX):] for schema in registry if schema.startswith(INDEX_PREFIX)
        }
        for kind in sorted(registered_kinds - kinds):
            yield self.finding(
                kinds_module.relpath,
                kinds_node.lineno,
                f"registered schema {INDEX_PREFIX + kind!r} has no persistence kind entry",
            )
        for kind in sorted(kinds - registered_kinds):
            yield self.finding(
                kinds_module.relpath,
                kinds_node.lineno,
                f"persistence kind {kind!r} has no registered {INDEX_PREFIX}* schema",
            )

    @staticmethod
    def _construction_schema(module: ModuleInfo, node: ast.Call) -> Optional[str]:
        for keyword in node.keywords:
            if keyword.arg == "schema":
                return module.resolve_string(keyword.value)
        if node.args:
            return module.resolve_string(node.args[0])
        return None
