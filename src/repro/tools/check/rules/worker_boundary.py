"""worker-boundary: process pools ship data, not live objects.

The sharded engine fans work out over ``ProcessPoolExecutor``; everything
crossing that boundary is pickled into a child interpreter.  Shipping an
engine, index, cache or lock either fails to pickle or — worse — silently
duplicates megabytes of index state per task.  The contract is that only
plain data crosses: payloads, archive paths, query plans, and flat
arrays/tuples derived from them.

The rule finds every submission onto a process pool (``pool.submit``,
``pool.map``, and ``ProcessPoolExecutor(initializer=..., initargs=...)``)
and checks lexically that

* the submitted callable is a dedicated worker entry point (a name ending
  in ``_worker`` or ``_payload``) — not a lambda, not a bound method;
* no argument expression mentions a live-object identifier (``engine``,
  ``index``, ``pool``, ``cache``, ``rmq``, ``lock``, ``self``, ...)
  outside a whitelisted converter call such as ``index_to_payload``,
  ``export_for_index`` or a shared-memory export's ``spec()`` — a block
  *name* plus array layout is shippable currency (the worker attaches by
  name; no array bytes are pickled), the export object itself is not.

Pools are recognised by assignment/with-binding from a
``ProcessPoolExecutor(...)`` call, by annotations mentioning the type, or
by calls to same-module helpers whose return annotation mentions it.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from .. import Finding, Rule
from ..project import ModuleInfo, Project, call_name

POOL_TYPE = "ProcessPoolExecutor"

#: Callables that may be submitted across the process boundary.
WORKER_NAME = re.compile(r"(_worker|_payload)$")

#: Converter calls whose result is plain data — arguments are not descended.
#: ``export_for_index`` / ``spec`` cover the shared-memory boundary: the
#: spec tuple carries a block name and an array layout, never the arrays.
CONVERTERS = {
    "index_to_payload",
    "export_for_index",
    "spec",
    "matches_to_arrays",
    "str",
    "int",
    "float",
    "len",
    "tuple",
    "list",
    "dict",
    "sorted",
}

#: Identifier roots that denote live objects which must never be shipped.
BANNED = {
    "self",
    "engine",
    "engines",
    "_engine",
    "_engines",
    "index",
    "indexes",
    "_index",
    "_indexes",
    "executor",
    "_executor",
    "pool",
    "pools",
    "_pool",
    "_pools",
    "_process_pools",
    "cache",
    "_cache",
    "rmq",
    "_rmq",
    "lock",
    "_lock",
    # Shared-memory exports hold live SharedMemory handles; only their
    # spec() tuple (block name + layout) may cross the boundary.
    "export",
    "exports",
    "_export",
    "_exports",
    "_shm_exports",
}


def _annotation_mentions_pool(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    return POOL_TYPE in ast.dump(node)


def _pool_returning_helpers(module: ModuleInfo) -> Set[str]:
    """Names of same-module functions whose return annotation mentions pools."""
    helpers: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _annotation_mentions_pool(node.returns):
                helpers.add(node.name)
    return helpers


def _pool_names(module: ModuleInfo, helpers: Set[str]) -> Set[str]:
    """Local/attribute names bound to a process pool anywhere in the module."""
    names: Set[str] = set()

    def is_pool_expr(value: ast.expr) -> bool:
        if isinstance(value, ast.Call):
            name = call_name(value.func)
            return name == POOL_TYPE or name in helpers
        return False

    def note(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign) and is_pool_expr(node.value):
            for target in node.targets:
                note(target)
        elif isinstance(node, ast.AnnAssign):
            if _annotation_mentions_pool(node.annotation) or (
                node.value is not None and is_pool_expr(node.value)
            ):
                note(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None and is_pool_expr(item.context_expr):
                    note(item.optional_vars)
        elif isinstance(node, ast.arg) and _annotation_mentions_pool(node.annotation):
            names.add(node.arg)
    return names


class WorkerBoundaryRule(Rule):
    name = "worker-boundary"
    description = "process-pool submissions carry only plain data"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if POOL_TYPE not in module.source:
                continue
            helpers = _pool_returning_helpers(module)
            pool_names = _pool_names(module, helpers)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if call_name(node.func) == POOL_TYPE:
                    yield from self._check_constructor(module, node)
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr not in {"submit", "map"}:
                    continue
                if not self._is_pool(node.func.value, pool_names, helpers):
                    continue
                yield from self._check_submission(module, node)

    # -- helpers --------------------------------------------------------------------
    def _is_pool(self, value: ast.expr, pool_names: Set[str], helpers: Set[str]) -> bool:
        if isinstance(value, ast.Name):
            return value.id in pool_names
        if isinstance(value, ast.Attribute):
            return value.attr in pool_names
        if isinstance(value, ast.Subscript):
            return self._is_pool(value.value, pool_names, helpers)
        if isinstance(value, ast.Call):
            name = call_name(value.func)
            return name == POOL_TYPE or name in helpers
        return False

    def _check_constructor(self, module: ModuleInfo, node: ast.Call) -> Iterator[Finding]:
        for keyword in node.keywords:
            if keyword.arg == "initializer":
                yield from self._check_callable(module, keyword.value)
            elif keyword.arg == "initargs":
                yield from self._scan_payload(module, keyword.value)

    def _check_submission(self, module: ModuleInfo, node: ast.Call) -> Iterator[Finding]:
        args: List[ast.expr] = list(node.args)
        if args:
            yield from self._check_callable(module, args[0])
        for arg in args[1:]:
            yield from self._scan_payload(module, arg)
        for keyword in node.keywords:
            yield from self._scan_payload(module, keyword.value)

    def _check_callable(self, module: ModuleInfo, func: ast.expr) -> Iterator[Finding]:
        if isinstance(func, ast.Lambda):
            yield self.finding(
                module.relpath,
                func.lineno,
                "lambda submitted across the process boundary "
                "(use a module-level *_worker function)",
            )
            return
        name = call_name(func) if isinstance(func, (ast.Name, ast.Attribute)) else None
        if name is None or not WORKER_NAME.search(name):
            label = name if name is not None else ast.dump(func)[:40]
            yield self.finding(
                module.relpath,
                func.lineno,
                f"submitted callable {label!r} is not a worker entry point "
                "(expected a name ending in _worker or _payload)",
            )
        elif isinstance(func, ast.Attribute):
            # ``self.query_worker`` pickles the bound instance with it.
            yield from self._scan_payload(module, func.value)

    def _scan_payload(self, module: ModuleInfo, node: ast.expr) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            name = call_name(node.func)
            if name in CONVERTERS:
                return
            for child in ast.iter_child_nodes(node):
                yield from self._scan_payload(module, child)  # type: ignore[arg-type]
            return
        if isinstance(node, ast.Name):
            if node.id in BANNED:
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    f"live object {node.id!r} crosses the process boundary "
                    "(ship a payload, path, plan or flat array instead)",
                )
            return
        if isinstance(node, ast.Attribute):
            if node.attr in BANNED:
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    f"live object attribute {node.attr!r} crosses the process "
                    "boundary (ship a payload, path, plan or flat array instead)",
                )
            else:
                yield from self._scan_payload(module, node.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                yield from self._scan_payload(module, child)
            elif isinstance(child, ast.keyword):
                yield from self._scan_payload(module, child.value)
            elif isinstance(child, ast.comprehension):
                yield from self._scan_payload(module, child.iter)
