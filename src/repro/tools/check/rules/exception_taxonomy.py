"""exception-taxonomy: the façade raises only taxonomy errors.

Callers of :mod:`repro.api` and :mod:`repro.serving` are promised that
everything the library raises deliberately derives from
:class:`repro.exceptions.ReproError` — that is what makes
``except ReproError`` a complete guard around a serving loop.  A stray
``raise RuntimeError(...)`` deep in a worker quietly breaks that
contract.

Scope: every module living under a directory named ``api``, ``serving``,
``faults`` or ``obs`` relative to the scan root.  Inside those modules,
each ``raise`` must use either

* a class imported from the exceptions module (``from ..exceptions
  import ...`` / ``from repro.exceptions import ...``),
* one of the builtin argument-validation errors (``ValueError``,
  ``TypeError``, ``NotImplementedError``), or
* a bare re-raise / a name bound by ``except ... as name``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from .. import Finding, Rule
from ..project import ModuleInfo, Project, call_name

SCOPED_DIRS = {"api", "serving", "faults", "obs"}
ALLOWED_BUILTINS = {"ValueError", "TypeError", "NotImplementedError"}


def _in_scope(module: ModuleInfo) -> bool:
    parts = module.relpath.split("/")[:-1]
    return any(part in SCOPED_DIRS for part in parts)


def _taxonomy_imports(module: ModuleInfo) -> Set[str]:
    """Names imported from an ``exceptions`` module (relative or absolute)."""
    names: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module is not None:
            if node.module == "exceptions" or node.module.endswith(".exceptions"):
                names.update(alias.asname or alias.name for alias in node.names)
    return names


def _handler_names(module: ModuleInfo) -> Set[str]:
    """Names bound by ``except ... as name`` anywhere in the module."""
    return {
        node.name
        for node in ast.walk(module.tree)
        if isinstance(node, ast.ExceptHandler) and node.name is not None
    }


class ExceptionTaxonomyRule(Rule):
    name = "exception-taxonomy"
    description = (
        "api/serving/faults raise only repro.exceptions (or builtin validation) errors"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not _in_scope(module):
                continue
            allowed = _taxonomy_imports(module) | ALLOWED_BUILTINS
            rebindable = _handler_names(module)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Raise):
                    continue
                if node.exc is None:  # bare ``raise`` inside a handler
                    continue
                if module.allows(self.name, node.lineno):
                    continue
                exc = node.exc
                name = call_name(exc.func) if isinstance(exc, ast.Call) else call_name(exc)
                if name is None:
                    yield self.finding(
                        module.relpath,
                        node.lineno,
                        "raise of a non-name expression; use a class from repro.exceptions",
                    )
                    continue
                if name in allowed or name in rebindable:
                    continue
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    f"raise {name}(...) is outside the exception taxonomy "
                    "(import a class from repro.exceptions)",
                )
