"""Rule registry for the static-analysis suite.

Adding a rule is three steps: write a module here with a
:class:`~repro.tools.check.Rule` subclass, instantiate it in
:data:`ALL_RULES`, and add a fixture-backed test under ``tests/tools``.
Rules are selected by name via ``--rule``; unknown names are an error.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .. import Rule
from .exception_taxonomy import ExceptionTaxonomyRule
from .hot_path import HotPathPurityRule
from .lock_discipline import LockDisciplineRule
from .metrics_discipline import MetricsDisciplineRule
from .payload_schema import PayloadSchemaRule
from .worker_boundary import WorkerBoundaryRule

ALL_RULES: List[Rule] = [
    PayloadSchemaRule(),
    WorkerBoundaryRule(),
    ExceptionTaxonomyRule(),
    HotPathPurityRule(),
    LockDisciplineRule(),
    MetricsDisciplineRule(),
]


def rule_names() -> List[str]:
    return [rule.name for rule in ALL_RULES]


def get_rules(names: Optional[Sequence[str]] = None) -> List[Rule]:
    """The selected rules (all of them when ``names`` is None/empty)."""
    if not names:
        return list(ALL_RULES)
    by_name = {rule.name: rule for rule in ALL_RULES}
    unknown = [name for name in names if name not in by_name]
    if unknown:
        known = ", ".join(sorted(by_name))
        raise ValueError(f"unknown rule(s) {', '.join(unknown)} (known: {known})")
    return [by_name[name] for name in names]
