"""Developer tooling shipped with the package.

:mod:`repro.tools.check` is the repo-aware static-analysis suite — run it
with ``python -m repro.tools.check``.  Nothing in here is needed at query
time; the tools exist so the cross-module invariants the indexes depend on
(payload schema registration, worker-boundary shipping rules, the
exception taxonomy, hot-path purity, lock discipline) are enforced
mechanically instead of by review.
"""
