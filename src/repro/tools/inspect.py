"""Archive inspector: ``python -m repro.tools.inspect <archive>``.

Pretty-prints what a saved index archive holds without materializing the
index: the payload schema tree (index kind, child payloads), every stored
array's dtype / shape / bytes / crc32, and the space-report totals — all
derived from the JSON manifest (:func:`repro.api.persistence.read_manifest`)
plus the archive's member table, so inspection is cheap even for archives
too large to load.

Output is plain text, one section per payload node::

    index/special  (version 1)
      suffix_array      uint32   (20000,)      80,000 B  crc32 0x1a2b3c4d
      prefix            float64  (20001,)     160,008 B  crc32 0x...
      rmq_short_1/  rmq/sparse  (version 1)
        ...

Legacy (version 1/2) archives have no payload manifest; the inspector
prints their member table and config keys instead.
"""

from __future__ import annotations

import argparse
import sys
import zipfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..api.persistence import normalize_archive_path, read_manifest
from ..exceptions import ValidationError

#: Member-name suffix numpy's zip writer appends to every array.
_NPY = ".npy"


def _member_table(path: Path) -> Dict[str, Tuple[str, Tuple[int, ...], int]]:
    """``{array-path: (dtype, shape, nbytes)}`` from the archive's members.

    Reads each member's npy *header* only — shapes and dtypes come from a
    few hundred bytes per array, never the data.
    """
    table: Dict[str, Tuple[str, Tuple[int, ...], int]] = {}
    with zipfile.ZipFile(path) as archive:
        for info in archive.infolist():
            if not info.filename.endswith(_NPY):
                continue
            key = info.filename[: -len(_NPY)]
            with archive.open(info) as member:
                version = np.lib.format.read_magic(member)
                if version == (1, 0):
                    shape, _, dtype = np.lib.format.read_array_header_1_0(member)
                else:
                    shape, _, dtype = np.lib.format.read_array_header_2_0(member)
            nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            table[key] = (str(dtype), tuple(int(s) for s in shape), nbytes)
    return table


def _walk_manifest(
    manifest: Dict[str, Any], prefix: str = ""
) -> Iterator[Tuple[str, Dict[str, Any]]]:
    yield prefix, manifest
    for name, child in manifest.get("children", {}).items():
        child_prefix = f"{prefix}/{name}" if prefix else name
        yield from _walk_manifest(child, child_prefix)


def _format_bytes(count: int) -> str:
    return f"{count:,} B"


def describe_archive(path: Path) -> List[str]:
    """The inspector's report for one archive, as output lines."""
    manifest = read_manifest(path)
    members = _member_table(path)
    lines: List[str] = []
    version = int(manifest.get("version", 0))
    lines.append(f"{path.name}: format version {version}, kind {manifest.get('kind')!r}")
    if version < 3 or "payload" not in manifest:
        lines.append("  (legacy archive: no payload manifest; raw members below)")
        for key, (dtype, shape, nbytes) in sorted(members.items()):
            lines.append(f"  {key:<40} {dtype:<10} {shape!s:<16} {_format_bytes(nbytes)}")
        config = manifest.get("config", {})
        if config:
            lines.append(f"  config keys: {sorted(config)}")
        return lines

    stored_total = 0
    for prefix, node in _walk_manifest(manifest["payload"]):
        indent = "  " * (prefix.count("/") + 1)
        label = f"{prefix}/" if prefix else "<root>"
        lines.append(f"{indent}{label}  {node['schema']}  (version {node.get('version', 1)})")
        checksums = node.get("checksums", {})
        compact = node.get("meta", {}).get("compact_dtypes", {})
        for name in node.get("arrays", []):
            key = f"{prefix}/{name}" if prefix else name
            dtype, shape, nbytes = members.get(key, ("?", (), 0))
            stored_total += nbytes
            crc = checksums.get(name)
            crc_note = f"  crc32 {crc:#010x}" if isinstance(crc, int) else ""
            note = ""
            record = compact.get(name, {})
            if record.get("kind") == "narrowed":
                note = f"  [narrowed from {record['logical']}]"
            elif record.get("kind") == "packed_bool":
                note = f"  [bit-packed bool, {record['length']} flags]"
            lines.append(
                f"{indent}  {name:<28} {dtype:<10} {shape!s:<16} "
                f"{_format_bytes(nbytes):>14}{crc_note}{note}"
            )
    lines.append(f"  stored total: {_format_bytes(stored_total)}")
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.inspect",
        description="Inspect a saved index archive: schema tree, arrays, sizes.",
    )
    parser.add_argument("archive", nargs="+", help="path(s) to .npz index archives")
    arguments = parser.parse_args(argv)
    status = 0
    for raw in arguments.archive:
        path = normalize_archive_path(raw)
        try:
            lines = describe_archive(path)
        except (OSError, ValueError, ValidationError, zipfile.BadZipFile) as error:
            # ValueError: np.load on bytes that are neither zip nor npy.
            print(f"{raw}: {error}", file=sys.stderr)
            status = 1
            continue
        print("\n".join(lines))
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
