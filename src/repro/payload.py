"""The canonical array-schema currency of the package: :class:`IndexPayload`.

Every index in :mod:`repro.core` — and every RMQ structure in
:mod:`repro.suffix.rmq` — is, at rest, a collection of flat numpy arrays
plus a handful of JSON-safe scalars.  An :class:`IndexPayload` makes that
fact a first-class object: a versioned, schema-named mapping of named
ndarrays and scalar metadata, with nested child payloads for component
structures (per-length RMQs, the maximal-factor transformation).

Everything that moves an index across a boundary speaks payload:

* ``to_payload()`` / ``from_payload()`` on the five index kinds and both
  RMQ implementations define *in one place* what each structure is made of;
* :mod:`repro.api.persistence` archive format 3 is exactly the payload
  schema written as a zip of ``.npy`` members (memory-mappable when
  uncompressed);
* :mod:`repro.api.workers` ships payloads — not pickled index objects —
  to initialize process workers, and the parallel shard *construction*
  path returns ``(payload, plan)`` pairs from its worker processes;
* ``nbytes()`` / ``space_report()`` on the indexes are derived from the
  payload schema instead of being hand-maintained per kind.

Arrays come in two flavours.  **Stored** arrays (``arrays``) are the
persisted truth — they are written to archives and shipped across process
boundaries.  **Derived** arrays (``derived``) are runtime-only
acceleration structures that ``from_payload`` rebuilds cheaply (e.g. the
block-summary sparse table of a restored RMQ); they count toward the
in-memory footprint but are never serialized — which is exactly how the
format-3 archives drop the O(n log n)-word sparse tables the format-2
archives still shipped.
"""

from __future__ import annotations

import json
import re
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from .exceptions import ValidationError

#: Version of the payload schema itself; bumped whenever the meaning of the
#: structure (name conventions, child nesting, manifest layout) changes.
PAYLOAD_VERSION = 1

#: Separator joining child names into flat array paths (archive members).
PATH_SEPARATOR = "/"

#: Meta key under which :meth:`IndexPayload.compact` records the logical
#: (pre-narrowing) description of every transformed stored array, so space
#: accounting can report the wide footprint and :meth:`IndexPayload.expand`
#: can restore bit-packed booleans.
COMPACT_META_KEY = "compact_dtypes"

#: Narrowing ladders for :meth:`IndexPayload.compact`: the smallest dtype
#: holding the observed value range wins; 64-bit stays 64-bit.
_SIGNED_NARROW = (np.int8, np.int16, np.int32)
_UNSIGNED_NARROW = (np.uint8, np.uint16, np.uint32)


def _narrow_dtype(array: np.ndarray) -> Optional[np.dtype]:
    """Smallest integer dtype that holds ``array``'s observed value range.

    Returns ``None`` when no strictly smaller safe dtype exists: float
    arrays (probabilities stay float64), already-minimal integers, and
    value ranges that genuinely need 64 bits.  Arrays containing negative
    sentinels (``-1`` separator markers) narrow to signed dtypes only.
    """
    if array.dtype.kind not in ("i", "u"):
        return None
    if array.size == 0:
        candidates = _SIGNED_NARROW if array.dtype.kind == "i" else _UNSIGNED_NARROW
        target = np.dtype(candidates[0])
        return target if target.itemsize < array.dtype.itemsize else None
    low, high = int(array.min()), int(array.max())
    candidates = _SIGNED_NARROW if low < 0 else _UNSIGNED_NARROW
    for candidate in candidates:
        info = np.iinfo(candidate)
        if info.min <= low and high <= info.max:
            target = np.dtype(candidate)
            return target if target.itemsize < array.dtype.itemsize else None
    return None


def array_checksum(array: np.ndarray) -> int:
    """crc32 of an array's raw bytes (dtype-sensitive, platform-stable)."""
    data = np.ascontiguousarray(array)
    if data.size == 0:
        return 0
    return int(zlib.crc32(data.view(np.uint8).reshape(-1)))

#: Central registry of every payload schema the package produces or
#: understands, mapping the schema name to a one-line description.  Adding
#: a ``to_payload`` implementation means adding its schema here — the
#: ``payload-schema`` rule of :mod:`repro.tools.check` statically verifies
#: that every constructed schema is registered, that index schemas stay
#: unique per class, and that persistence dispatch covers every entry.
SCHEMA_REGISTRY: Dict[str, str] = {
    "index/special": "RMQ-tower index over a special uncertain string",
    "index/simple": "O(n)-space simple index over a special uncertain string",
    "index/general": "per-length index over the maximal-factor transformation",
    "index/approximate": "additive-error sampled variant of the general index",
    "index/listing": "document-listing index over an uncertain collection",
    "rmq/sparse": "compact block-position RMQ (restores CompactRMQ)",
    "rmq/block": "block RMQ; the summary table is rebuilt on restore",
    "rmq/sparse-table": "legacy full sparse-table RMQ (version-2 archives)",
    "rmq/block-table": "legacy block RMQ with stored summary table",
    "transformed": "maximal-factor transformation of a general string",
}

_TRAILING_INDEX = re.compile(r"_\d+$")


def _check_name(name: str, *, what: str) -> str:
    if not isinstance(name, str) or not name:
        raise ValidationError(f"payload {what} names must be non-empty strings, got {name!r}")
    if PATH_SEPARATOR in name:
        raise ValidationError(
            f"payload {what} name {name!r} must not contain {PATH_SEPARATOR!r} "
            "(reserved for child paths)"
        )
    return name


@dataclass
class IndexPayload:
    """A schema-described bundle of named ndarrays plus scalar metadata.

    Attributes
    ----------
    schema:
        What the payload describes (``"index/special"``, ``"rmq/sparse"``,
        ``"transformed"``, ...).  ``from_payload`` implementations dispatch
        and validate on it.
    meta:
        JSON-safe scalar configuration (thresholds, lengths, serialized
        input strings).  Restored verbatim from the archive manifest.
    arrays:
        The stored arrays — persisted to archives, shipped over IPC.
    derived:
        Runtime-only arrays rebuilt by ``from_payload``; counted by
        :meth:`nbytes` / :meth:`space_report` but never serialized.
    children:
        Nested component payloads, keyed by a local name.
    version:
        Payload schema version (:data:`PAYLOAD_VERSION` at write time).
    """

    schema: str
    meta: Dict[str, Any] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    derived: Dict[str, np.ndarray] = field(default_factory=dict)
    children: Dict[str, "IndexPayload"] = field(default_factory=dict)
    version: int = PAYLOAD_VERSION

    # -- validation --------------------------------------------------------------------
    def validate(self) -> "IndexPayload":
        """Check names, array types and meta JSON-safety (recursively)."""
        if not isinstance(self.schema, str) or not self.schema:
            raise ValidationError(f"payload schema must be a non-empty string, got {self.schema!r}")
        for name, array in {**self.arrays, **self.derived}.items():
            _check_name(name, what="array")
            if not isinstance(array, np.ndarray):
                raise ValidationError(
                    f"payload array {name!r} must be an ndarray, got {type(array).__name__}"
                )
            if array.dtype.hasobject:
                raise ValidationError(f"payload array {name!r} holds Python objects")
        overlap = set(self.arrays) & set(self.derived)
        if overlap:
            raise ValidationError(
                f"payload names {sorted(overlap)} appear as both stored and derived"
            )
        try:
            json.dumps(self.meta)
        except (TypeError, ValueError) as error:
            raise ValidationError(f"payload meta is not JSON-serializable: {error}")
        for name, child in self.children.items():
            _check_name(name, what="child")
            if set(self.arrays) & {name} or set(self.derived) & {name}:
                raise ValidationError(f"payload child {name!r} collides with an array name")
            child.validate()
        return self

    # -- dtype minimization ------------------------------------------------------------
    def compact(self) -> "IndexPayload":
        """Return a dtype-minimized copy of this payload (new object).

        Integer stored arrays are narrowed to the smallest dtype that
        holds their observed value range — positions, ranks and document
        identifiers become uint8/16/32 (signed when ``-1`` sentinels are
        present) — and boolean stored arrays are bit-packed with
        ``np.packbits``.  Float arrays are untouched: the log-space
        float64 probability values are the query answers, and they must
        stay byte-identical.  The logical dtype of every transformed
        array is recorded under ``meta[COMPACT_META_KEY]``; narrowed
        integers are *not* widened on restore — the suffix/RMQ kernels
        accept any integer dtype and widen lazily at the few arithmetic
        boundaries that need int64 — while packed booleans are restored
        by :meth:`expand` before ``from_payload`` consumes them.

        Derived arrays are dropped: they are runtime acceleration
        structures ``from_payload`` rebuilds — and rebuilds *smaller*
        from the compact stored form (a ``CompactRMQ`` block summary
        instead of the full sparse table).  Children compact recursively.
        """
        arrays: Dict[str, np.ndarray] = {}
        record: Dict[str, Dict[str, Any]] = dict(self.meta.get(COMPACT_META_KEY, {}))
        for name, array in self.arrays.items():
            if array.dtype.kind == "b":
                arrays[name] = np.packbits(array.view(np.uint8))
                record[name] = {"kind": "packed_bool", "length": int(array.size)}
                continue
            target = _narrow_dtype(array)
            if target is None:
                arrays[name] = array
                continue
            arrays[name] = array.astype(target)
            record[name] = {"kind": "narrowed", "logical": str(array.dtype)}
        meta = dict(self.meta)
        if record:
            meta[COMPACT_META_KEY] = record
        return IndexPayload(
            schema=self.schema,
            meta=meta,
            arrays=arrays,
            children={name: child.compact() for name, child in self.children.items()},
            version=self.version,
        )

    def expand(self) -> "IndexPayload":
        """Restore bit-packed boolean stored arrays to logical bool dtype.

        The single consumption boundary (``index_from_payload``) calls
        this before dispatching to ``from_payload``: packed booleans are
        the one compact form the kernels cannot use in place.  Narrowed
        integer arrays stay narrow (kernels widen lazily).  Returns
        ``self`` unchanged when nothing is packed anywhere in the tree.
        """
        record = self.meta.get(COMPACT_META_KEY, {})
        packed = {
            name: info
            for name, info in record.items()
            if info.get("kind") == "packed_bool" and name in self.arrays
        }
        children = {name: child.expand() for name, child in self.children.items()}
        if not packed and all(
            children[name] is child for name, child in self.children.items()
        ):
            return self
        arrays = dict(self.arrays)
        for name, info in packed.items():
            arrays[name] = np.unpackbits(
                np.asarray(arrays[name], dtype=np.uint8), count=int(info["length"])
            ).view(np.bool_)
        remaining = {
            name: info
            for name, info in record.items()
            if not (info.get("kind") == "packed_bool" and name in packed)
        }
        meta = dict(self.meta)
        if remaining:
            meta[COMPACT_META_KEY] = remaining
        else:
            meta.pop(COMPACT_META_KEY, None)
        return IndexPayload(
            schema=self.schema,
            meta=meta,
            arrays=arrays,
            derived=dict(self.derived),
            children=children,
            version=self.version,
        )

    # -- space accounting --------------------------------------------------------------
    def nbytes(self) -> int:
        """In-memory footprint: stored + derived arrays, recursively."""
        total = sum(int(a.nbytes) for a in self.arrays.values())
        total += sum(int(a.nbytes) for a in self.derived.values())
        return total + sum(child.nbytes() for child in self.children.values())

    def _wide_array_nbytes(self, name: str, array: np.ndarray) -> int:
        """Bytes the stored array would occupy at its logical (wide) dtype."""
        info = self.meta.get(COMPACT_META_KEY, {}).get(name)
        if info is None:
            return int(array.nbytes)
        if info.get("kind") == "packed_bool":
            return int(info["length"])
        return int(array.size) * int(np.dtype(info["logical"]).itemsize)

    def wide_nbytes(self) -> int:
        """In-memory footprint at logical (pre-:meth:`compact`) dtypes.

        Stored arrays count at the dtype recorded under
        ``meta[COMPACT_META_KEY]`` (their own dtype when never narrowed);
        derived arrays count as-is.  Equals :meth:`nbytes` for payloads
        that were never compacted, so ``nbytes`` vs ``wide_nbytes`` is
        the wide-vs-compact in-RAM series.
        """
        total = sum(
            self._wide_array_nbytes(name, array) for name, array in self.arrays.items()
        )
        total += sum(int(a.nbytes) for a in self.derived.values())
        return total + sum(child.wide_nbytes() for child in self.children.values())

    def stored_nbytes(self) -> int:
        """Bytes an archive must persist: stored arrays only, recursively."""
        total = sum(int(a.nbytes) for a in self.arrays.values())
        return total + sum(child.stored_nbytes() for child in self.children.values())

    def space_report(self) -> Dict[str, int]:
        """Component byte sizes plus a ``total`` entry.

        Per-length families collapse into one component (a trailing
        ``_<number>`` is stripped, so ``short_values_3`` and ``rmq_short_3``
        aggregate under ``short_values`` / ``rmq_short``); each child
        contributes its recursive total under its collapsed name.
        """
        report: Dict[str, int] = {}
        for name, array in {**self.arrays, **self.derived}.items():
            component = _TRAILING_INDEX.sub("", name)
            report[component] = report.get(component, 0) + int(array.nbytes)
        for name, child in self.children.items():
            component = _TRAILING_INDEX.sub("", name)
            report[component] = report.get(component, 0) + child.nbytes()
        report["total"] = sum(report.values())
        # The wide-vs-compact in-RAM series: what the same payload would
        # occupy at logical dtypes.  Equal to "total" when never compacted.
        report["total_wide"] = self.wide_nbytes()
        return report

    # -- flattening (archive layout) -----------------------------------------------------
    def walk(self, prefix: str = "") -> Iterator[Tuple[str, "IndexPayload"]]:
        """Yield ``(path, payload)`` for this payload and every descendant."""
        yield prefix, self
        for name, child in self.children.items():
            child_prefix = f"{prefix}{PATH_SEPARATOR}{name}" if prefix else name
            yield from child.walk(child_prefix)

    def flatten(self) -> Dict[str, np.ndarray]:
        """Stored arrays keyed by ``child-path/array-name`` (archive members)."""
        flat: Dict[str, np.ndarray] = {}
        for path, payload in self.walk():
            for name, array in payload.arrays.items():
                key = f"{path}{PATH_SEPARATOR}{name}" if path else name
                flat[key] = array
        return flat

    def manifest(self) -> Dict[str, Any]:
        """JSON-safe description: schema tree + meta + stored-array names.

        Together with :meth:`flatten`'s arrays this reconstructs the
        payload exactly (see :meth:`from_manifest`); derived arrays are
        intentionally absent — ``from_payload`` rebuilds them.  Every
        stored array is recorded with its crc32 so loaders can detect
        corrupt archive members (:func:`verify_manifest_checksums`)
        before numpy ever touches the bytes.
        """
        return {
            "schema": self.schema,
            "version": int(self.version),
            "meta": self.meta,
            "arrays": list(self.arrays),
            "checksums": {
                name: array_checksum(array) for name, array in self.arrays.items()
            },
            "children": {name: child.manifest() for name, child in self.children.items()},
        }

    @classmethod
    def from_manifest(
        cls,
        manifest: Dict[str, Any],
        flat_arrays: Dict[str, np.ndarray],
        *,
        prefix: str = "",
    ) -> "IndexPayload":
        """Reassemble the payload :meth:`manifest` + :meth:`flatten` described.

        ``flat_arrays`` may hold read-only memory maps — arrays are used
        as-is, zero-copy.  A manifest naming an array the mapping lacks
        fails loudly (truncated or mismatched archive).
        """
        arrays: Dict[str, np.ndarray] = {}
        for name in manifest.get("arrays", []):
            key = f"{prefix}{PATH_SEPARATOR}{name}" if prefix else name
            if key not in flat_arrays:
                raise ValidationError(f"payload array {key!r} is missing from the archive")
            arrays[name] = flat_arrays[key]
        children: Dict[str, "IndexPayload"] = {}
        for name, child_manifest in manifest.get("children", {}).items():
            child_prefix = f"{prefix}{PATH_SEPARATOR}{name}" if prefix else name
            children[name] = cls.from_manifest(
                child_manifest, flat_arrays, prefix=child_prefix
            )
        return cls(
            schema=manifest["schema"],
            meta=dict(manifest.get("meta", {})),
            arrays=arrays,
            children=children,
            version=int(manifest.get("version", PAYLOAD_VERSION)),
        )


def verify_manifest_checksums(
    manifest: Dict[str, Any],
    flat_arrays: Dict[str, np.ndarray],
    *,
    prefix: str = "",
) -> None:
    """Verify the per-array crc32 records of a payload manifest.

    Walks the manifest tree exactly like :meth:`IndexPayload.from_manifest`
    and compares every recorded checksum against the loaded bytes, raising
    a taxonomy :class:`ValidationError` naming the corrupt member instead
    of letting a damaged buffer reach numpy.  Manifests written before
    checksums were recorded — and arrays missing from ``flat_arrays``
    (``from_manifest`` raises its own error for those) — verify trivially.
    """
    checksums = manifest.get("checksums") or {}
    for name in manifest.get("arrays", []):
        expected = checksums.get(name)
        if expected is None:
            continue
        key = f"{prefix}{PATH_SEPARATOR}{name}" if prefix else name
        array = flat_arrays.get(key)
        if array is None:
            continue
        actual = array_checksum(array)
        if actual != int(expected):
            raise ValidationError(
                f"payload array {key!r} failed its checksum (expected crc32 "
                f"{int(expected)}, got {actual}): corrupt archive member"
            )
    for name, child_manifest in manifest.get("children", {}).items():
        child_prefix = f"{prefix}{PATH_SEPARATOR}{name}" if prefix else name
        verify_manifest_checksums(child_manifest, flat_arrays, prefix=child_prefix)


def expect_schema(payload: IndexPayload, schema: str) -> IndexPayload:
    """Raise unless ``payload`` carries the expected schema (helper for
    ``from_payload`` implementations)."""
    if payload.schema != schema:
        raise ValidationError(
            f"expected a {schema!r} payload, got {payload.schema!r}"
        )
    if int(payload.version) > PAYLOAD_VERSION:
        raise ValidationError(
            f"payload version {payload.version} is newer than this package "
            f"supports ({PAYLOAD_VERSION}); upgrade the package"
        )
    return payload
