"""repro — Probabilistic threshold indexing for uncertain strings.

A Python reproduction of *"Probabilistic Threshold Indexing for Uncertain
Strings"* (Thankachan, Patil, Shah, Biswas — EDBT 2016): indexes for
searching deterministic patterns inside character-level uncertain strings
with a probability threshold, plus the supporting substrate (suffix arrays,
suffix trees, range maximum queries), dataset generators and a benchmark
harness reproducing the paper's experimental figures.

Quick start
-----------
>>> from repro import UncertainString, GeneralUncertainStringIndex
>>> s = UncertainString([
...     {"A": 0.6, "C": 0.4},
...     {"T": 1.0},
...     {"A": 0.5, "G": 0.5},
... ])
>>> index = GeneralUncertainStringIndex(s, tau_min=0.1)
>>> [(occ.position, round(occ.probability, 2)) for occ in index.query("AT", 0.3)]
[(0, 0.6)]
"""

from .core import (
    ApproximateSubstringIndex,
    BruteForceOracle,
    GeneralUncertainStringIndex,
    ListingMatch,
    MaximalFactor,
    Occurrence,
    OnlineDynamicProgrammingMatcher,
    SimpleSpecialIndex,
    SpecialUncertainStringIndex,
    TransformedString,
    UncertainStringListingIndex,
    enumerate_maximal_factors,
    transform_collection,
    transform_uncertain_string,
)
from .exceptions import (
    AlphabetError,
    ConstructionError,
    CorrelationError,
    PatternTooLongError,
    QueryError,
    ReproError,
    ThresholdError,
    ValidationError,
)
from .strings import (
    Alphabet,
    CorrelationModel,
    CorrelationRule,
    PositionDistribution,
    SpecialUncertainString,
    UncertainString,
    UncertainStringCollection,
)

__version__ = "1.0.0"

__all__ = [
    "Alphabet",
    "AlphabetError",
    "ApproximateSubstringIndex",
    "BruteForceOracle",
    "ConstructionError",
    "CorrelationError",
    "CorrelationModel",
    "CorrelationRule",
    "GeneralUncertainStringIndex",
    "ListingMatch",
    "MaximalFactor",
    "Occurrence",
    "OnlineDynamicProgrammingMatcher",
    "PatternTooLongError",
    "PositionDistribution",
    "QueryError",
    "ReproError",
    "SimpleSpecialIndex",
    "SpecialUncertainStringIndex",
    "ThresholdError",
    "TransformedString",
    "UncertainString",
    "UncertainStringCollection",
    "UncertainStringListingIndex",
    "ValidationError",
    "enumerate_maximal_factors",
    "transform_collection",
    "transform_uncertain_string",
    "__version__",
]
