"""repro — Probabilistic threshold indexing for uncertain strings.

A Python reproduction of *"Probabilistic Threshold Indexing for Uncertain
Strings"* (Thankachan, Patil, Shah, Biswas — EDBT 2016): indexes for
searching deterministic patterns inside character-level uncertain strings
with a probability threshold, plus the supporting substrate (suffix arrays,
suffix trees, range maximum queries), dataset generators and a benchmark
harness reproducing the paper's experimental figures.

Quick start
-----------
:func:`build_index` is the front door: hand it whatever you have (a plain
string, an :class:`UncertainString`, a :class:`SpecialUncertainString`, a
collection or a sequence of documents) and it selects, builds and wraps the
right index variant behind one query vocabulary:

>>> from repro import SearchRequest, UncertainString, build_index, load_index
>>> s = UncertainString([
...     {"A": 0.6, "C": 0.4},
...     {"T": 1.0},
...     {"A": 0.5, "G": 0.5},
... ])
>>> engine = build_index(s, tau_min=0.1)
>>> engine.kind
'general'
>>> [(occ.position, round(occ.probability, 2)) for occ in engine.search("AT", tau=0.3)]
[(0, 0.6)]

Results are lazy and pageable, batches amortize repeated work, and engines
persist to versioned ``.npz`` archives:

>>> high, low = engine.search_many([
...     SearchRequest("AT", tau=0.5), SearchRequest("AT", tau=0.1)])
>>> high.count, low.count
(1, 1)
>>> path = engine.save("/tmp/demo-index")        # doctest: +SKIP
>>> hot = load_index(path)                       # doctest: +SKIP

The underlying index classes (:class:`GeneralUncertainStringIndex` and
friends) stay public for variant-specific control; ``engine.index`` exposes
the wrapped instance.
"""

from .api import (
    Engine,
    IndexPlan,
    ResultCache,
    SearchRequest,
    SearchResult,
    ShardSpec,
    ShardedEngine,
    build_index,
    build_sharded_index,
    load_index,
    plan_index,
    shard_input,
)
from .core import (
    ApproximateSubstringIndex,
    BruteForceOracle,
    GeneralUncertainStringIndex,
    ListingMatch,
    MaximalFactor,
    Occurrence,
    OnlineDynamicProgrammingMatcher,
    SimpleSpecialIndex,
    SpecialUncertainStringIndex,
    TransformedString,
    UncertainStringListingIndex,
    enumerate_maximal_factors,
    transform_collection,
    transform_uncertain_string,
)
from .exceptions import (
    AlphabetError,
    ConstructionError,
    CorrelationError,
    DeadlineExceededError,
    DrainTimeoutError,
    InjectedFaultError,
    PatternTooLongError,
    QueryError,
    ReproError,
    ServiceOverloadedError,
    ServiceStoppedError,
    ThresholdError,
    ValidationError,
    WorkerError,
)
from .payload import IndexPayload
from .serving import AsyncSearchService
from .strings import (
    Alphabet,
    CorrelationModel,
    CorrelationRule,
    PositionDistribution,
    SpecialUncertainString,
    UncertainString,
    UncertainStringCollection,
)

__version__ = "1.7.0"

__all__ = [
    "Alphabet",
    "AlphabetError",
    "ApproximateSubstringIndex",
    "AsyncSearchService",
    "BruteForceOracle",
    "ConstructionError",
    "CorrelationError",
    "CorrelationModel",
    "CorrelationRule",
    "DeadlineExceededError",
    "DrainTimeoutError",
    "Engine",
    "GeneralUncertainStringIndex",
    "IndexPayload",
    "IndexPlan",
    "InjectedFaultError",
    "ListingMatch",
    "MaximalFactor",
    "Occurrence",
    "OnlineDynamicProgrammingMatcher",
    "PatternTooLongError",
    "PositionDistribution",
    "QueryError",
    "ReproError",
    "ResultCache",
    "SearchRequest",
    "SearchResult",
    "ServiceOverloadedError",
    "ServiceStoppedError",
    "ShardSpec",
    "ShardedEngine",
    "SimpleSpecialIndex",
    "SpecialUncertainStringIndex",
    "ThresholdError",
    "TransformedString",
    "UncertainString",
    "UncertainStringCollection",
    "UncertainStringListingIndex",
    "ValidationError",
    "WorkerError",
    "build_index",
    "build_sharded_index",
    "enumerate_maximal_factors",
    "load_index",
    "plan_index",
    "shard_input",
    "transform_collection",
    "transform_uncertain_string",
    "__version__",
]
