"""Quickstart: index an uncertain string and answer threshold queries.

This walks through the three query problems of the paper on tiny inputs:

1. substring searching in a single uncertain string (Section 5),
2. string listing from a collection (Section 6),
3. approximate substring searching with an additive error (Section 7).

Run with::

    python examples/quickstart.py
"""

from repro import (
    ApproximateSubstringIndex,
    GeneralUncertainStringIndex,
    UncertainString,
    UncertainStringCollection,
    UncertainStringListingIndex,
)


def substring_search_demo() -> None:
    """Index the paper's Figure 3 protein string and search it."""
    # The uncertain string of Figure 3 (genomic sequence of At4g15440).
    figure3 = UncertainString(
        [
            {"P": 1.0},
            {"S": 0.7, "F": 0.3},
            {"F": 1.0},
            {"P": 1.0},
            {"Q": 0.5, "T": 0.5},
            {"P": 1.0},
            {"A": 0.4, "F": 0.4, "P": 0.2},
            {"I": 0.3, "L": 0.3, "T": 0.3, "P": 0.1},
            {"A": 1.0},
            {"S": 0.5, "T": 0.5},
            {"A": 1.0},
        ],
        name="At4g15440",
    )
    index = GeneralUncertainStringIndex(figure3, tau_min=0.1)

    print("== substring searching (Figure 3 example) ==")
    for pattern, tau in [("AT", 0.4), ("SFPQ", 0.3), ("PA", 0.2)]:
        occurrences = index.query(pattern, tau)
        rendered = ", ".join(
            f"pos {occ.position} (p={occ.probability:.3f})" for occ in occurrences
        ) or "no occurrence above the threshold"
        print(f"  query ({pattern!r}, tau={tau}): {rendered}")
    print()


def string_listing_demo() -> None:
    """Index the paper's Figure 2 collection and list matching documents."""
    d1 = UncertainString(
        [
            {"A": 0.4, "B": 0.3, "F": 0.3},
            {"B": 0.3, "L": 0.3, "F": 0.3, "J": 0.1},
            {"F": 0.5, "J": 0.5},
        ],
        name="d1",
    )
    d2 = UncertainString(
        [
            {"A": 0.6, "C": 0.4},
            {"B": 0.5, "F": 0.3, "J": 0.2},
            {"B": 0.4, "C": 0.3, "E": 0.2, "F": 0.1},
        ],
        name="d2",
    )
    d3 = UncertainString(
        [
            {"A": 0.4, "F": 0.4, "P": 0.2},
            {"I": 0.3, "L": 0.3, "P": 0.3, "T": 0.1},
            {"A": 1.0},
        ],
        name="d3",
    )
    collection = UncertainStringCollection([d1, d2, d3])
    index = UncertainStringListingIndex(collection, tau_min=0.05, metric="max")

    print("== string listing (Figure 2 example) ==")
    for pattern, tau in [("BF", 0.1), ("A", 0.5), ("FF", 0.1)]:
        matches = index.query(pattern, tau)
        rendered = ", ".join(
            f"{collection.name_of(match.document)} (rel={match.relevance:.3f})"
            for match in matches
        ) or "no document above the threshold"
        print(f"  query ({pattern!r}, tau={tau}): {rendered}")
    print()


def approximate_search_demo() -> None:
    """Show the additive-error index on the Figure 10 running example."""
    figure10 = UncertainString(
        [
            {"Q": 0.7, "S": 0.3},
            {"Q": 0.3, "P": 0.7},
            {"P": 1.0},
            {"A": 0.4, "F": 0.3, "P": 0.2, "Q": 0.1},
        ],
        name="figure10",
    )
    index = ApproximateSubstringIndex(figure10, tau_min=0.1, epsilon=0.05)

    print("== approximate substring searching (Figure 10 example) ==")
    print(f"  index stores {index.link_count} links (epsilon={index.epsilon})")
    for pattern, tau in [("QP", 0.4), ("PP", 0.3)]:
        approximate = index.query(pattern, tau)
        exact = index.query(pattern, tau, verify=True)
        print(
            f"  query ({pattern!r}, tau={tau}): "
            f"approximate positions {[occ.position for occ in approximate]}, "
            f"verified positions {[occ.position for occ in exact]}"
        )
    print()


def main() -> None:
    """Run all three demos."""
    substring_search_demo()
    string_listing_demo()
    approximate_search_demo()


if __name__ == "__main__":
    main()
