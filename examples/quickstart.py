"""Quickstart: one façade for every threshold-query problem of the paper.

:func:`repro.build_index` inspects what you hand it — an uncertain string,
a collection of documents, a plain string — and selects, builds and wraps
the right index variant behind one query vocabulary.  This walks through
the paper's three query problems on tiny inputs:

1. substring searching in a single uncertain string (Section 5),
2. string listing from a collection (Section 6),
3. approximate substring searching with an additive error (Section 7),

and finishes with batch queries and save/load persistence — the serving
features the façade adds on top of the paper's structures.

Run with::

    python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import (
    SearchRequest,
    UncertainString,
    build_index,
    build_sharded_index,
    load_index,
)


def figure3_string() -> UncertainString:
    """The uncertain string of Figure 3 (genomic sequence of At4g15440)."""
    return UncertainString(
        [
            {"P": 1.0},
            {"S": 0.7, "F": 0.3},
            {"F": 1.0},
            {"P": 1.0},
            {"Q": 0.5, "T": 0.5},
            {"P": 1.0},
            {"A": 0.4, "F": 0.4, "P": 0.2},
            {"I": 0.3, "L": 0.3, "T": 0.3, "P": 0.1},
            {"A": 1.0},
            {"S": 0.5, "T": 0.5},
            {"A": 1.0},
        ],
        name="At4g15440",
    )


def substring_search_demo() -> None:
    """Index the paper's Figure 3 protein string and search it."""
    engine = build_index(figure3_string(), tau_min=0.1)

    print("== substring searching (Figure 3 example) ==")
    print(f"  planner: {engine.plan.reason}")
    for pattern, tau in [("AT", 0.4), ("SFPQ", 0.3), ("PA", 0.2)]:
        result = engine.search(pattern, tau=tau)
        rendered = ", ".join(
            f"pos {occ.position} (p={occ.probability:.3f})" for occ in result
        ) or "no occurrence above the threshold"
        print(f"  query ({pattern!r}, tau={tau}): {rendered}")
    best = engine.top_k("PA", 1)
    print(f"  top-1 for 'PA': pos {best[0].position} (p={best[0].probability:.3f})")
    print()


def string_listing_demo() -> None:
    """Index the paper's Figure 2 collection and list matching documents."""
    d1 = UncertainString(
        [
            {"A": 0.4, "B": 0.3, "F": 0.3},
            {"B": 0.3, "L": 0.3, "F": 0.3, "J": 0.1},
            {"F": 0.5, "J": 0.5},
        ],
        name="d1",
    )
    d2 = UncertainString(
        [
            {"A": 0.6, "C": 0.4},
            {"B": 0.5, "F": 0.3, "J": 0.2},
            {"B": 0.4, "C": 0.3, "E": 0.2, "F": 0.1},
        ],
        name="d2",
    )
    d3 = UncertainString(
        [
            {"A": 0.4, "F": 0.4, "P": 0.2},
            {"I": 0.3, "L": 0.3, "P": 0.3, "T": 0.1},
            {"A": 1.0},
        ],
        name="d3",
    )
    # A sequence of documents plans straight to the listing index.
    engine = build_index([d1, d2, d3], tau_min=0.05, metric="max")
    collection = engine.index.collection

    print("== string listing (Figure 2 example) ==")
    print(f"  planner: {engine.plan.reason}")
    for pattern, tau in [("BF", 0.1), ("A", 0.5), ("FF", 0.1)]:
        matches = engine.search(pattern, tau=tau)
        rendered = ", ".join(
            f"{collection.name_of(match.document)} (rel={match.relevance:.3f})"
            for match in matches
        ) or "no document above the threshold"
        print(f"  query ({pattern!r}, tau={tau}): {rendered}")
    print()


def approximate_search_demo() -> None:
    """Show the additive-error index on the Figure 10 running example."""
    figure10 = UncertainString(
        [
            {"Q": 0.7, "S": 0.3},
            {"Q": 0.3, "P": 0.7},
            {"P": 1.0},
            {"A": 0.4, "F": 0.3, "P": 0.2, "Q": 0.1},
        ],
        name="figure10",
    )
    # Passing an epsilon steers the planner to the approximate index.
    engine = build_index(figure10, tau_min=0.1, epsilon=0.05)
    index = engine.index

    print("== approximate substring searching (Figure 10 example) ==")
    print(f"  planner: {engine.plan.reason}")
    print(f"  index stores {index.link_count} links (epsilon={index.epsilon})")
    for pattern, tau in [("QP", 0.4), ("PP", 0.3)]:
        approximate = engine.search(pattern, tau=tau)
        exact = index.query(pattern, tau, verify=True)
        print(
            f"  query ({pattern!r}, tau={tau}): "
            f"approximate positions {[occ.position for occ in approximate]}, "
            f"verified positions {[occ.position for occ in exact]}"
        )
    print()


def batch_and_persistence_demo() -> None:
    """Batch several requests and round-trip the index through disk."""
    engine = build_index(figure3_string(), tau_min=0.1)

    print("== batch queries and persistence ==")
    # One lazy batch: results come back in request order, and duplicate
    # requests (ubiquitous in serving traffic) share a single evaluation.
    requests = [
        SearchRequest("PA", tau=0.1),
        SearchRequest("PA", tau=0.3),
        SearchRequest("AT", top_k=1),
    ]
    for request, result in zip(requests, engine.search_many(requests)):
        print(
            f"  batch ({request.pattern!r}, tau={request.tau}, "
            f"top_k={request.top_k}): {result.count} match(es)"
        )

    with tempfile.TemporaryDirectory() as directory:
        path = engine.save(Path(directory) / "at4g15440-index")
        hot = load_index(path)
        before = [occ.probability for occ in engine.search("PA", tau=0.1)]
        after = [occ.probability for occ in hot.search("PA", tau=0.1)]
        print(
            f"  saved {path.name} ({path.stat().st_size} bytes on disk), "
            f"reloaded answers identical: {before == after}"
        )
    print()


def sharding_and_caching_demo() -> None:
    """Scale out with a ShardedEngine and watch the result cache work.

    ``build_sharded_index`` splits the input (here: one long uncertain
    string into chunks overlapping by ``max_pattern_len - 1`` positions),
    builds one engine per shard, fans queries out across them and merges
    globally correct answers — same vocabulary, same results, horizontal
    layout.  Repeated requests are served from the LRU result cache
    without touching any shard.
    """
    long_string = UncertainString.from_table(
        [
            {"A": 0.8, "C": 0.2} if position % 7 == 3 else {"ACGT"[position % 4]: 1.0}
            for position in range(240)
        ]
    )
    flat = build_index(long_string, tau_min=0.1)
    sharded = build_sharded_index(
        long_string, shards=4, tau_min=0.1, max_pattern_len=8
    )

    print("== sharding and caching ==")
    print(f"  layout: {sharded.shard_count} chunk shards, "
          f"overlap {sharded.spec.overlap} positions")
    for pattern, tau in [("CGTA", 0.3), ("TACG", 0.5)]:
        flat_positions = [occ.position for occ in flat.search(pattern, tau=tau)]
        sharded_positions = [occ.position for occ in sharded.search(pattern, tau=tau)]
        print(
            f"  query ({pattern!r}, tau={tau}): "
            f"{len(sharded_positions)} occurrence(s), "
            f"sharded == unsharded: {flat_positions == sharded_positions}"
        )
    # Replay the workload: every repeated request is a cache hit.
    for pattern, tau in [("CGTA", 0.3), ("TACG", 0.5)]:
        sharded.search(pattern, tau=tau).count
    stats = sharded.cache.stats()
    print(
        f"  cache after replay: {stats['hits']} hits / {stats['misses']} misses "
        f"(hit rate {stats['hit_rate']:.0%})"
    )
    with tempfile.TemporaryDirectory() as directory:
        path = sharded.save(Path(directory) / "sharded-index")
        hot = load_index(path)  # dispatches on the shard manifest
        same = hot.query("CGTA", tau=0.3) == sharded.query("CGTA", tau=0.3)
        print(f"  saved {sharded.shard_count} shard archives + manifest, "
              f"reloaded answers identical: {same}")
        hot.close()
    sharded.close()
    print()


def main() -> None:
    """Run all five demos."""
    substring_search_demo()
    string_listing_demo()
    approximate_search_demo()
    batch_and_persistence_demo()
    sharding_and_caching_demo()


if __name__ == "__main__":
    main()
