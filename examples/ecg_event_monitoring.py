"""Event-monitoring scenario: searching annotated ECG streams (Holter monitor).

Automatic ECG annotation software labels every heartbeat with a symbol
(N = normal, A = atrial premature, V = premature ventricular contraction,
L/R = bundle branch block, ...) but the labels are uncertain — the paper's
second motivating application (Section 2, "Automatic ECG annotations").

This example simulates an annotated beat stream with a confusion model,
indexes it, and looks for clinically meaningful beat patterns such as
``"NNAV"`` (two normal beats, an atrial premature beat, then a premature
ventricular contraction) at different confidence thresholds.  It also shows
correlation support: a V beat following an A beat is made more likely via a
correlation rule.

Run with::

    python examples/ecg_event_monitoring.py
"""

import random
from typing import Dict, List

from repro import (
    CorrelationModel,
    CorrelationRule,
    UncertainString,
    build_index,
)
from repro.strings import ecg_alphabet

#: How often the simulated patient produces each true beat type.
BEAT_FREQUENCIES = {"N": 0.82, "A": 0.05, "V": 0.05, "L": 0.03, "R": 0.03, "F": 0.02}

#: Annotator confusion model: probability that a true beat is labelled as
#: each symbol.  Rows need not be exhaustive; the remainder goes to the true
#: label.
CONFUSION: Dict[str, Dict[str, float]] = {
    "N": {"N": 0.92, "A": 0.04, "L": 0.02, "R": 0.02},
    "A": {"A": 0.75, "N": 0.15, "V": 0.10},
    "V": {"V": 0.80, "F": 0.12, "N": 0.08},
    "L": {"L": 0.85, "N": 0.10, "R": 0.05},
    "R": {"R": 0.85, "N": 0.10, "L": 0.05},
    "F": {"F": 0.70, "V": 0.20, "N": 0.10},
}

STREAM_LENGTH = 3_000
TAU_MIN = 0.1
SEED = 7


def simulate_annotated_stream(length: int, seed: int) -> UncertainString:
    """Simulate an uncertain beat stream from the confusion model."""
    rng = random.Random(seed)
    alphabet = ecg_alphabet()
    rows: List[Dict[str, float]] = []
    beats = list(BEAT_FREQUENCIES)
    weights = list(BEAT_FREQUENCIES.values())
    for _ in range(length):
        true_beat = rng.choices(beats, weights)[0]
        row = dict(CONFUSION[true_beat])
        for symbol in row:
            if symbol not in alphabet:
                raise ValueError(f"confusion model produced unknown symbol {symbol!r}")
        rows.append(row)
    return UncertainString.from_table(rows, normalize=True, name="holter-stream")


def main() -> None:
    """Simulate the stream, index it and search for arrhythmia patterns."""
    print(f"simulating annotated ECG stream of {STREAM_LENGTH} beats")
    stream = simulate_annotated_stream(STREAM_LENGTH, SEED)
    print(
        f"  {stream.uncertainty_fraction:.1%} of beats have ambiguous annotations"
    )

    index = build_index(stream, tau_min=TAU_MIN).index
    print(
        f"built index: N={int(index.stats['transformed_length'])}, "
        f"{int(index.stats['factor_count'])} factors\n"
    )

    patterns = {
        "NNAV": "two normal beats, atrial premature, then ventricular contraction",
        "VVV": "a run of three premature ventricular contractions",
        "NLN": "left-bundle-branch-block beat between normal beats",
    }
    print("arrhythmia pattern search:")
    for pattern, description in patterns.items():
        for tau in (0.15, 0.3, 0.6):
            occurrences = index.query(pattern, tau)
            print(
                f"  {pattern!r} (tau={tau}): {len(occurrences):4d} probable occurrence(s)"
                + (f"  first at beat {occurrences[0].position}" if occurrences else "")
            )
        print(f"      -> {description}")
    print()

    # Correlation: when an A beat is annotated at some position, a following V
    # becomes more likely (aberrant conduction).  Model this for one hotspot.
    hotspot = next(
        (occ.position for occ in index.query("AV", TAU_MIN + 0.01)), None
    )
    if hotspot is not None:
        correlated = UncertainString(
            list(stream.positions),
            correlations=CorrelationModel(
                [
                    CorrelationRule(
                        position=hotspot + 1,
                        character="V",
                        partner_position=hotspot,
                        partner_character="A",
                        probability_if_present=0.95,
                        probability_if_absent=0.3,
                    )
                ]
            ),
            name="holter-stream-correlated",
        )
        correlated_index = build_index(correlated, tau_min=TAU_MIN).index
        before = stream.occurrence_probability("AV", hotspot)
        after = correlated.occurrence_probability("AV", hotspot)
        found = [occ.position for occ in correlated_index.query("AV", TAU_MIN + 0.01)]
        print(
            f"correlation at beat {hotspot}: P(AV) rises from {before:.3f} to {after:.3f}; "
            f"indexed search still finds it at positions {found[:5]}..."
            if found
            else f"correlation at beat {hotspot}: P(AV) {before:.3f} -> {after:.3f}"
        )


if __name__ == "__main__":
    main()
