"""Approximate substring search: trading an additive error for optimal queries.

The exact indexes answer long patterns in ``O(m · occ)``; the approximate
index of Section 7 answers *any* pattern in ``O(m + occ)`` but may report
occurrences whose probability lies within ``ε`` below the threshold.  This
example quantifies that trade-off on a synthetic protein sequence:

* how the number of stored links grows as ε shrinks,
* how many extra (within-ε) occurrences each ε admits, and
* that verification (``verify=True``) restores the exact answer.

Run with::

    python examples/approximate_search.py
"""

import time

from repro import build_index
from repro.datasets import extract_patterns, generate_uncertain_string

SEQUENCE_LENGTH = 2_000
THETA = 0.3
TAU_MIN = 0.1
TAU = 0.25
SEED = 4242


def main() -> None:
    """Build exact and approximate indexes and compare their answers."""
    sequence = generate_uncertain_string(SEQUENCE_LENGTH, theta=THETA, seed=SEED)
    exact_index = build_index(sequence, tau_min=TAU_MIN).index
    patterns = extract_patterns(sequence, [8, 16], per_length=5, seed=SEED)

    print(f"sequence: n={SEQUENCE_LENGTH}, theta={THETA}, tau_min={TAU_MIN}, tau={TAU}")
    print(f"{'epsilon':>8}  {'links':>9}  {'build s':>8}  {'exact':>6}  {'approx':>6}  {'extra':>6}")
    for epsilon in (0.2, 0.1, 0.05, 0.02):
        started = time.perf_counter()
        # An explicit epsilon steers the planner to the approximate index.
        approximate_index = build_index(
            sequence, tau_min=TAU_MIN, epsilon=epsilon
        ).index
        build_seconds = time.perf_counter() - started

        exact_total = 0
        approximate_total = 0
        for pattern in patterns:
            exact_occurrences = {occ.position for occ in exact_index.query(pattern, TAU)}
            approximate_occurrences = {
                occ.position for occ in approximate_index.query(pattern, TAU)
            }
            missing = exact_occurrences - approximate_occurrences
            assert not missing, f"approximate index missed occurrences: {missing}"
            exact_total += len(exact_occurrences)
            approximate_total += len(approximate_occurrences)
        print(
            f"{epsilon:>8}  {approximate_index.link_count:>9}  {build_seconds:>8.2f}  "
            f"{exact_total:>6}  {approximate_total:>6}  "
            f"{approximate_total - exact_total:>6}"
        )

    # Verification turns the approximate answer back into the exact one.
    approximate_index = build_index(sequence, tau_min=TAU_MIN, epsilon=0.1).index
    pattern = patterns[0]
    verified = {occ.position for occ in approximate_index.query(pattern, TAU, verify=True)}
    exact = {occ.position for occ in exact_index.query(pattern, TAU)}
    print(
        f"\nwith verify=True the answers coincide for {pattern!r}: "
        f"{sorted(verified) == sorted(exact)}"
    )


if __name__ == "__main__":
    main()
