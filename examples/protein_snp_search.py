"""Bioinformatics scenario: motif search in an uncertain protein sequence.

Sequencing reads and population-level variant data (SNPs / InDels) make
biological sequences inherently uncertain — the paper's primary motivation
(Section 2, "Biological sequence data").  This example:

1. generates a protein-like uncertain string with the paper's Section 8.1
   recipe (θ fraction of uncertain positions, ≈5 choices each),
2. builds the general substring-search index for a construction threshold
   τ_min,
3. searches for motifs at several query thresholds and shows how the number
   of probable occurrences shrinks as τ grows,
4. cross-checks one query against the index-free online matcher.

Run with::

    python examples/protein_snp_search.py
"""

import time

from repro import OnlineDynamicProgrammingMatcher, SearchRequest, build_index
from repro.datasets import extract_patterns, generate_uncertain_string

SEQUENCE_LENGTH = 5_000
THETA = 0.3
TAU_MIN = 0.1
SEED = 20160315


def main() -> None:
    """Generate the dataset, build the index and run the motif searches."""
    print(f"generating uncertain protein sequence: n={SEQUENCE_LENGTH}, theta={THETA}")
    sequence = generate_uncertain_string(SEQUENCE_LENGTH, theta=THETA, seed=SEED)
    print(
        f"  {sequence.uncertain_position_count} uncertain positions "
        f"({sequence.uncertainty_fraction:.1%}), "
        f"{sequence.total_characters} characters in total"
    )

    started = time.perf_counter()
    engine = build_index(sequence, tau_min=TAU_MIN)
    build_seconds = time.perf_counter() - started
    index = engine.index
    stats = index.stats
    print(
        f"built index in {build_seconds:.2f}s: transformed length "
        f"N={int(stats['transformed_length'])} "
        f"({stats['expansion_ratio']:.1f}x expansion, "
        f"{int(stats['factor_count'])} maximal factors)"
    )
    print(f"index space: {index.nbytes() / 1e6:.1f} MB")
    print()

    # Motifs taken from the most likely realization so that matches exist.
    motifs = extract_patterns(sequence, [6, 12], per_length=3, seed=SEED)
    print("motif search at increasing thresholds:")
    taus = (0.1, 0.2, 0.4, 0.8)
    for motif in motifs:
        # One batch per motif: lazy results in request order, duplicates
        # (common in serving traffic) would share a single evaluation.
        results = engine.search_many([SearchRequest(motif, tau=tau) for tau in taus])
        counts = [f"tau={tau}: {result.count}" for tau, result in zip(taus, results)]
        print(f"  {motif!r:>16}  ->  " + ",  ".join(counts))
    print()

    # Cross-check against the no-index baseline and compare running time.
    motif = motifs[0]
    matcher = OnlineDynamicProgrammingMatcher(sequence)

    started = time.perf_counter()
    indexed_answer = engine.query(motif, tau=0.2)
    indexed_seconds = time.perf_counter() - started

    started = time.perf_counter()
    scanned_answer = matcher.query(motif, 0.2)
    scanned_seconds = time.perf_counter() - started

    assert [occ.position for occ in indexed_answer] == [
        occ.position for occ in scanned_answer
    ], "index and baseline disagree"
    print(
        f"cross-check on {motif!r}: {len(indexed_answer)} occurrence(s); "
        f"index {indexed_seconds * 1000:.2f} ms vs online scan "
        f"{scanned_seconds * 1000:.2f} ms"
    )


if __name__ == "__main__":
    main()
