"""Serving quickstart: an async coalescing service over a sharded, mmap-loaded index.

The production-shaped stack, bottom to top:

1. build a sharded index offline and save it (a directory of version-2
   archives carrying serialized RMQ payloads);
2. load it back with ``mmap=True`` (zero-copy cold start — the arrays are
   memory-mapped straight out of the archives) and
   ``query_executor="process"`` (one persistent worker process per shard,
   each mapping the same archives, so the index exists once in physical
   memory no matter how many workers serve it);
3. front it with :class:`repro.serving.AsyncSearchService`, which
   coalesces concurrent ``submit`` calls into micro-batched
   ``search_many`` evaluations — duplicate requests across users share
   one evaluation, and admission control sheds load before the queue
   grows unbounded.

Run with::

    python examples/async_serving.py
"""

import asyncio
import random
import tempfile
from pathlib import Path

from repro import AsyncSearchService, SearchRequest, build_sharded_index, load_index

N_DOCUMENTS = 40
DOCUMENT_LENGTH = 30
N_CLIENTS = 300
SHARDS = 4


def make_collection(rng):
    """A small synthetic collection of uncertain DNA-ish documents."""
    alphabet = "ACGT"
    documents = []
    for _ in range(N_DOCUMENTS):
        positions = []
        for _ in range(DOCUMENT_LENGTH):
            if rng.random() < 0.3:  # uncertain position: two candidates
                first, second = rng.sample(alphabet, 2)
                p = rng.uniform(0.55, 0.9)
                positions.append({first: round(p, 3), second: round(1 - p, 3)})
            else:
                positions.append({rng.choice(alphabet): 1.0})
        documents.append(positions)
    from repro import UncertainString

    return [UncertainString(document) for document in documents]


async def serve(engine, requests):
    async with AsyncSearchService(engine, max_wait_ms=2.0, max_batch=128) as service:
        results = await asyncio.gather(
            *(service.submit(request) for request in requests)
        )
        return results, service.stats()


def main():
    rng = random.Random(42)
    collection = make_collection(rng)

    with tempfile.TemporaryDirectory() as scratch:
        # 1. Build offline, save, forget.
        built = build_sharded_index(collection, shards=SHARDS, tau_min=0.1)
        archive = built.save(Path(scratch) / "corpus")
        built.close()

        # 2. Cold-start the serving copy: memory-mapped shards behind
        #    per-shard worker processes.
        engine = load_index(archive, mmap=True, query_executor="process")
        print(f"serving {engine.shard_count} shards, kind={engine.kind!r}")

        # 3. A storm of concurrent clients asking popular patterns.
        patterns = ["AC", "ACG", "GT", "TTA", "CA"]
        requests = [
            SearchRequest(rng.choice(patterns), tau=rng.choice([0.1, 0.2, 0.4]))
            for _ in range(N_CLIENTS)
        ]
        results, stats = asyncio.run(serve(engine, requests))
        engine.close()

    answered = sum(result.count for result in results)
    print(f"{stats['submitted']} requests answered with {answered} total matches")
    print(
        f"coalesced into {stats['batches']} batches "
        f"(mean size {stats['mean_batch_size']:.1f}); "
        f"{stats['deduplicated']} duplicates shared an evaluation"
    )
    print(
        f"latency: mean {stats['latency']['mean_ms']:.2f}ms, "
        f"max {stats['latency']['max_ms']:.2f}ms"
    )


if __name__ == "__main__":
    main()
