"""String-listing scenario: quarantining files that probably contain a signature.

The paper motivates the uncertain string listing problem with virus
scanning over fuzzy file contents (Section 6, "Practical motivation"): given
a collection of uncertain text files and a deterministic signature, report
every file that contains the signature with probability above a confidence
threshold — in time proportional to the number of reported files, not the
collection size.

This example builds a synthetic collection of "files" (uncertain strings),
plants a signature into a few of them with varying confidence, and compares:

* the listing index (one search over the whole collection), and
* the naive per-document scan,

under both the ``max`` and the ``or`` relevance metrics.

Run with::

    python examples/virus_pattern_listing.py
"""

import random
import time
from typing import List

from repro import UncertainString, UncertainStringCollection, build_index
from repro.datasets import generate_uncertain_string

FILE_COUNT = 60
FILE_LENGTH = 80
SIGNATURE = "MALWARE"
INFECTED_FILES = (3, 17, 29, 44)
TAU_MIN = 0.05
SEED = 99


def plant_signature(document: UncertainString, at: int, confidence: float) -> UncertainString:
    """Overwrite part of a document with the signature at the given confidence.

    Each signature character keeps probability ``confidence`` with the rest
    of the mass on a decoy character, simulating partial obfuscation.
    """
    rows = document.to_table()
    for offset, character in enumerate(SIGNATURE):
        decoy = "X" if character != "X" else "Y"
        rows[at + offset] = {character: confidence, decoy: 1.0 - confidence}
    return UncertainString.from_table(rows, name=document.name)


def build_collection() -> UncertainStringCollection:
    """Create the file collection with a few infected members."""
    rng = random.Random(SEED)
    documents: List[UncertainString] = []
    for identifier in range(FILE_COUNT):
        document = generate_uncertain_string(
            FILE_LENGTH, theta=0.25, seed=SEED + identifier
        )
        document = UncertainString(list(document.positions), name=f"file-{identifier:03d}")
        if identifier in INFECTED_FILES:
            confidence = rng.uniform(0.75, 0.98)
            document = plant_signature(
                document, rng.randrange(0, FILE_LENGTH - len(SIGNATURE)), confidence
            )
        documents.append(document)
    return UncertainStringCollection(documents)


def main() -> None:
    """Build the collection and compare indexed listing with the naive scan."""
    collection = build_collection()
    print(
        f"collection: {len(collection)} files, {collection.total_positions} positions, "
        f"{len(INFECTED_FILES)} infected"
    )

    for metric in ("max", "or"):
        index = build_index(collection, tau_min=TAU_MIN, metric=metric).index
        print(f"\nrelevance metric: {metric!r}")
        for tau in (0.1, 0.3, 0.6):
            started = time.perf_counter()
            matches = index.query(SIGNATURE, tau)
            indexed_ms = (time.perf_counter() - started) * 1000

            started = time.perf_counter()
            naive = collection.matching_documents(SIGNATURE, tau)
            naive_ms = (time.perf_counter() - started) * 1000

            names = [collection.name_of(match.document) for match in matches]
            print(
                f"  tau={tau}: quarantine {names} "
                f"(index {indexed_ms:.2f} ms, naive scan {naive_ms:.2f} ms)"
            )
            if metric == "max":
                assert [match.document for match in matches] == naive, (
                    "index and naive scan disagree"
                )

    print(
        "\nexpected infected files:",
        [f"file-{identifier:03d}" for identifier in INFECTED_FILES],
    )


if __name__ == "__main__":
    main()
