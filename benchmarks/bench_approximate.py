"""Ablation: exact general index vs approximate link index (paper Section 7).

The approximate index promises ``O(m + occ)`` for every pattern length at
the price of an additive error ε.  The benchmark compares query time against
the exact index on the same workload and records the link count (which grows
as ε shrinks).
"""

import pytest

from conftest import TAU, TAU_MIN, run_query_batch

from repro.core.approximate import ApproximateSubstringIndex

N = 1000
THETA = 0.3


@pytest.fixture(scope="module")
def shared_workload(substring_workloads):
    return substring_workloads(N, THETA)


@pytest.fixture(scope="module", params=[0.1, 0.05])
def approximate_index(request, shared_workload):
    index = ApproximateSubstringIndex(
        shared_workload.string, tau_min=TAU_MIN, epsilon=request.param
    )
    return index


@pytest.mark.benchmark(group="approximate-vs-exact")
def test_exact_general_index(benchmark, shared_workload):
    benchmark.extra_info.update({"variant": "exact", "n": N, "theta": THETA})
    benchmark(run_query_batch, shared_workload.index, shared_workload.patterns, TAU)


@pytest.mark.benchmark(group="approximate-vs-exact")
def test_approximate_link_index(benchmark, shared_workload, approximate_index):
    benchmark.extra_info.update(
        {
            "variant": "approximate",
            "epsilon": approximate_index.epsilon,
            "links": approximate_index.link_count,
        }
    )
    benchmark(
        run_query_batch, approximate_index, shared_workload.patterns, TAU
    )


@pytest.mark.benchmark(group="approximate-construction", min_rounds=1)
@pytest.mark.parametrize("epsilon", [0.2, 0.05])
def test_approximate_index_construction(benchmark, shared_workload, epsilon):
    benchmark.extra_info.update({"epsilon": epsilon, "n": N})
    index = benchmark(
        ApproximateSubstringIndex,
        shared_workload.string,
        tau_min=TAU_MIN,
        epsilon=epsilon,
    )
    benchmark.extra_info["links"] = index.link_count
