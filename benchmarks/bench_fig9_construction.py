"""Figure 9 — index construction time and index space (paper Section 8.6–8.7).

Panels:

* (a) construction time vs string size n     -> group ``fig9a``
* (b) construction time vs τ_min             -> group ``fig9b``
* (c) index space vs string size n           -> group ``fig9c``
  (space is recorded in ``extra_info`` as megabytes; the timed call is the
  space accounting itself, which is cheap).
"""

import pytest

from conftest import STRING_SIZES, TAU_MIN, THETAS

from repro.bench.workloads import cached_uncertain_string
from repro.core.general_index import GeneralUncertainStringIndex


@pytest.mark.benchmark(group="fig9a-construction-time-vs-n", min_rounds=1)
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("n", STRING_SIZES)
def test_fig9a_construction_time_vs_string_size(benchmark, n, theta):
    string = cached_uncertain_string(n, theta)
    benchmark.extra_info.update({"n": n, "theta": theta, "tau_min": TAU_MIN})
    index = benchmark(GeneralUncertainStringIndex, string, tau_min=TAU_MIN)
    benchmark.extra_info["transformed_length"] = index.stats["transformed_length"]


@pytest.mark.benchmark(group="fig9b-construction-time-vs-tau-min", min_rounds=1)
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("tau_min", [0.1, 0.15, 0.2])
def test_fig9b_construction_time_vs_tau_min(benchmark, tau_min, theta):
    string = cached_uncertain_string(1000, theta)
    benchmark.extra_info.update({"n": 1000, "theta": theta, "tau_min": tau_min})
    index = benchmark(GeneralUncertainStringIndex, string, tau_min=tau_min)
    benchmark.extra_info["expansion_ratio"] = round(index.stats["expansion_ratio"], 2)


@pytest.mark.benchmark(group="fig9c-index-space-vs-n", min_rounds=1)
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("n", STRING_SIZES)
def test_fig9c_index_space_vs_string_size(benchmark, substring_workloads, n, theta):
    work = substring_workloads(n, theta)
    megabytes = work.index.nbytes() / (1024.0 * 1024.0)
    benchmark.extra_info.update(
        {"n": n, "theta": theta, "index_space_mb": round(megabytes, 2)}
    )
    benchmark(work.index.space_report)
