"""Ablation: efficient RMQ index vs simple scanning index vs no index.

The paper motivates the Section 4.2 index by the weakness of the Section 4.1
scanning index (time proportional to all deterministic matches) and of the
index-free dynamic-programming approach of Li et al. (time proportional to
the string).  This ablation quantifies both gaps on the same workload.
"""

import pytest

from conftest import TAU, TAU_MIN, run_query_batch

from repro.core.baseline import OnlineDynamicProgrammingMatcher
from repro.core.simple_index import SimpleSpecialIndex

N = 2000
THETA = 0.3


@pytest.fixture(scope="module")
def shared_workload(substring_workloads):
    return substring_workloads(N, THETA)


@pytest.fixture(scope="module")
def simple_index(shared_workload):
    return SimpleSpecialIndex(shared_workload.index.transformed.to_special_string())


@pytest.fixture(scope="module")
def online_matcher(shared_workload):
    return OnlineDynamicProgrammingMatcher(shared_workload.string)


@pytest.mark.benchmark(group="baseline-comparison")
def test_efficient_rmq_index(benchmark, shared_workload):
    benchmark.extra_info.update({"variant": "efficient", "n": N, "theta": THETA})
    benchmark(run_query_batch, shared_workload.index, shared_workload.patterns, TAU)


@pytest.mark.benchmark(group="baseline-comparison")
def test_simple_scanning_index(benchmark, shared_workload, simple_index):
    benchmark.extra_info.update({"variant": "simple-scan", "n": N, "theta": THETA})
    benchmark(run_query_batch, simple_index, shared_workload.patterns, TAU)


@pytest.mark.benchmark(group="baseline-comparison")
def test_online_dynamic_programming(benchmark, shared_workload, online_matcher):
    benchmark.extra_info.update({"variant": "online-dp", "n": N, "theta": THETA})
    benchmark(run_query_batch, online_matcher, shared_workload.patterns, TAU)


@pytest.mark.benchmark(group="baseline-threshold-selectivity")
@pytest.mark.parametrize("tau", [TAU_MIN, 0.3, 0.6])
def test_efficient_index_output_sensitivity(benchmark, shared_workload, tau):
    """The RMQ index's time tracks the output size as τ changes."""
    benchmark.extra_info.update({"variant": "efficient", "tau": tau})
    benchmark(run_query_batch, shared_workload.index, shared_workload.patterns, tau)
