"""Figure 7 — substring-search query time (paper Section 8.2–8.5).

Panels:

* (a) query time vs string size n          -> group ``fig7a``
* (b) query time vs query threshold τ      -> group ``fig7b``
* (c) query time vs construction τ_min     -> group ``fig7c``
* (d) query time vs pattern length m       -> group ``fig7d``

Each benchmark times a batch of queries against the general uncertain-string
index; one benchmark per (x value, θ) cell, mirroring the paper's per-θ
lines.
"""

import pytest

from conftest import (
    MIXED_QUERY_LENGTHS,
    PATTERNS_PER_LENGTH,
    STRING_SIZES,
    TAU,
    TAU_MIN,
    THETAS,
    run_query_batch,
)


@pytest.mark.benchmark(group="fig7a-query-time-vs-n")
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("n", STRING_SIZES)
def test_fig7a_query_time_vs_string_size(benchmark, substring_workloads, n, theta):
    work = substring_workloads(n, theta)
    benchmark.extra_info.update({"n": n, "theta": theta, "tau": TAU, "tau_min": TAU_MIN})
    benchmark(run_query_batch, work.index, work.patterns, TAU)


@pytest.mark.benchmark(group="fig7b-query-time-vs-tau")
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("tau", [0.10, 0.12, 0.15])
def test_fig7b_query_time_vs_tau(benchmark, substring_workloads, tau, theta):
    work = substring_workloads(2000, theta)
    benchmark.extra_info.update({"n": 2000, "theta": theta, "tau": tau})
    benchmark(run_query_batch, work.index, work.patterns, tau)


@pytest.mark.benchmark(group="fig7c-query-time-vs-tau-min")
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("tau_min", [0.1, 0.2])
def test_fig7c_query_time_vs_tau_min(benchmark, substring_workloads, tau_min, theta):
    work = substring_workloads(1000, theta, tau_min=tau_min)
    tau = max(TAU, tau_min)
    benchmark.extra_info.update({"n": 1000, "theta": theta, "tau_min": tau_min})
    benchmark(run_query_batch, work.index, work.patterns, tau)


@pytest.mark.benchmark(group="fig7d-query-time-vs-pattern-length")
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("length", [5, 10, 20])
def test_fig7d_query_time_vs_pattern_length(
    benchmark, substring_workloads, length, theta
):
    work = substring_workloads(2000, theta, query_lengths=(length,))
    benchmark.extra_info.update({"n": 2000, "theta": theta, "m": length})
    benchmark(run_query_batch, work.index, work.patterns, TAU)
