"""Shared configuration for the pytest-benchmark suite.

The benchmarks regenerate every figure of the paper's evaluation (Section 8)
at laptop-friendly sizes.  Index construction dominates the cost of a
benchmark session, so all workloads go through the memoized builders in
:mod:`repro.bench.workloads` — each (n, θ, τ_min) cell is generated and
indexed exactly once per session.

Run with::

    pytest benchmarks/ --benchmark-only

The sizes here are intentionally smaller than the paper's (see
EXPERIMENTS.md): a pure-Python run at n = 300K would take hours without
changing any conclusion about the curves' shapes.
"""

from __future__ import annotations

import pytest

#: String sizes used by the scaling panels (the paper sweeps 2K–300K).
STRING_SIZES = (1000, 2000, 4000)

#: Collection sizes (total positions) for the listing panels.
COLLECTION_SIZES = (1000, 2000, 4000)

#: Uncertainty fractions benchmarked (the paper uses 0.1–0.4 throughout).
THETAS = (0.1, 0.3)

#: Construction-time threshold shared by most panels.
TAU_MIN = 0.1

#: Query-time threshold shared by most panels.
TAU = 0.2

#: Pattern lengths mixed into the scaling panels (the paper averages over
#: lengths 10 / 100 / 500 / 1000; anything longer than the string is skipped).
MIXED_QUERY_LENGTHS = (10, 50, 200)

#: Pattern lengths for the listing panels (documents are 20–45 positions).
LISTING_QUERY_LENGTHS = (5, 10)

#: Patterns generated per length.
PATTERNS_PER_LENGTH = 3


@pytest.fixture(scope="session")
def substring_workloads():
    """Memoized access to substring-search workloads."""
    from repro.bench.workloads import substring_workload

    def build(n, theta, tau_min=TAU_MIN, query_lengths=MIXED_QUERY_LENGTHS):
        return substring_workload(
            n,
            theta,
            tau_min=tau_min,
            query_lengths=query_lengths,
            patterns_per_length=PATTERNS_PER_LENGTH,
        )

    return build


@pytest.fixture(scope="session")
def listing_workloads():
    """Memoized access to string-listing workloads."""
    from repro.bench.workloads import listing_workload

    def build(n, theta, tau_min=TAU_MIN, query_lengths=LISTING_QUERY_LENGTHS):
        return listing_workload(
            n,
            theta,
            tau_min=tau_min,
            query_lengths=query_lengths,
            patterns_per_length=PATTERNS_PER_LENGTH,
        )

    return build


def run_query_batch(index, patterns, tau):
    """Issue one query per pattern (the unit of work every benchmark times)."""
    for pattern in patterns:
        index.query(pattern, tau)
