"""Ablation: sparse-table RMQ vs block-decomposed RMQ (paper Section 8.7).

The paper uses succinct 2n-bit RMQ structures; this package offers an
O(1)-query sparse table and a linear-space block decomposition.  The
benchmark measures query throughput and records the space of each so the
trade-off behind the default choice is visible.
"""

import numpy as np
import pytest

from repro.suffix.rmq import BlockRMQ, SparseTableRMQ

ARRAY_SIZE = 100_000
QUERY_COUNT = 2_000


@pytest.fixture(scope="module")
def values():
    return np.random.default_rng(42).random(ARRAY_SIZE)


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(43)
    lefts = rng.integers(0, ARRAY_SIZE, QUERY_COUNT)
    rights = rng.integers(0, ARRAY_SIZE, QUERY_COUNT)
    return [(int(min(a, b)), int(max(a, b))) for a, b in zip(lefts, rights)]


def run_queries(rmq, queries):
    for left, right in queries:
        rmq.query(left, right)


@pytest.mark.benchmark(group="rmq-construction")
def test_sparse_table_construction(benchmark, values):
    rmq = benchmark(SparseTableRMQ, values)
    benchmark.extra_info["space_mb"] = round(rmq.nbytes() / 1e6, 2)


@pytest.mark.benchmark(group="rmq-construction")
def test_block_rmq_construction(benchmark, values):
    rmq = benchmark(BlockRMQ, values)
    benchmark.extra_info["space_mb"] = round(rmq.nbytes() / 1e6, 2)


@pytest.mark.benchmark(group="rmq-query")
def test_sparse_table_queries(benchmark, values, queries):
    rmq = SparseTableRMQ(values)
    benchmark.extra_info["space_mb"] = round(rmq.nbytes() / 1e6, 2)
    benchmark(run_queries, rmq, queries)


@pytest.mark.benchmark(group="rmq-query")
def test_block_rmq_queries(benchmark, values, queries):
    rmq = BlockRMQ(values)
    benchmark.extra_info["space_mb"] = round(rmq.nbytes() / 1e6, 2)
    benchmark(run_queries, rmq, queries)
