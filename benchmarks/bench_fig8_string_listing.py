"""Figure 8 — string-listing query time (paper Section 8.2–8.5).

Same four panels as Figure 7, but queries go to the document-listing index
built over a collection of uncertain strings whose lengths follow the
paper's 20–45 position distribution.
"""

import pytest

from conftest import (
    COLLECTION_SIZES,
    LISTING_QUERY_LENGTHS,
    TAU,
    TAU_MIN,
    THETAS,
    run_query_batch,
)


@pytest.mark.benchmark(group="fig8a-listing-time-vs-n")
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("n", COLLECTION_SIZES)
def test_fig8a_listing_time_vs_collection_size(benchmark, listing_workloads, n, theta):
    work = listing_workloads(n, theta)
    benchmark.extra_info.update({"n": n, "theta": theta, "tau": TAU, "tau_min": TAU_MIN})
    benchmark(run_query_batch, work.index, work.patterns, TAU)


@pytest.mark.benchmark(group="fig8b-listing-time-vs-tau")
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("tau", [0.10, 0.12, 0.15])
def test_fig8b_listing_time_vs_tau(benchmark, listing_workloads, tau, theta):
    work = listing_workloads(2000, theta)
    benchmark.extra_info.update({"n": 2000, "theta": theta, "tau": tau})
    benchmark(run_query_batch, work.index, work.patterns, tau)


@pytest.mark.benchmark(group="fig8c-listing-time-vs-tau-min")
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("tau_min", [0.1, 0.2])
def test_fig8c_listing_time_vs_tau_min(benchmark, listing_workloads, tau_min, theta):
    work = listing_workloads(1000, theta, tau_min=tau_min)
    tau = max(TAU, tau_min)
    benchmark.extra_info.update({"n": 1000, "theta": theta, "tau_min": tau_min})
    benchmark(run_query_batch, work.index, work.patterns, tau)


@pytest.mark.benchmark(group="fig8d-listing-time-vs-pattern-length")
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("length", LISTING_QUERY_LENGTHS + (15,))
def test_fig8d_listing_time_vs_pattern_length(
    benchmark, listing_workloads, length, theta
):
    work = listing_workloads(2000, theta, query_lengths=(length,))
    benchmark.extra_info.update({"n": 2000, "theta": theta, "m": length})
    benchmark(run_query_batch, work.index, work.patterns, TAU)
