"""Property-based equivalence tests: every index vs the brute-force oracle.

These are the strongest correctness tests in the suite: hypothesis generates
random uncertain strings, random patterns and random thresholds, and every
index must return exactly the occurrences the definition (Section 3.2)
prescribes.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.baseline import BruteForceOracle, OnlineDynamicProgrammingMatcher
from repro.core.general_index import GeneralUncertainStringIndex
from repro.core.simple_index import SimpleSpecialIndex
from repro.core.special_index import SpecialUncertainStringIndex
from repro.strings import SpecialUncertainString, UncertainString

ALPHABET = "AB"


@st.composite
def special_strings(draw):
    """Random special uncertain strings over a 2-letter alphabet."""
    length = draw(st.integers(min_value=2, max_value=40))
    pairs = [
        (
            draw(st.sampled_from(ALPHABET)),
            draw(st.floats(min_value=0.05, max_value=1.0)),
        )
        for _ in range(length)
    ]
    return SpecialUncertainString(pairs)


@st.composite
def uncertain_strings(draw):
    """Random general uncertain strings over a 3-letter alphabet."""
    length = draw(st.integers(min_value=2, max_value=25))
    rows = []
    for _ in range(length):
        support = draw(st.sets(st.sampled_from("ABC"), min_size=1, max_size=3))
        weights = {c: draw(st.floats(min_value=0.05, max_value=1.0)) for c in support}
        total = sum(weights.values())
        rows.append({c: w / total for c, w in weights.items()})
    return UncertainString.from_table(rows)


def _pattern_from(draw_data, backbone, max_length=6):
    length = draw_data.draw(
        st.integers(min_value=1, max_value=min(max_length, len(backbone)))
    )
    start = draw_data.draw(st.integers(min_value=0, max_value=len(backbone) - length))
    return backbone[start : start + length]


def _assert_same_positions(got, expected, probability_of, tau, tolerance=1e-9):
    """Position sets must agree except where the probability sits exactly on τ.

    The indexes compare log-space sums against ``log τ`` while the oracle
    multiplies probabilities directly; when an occurrence probability equals
    the threshold to within floating-point rounding the strict ``> τ`` test
    may legitimately go either way.
    """
    got_set, expected_set = set(got), set(expected)
    for position in got_set ^ expected_set:
        assert abs(probability_of(position) - tau) <= tolerance, (
            position,
            probability_of(position),
            tau,
        )


@settings(max_examples=40, deadline=None)
@given(special_strings(), st.data())
def test_special_indexes_agree_with_scan(string, data):
    pattern = _pattern_from(data, string.text)
    tau = data.draw(st.floats(min_value=0.01, max_value=0.95))
    expected = string.matching_positions(pattern, tau)
    simple = SimpleSpecialIndex(string)
    efficient = SpecialUncertainStringIndex(string)

    def probability_of(position):
        return string.occurrence_probability(pattern, position)

    _assert_same_positions(
        [occ.position for occ in simple.query(pattern, tau)], expected, probability_of, tau
    )
    _assert_same_positions(
        [occ.position for occ in efficient.query(pattern, tau)],
        expected,
        probability_of,
        tau,
    )


@settings(max_examples=30, deadline=None)
@given(uncertain_strings(), st.data())
def test_general_index_matches_oracle(string, data):
    tau_min = 0.1
    pattern = _pattern_from(data, string.most_likely_string())
    tau = data.draw(st.floats(min_value=tau_min, max_value=0.95))
    index = GeneralUncertainStringIndex(string, tau_min=tau_min)
    oracle = BruteForceOracle(string=string)
    expected = oracle.substring_occurrences(pattern, tau)
    got = index.query(pattern, tau)
    _assert_same_positions(
        [occ.position for occ in got],
        [occ.position for occ in expected],
        lambda position: string.occurrence_probability(pattern, position),
        tau,
    )
    expected_by_position = {occ.position: occ.probability for occ in expected}
    for got_occurrence in got:
        if got_occurrence.position in expected_by_position:
            assert math.isclose(
                got_occurrence.probability,
                expected_by_position[got_occurrence.position],
                rel_tol=1e-9,
            )


@settings(max_examples=30, deadline=None)
@given(uncertain_strings(), st.data())
def test_online_matcher_matches_oracle(string, data):
    pattern = _pattern_from(data, string.most_likely_string())
    tau = data.draw(st.floats(min_value=0.01, max_value=0.95))
    matcher = OnlineDynamicProgrammingMatcher(string)
    oracle = BruteForceOracle(string=string)
    _assert_same_positions(
        [occ.position for occ in matcher.query(pattern, tau)],
        [occ.position for occ in oracle.substring_occurrences(pattern, tau)],
        lambda position: string.occurrence_probability(pattern, position),
        tau,
    )


@settings(max_examples=25, deadline=None)
@given(uncertain_strings(), st.data())
def test_general_index_monotone_in_threshold(string, data):
    """Raising the threshold can only shrink the answer set."""
    tau_min = 0.1
    pattern = _pattern_from(data, string.most_likely_string(), max_length=4)
    index = GeneralUncertainStringIndex(string, tau_min=tau_min)
    low = data.draw(st.floats(min_value=tau_min, max_value=0.5))
    high = data.draw(st.floats(min_value=0.5, max_value=0.95))
    low_positions = {occ.position for occ in index.query(pattern, low)}
    high_positions = {occ.position for occ in index.query(pattern, high)}
    assert high_positions <= low_positions


@settings(max_examples=25, deadline=None)
@given(uncertain_strings(), st.data())
def test_reported_probabilities_exceed_threshold(string, data):
    tau_min = 0.1
    pattern = _pattern_from(data, string.most_likely_string(), max_length=4)
    tau = data.draw(st.floats(min_value=tau_min, max_value=0.9))
    index = GeneralUncertainStringIndex(string, tau_min=tau_min)
    for occurrence in index.query(pattern, tau):
        assert occurrence.probability > tau - 1e-9
        assert math.isclose(
            occurrence.probability,
            string.occurrence_probability(pattern, occurrence.position),
            rel_tol=1e-9,
        )
