"""Property-based tests for the RMQ structures."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.suffix.rmq import BlockRMQ, SparseTableRMQ

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(finite_floats, min_size=1, max_size=150)


@settings(max_examples=80, deadline=None)
@given(value_lists, st.data())
def test_sparse_table_matches_numpy(values, data):
    array = np.asarray(values)
    rmq = SparseTableRMQ(array)
    left = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
    right = data.draw(st.integers(min_value=left, max_value=len(values) - 1))
    index = rmq.query(left, right)
    assert left <= index <= right
    assert array[index] == array[left : right + 1].max()


@settings(max_examples=80, deadline=None)
@given(value_lists, st.integers(min_value=1, max_value=16), st.data())
def test_block_rmq_matches_sparse_table(values, block_size, data):
    array = np.asarray(values)
    sparse = SparseTableRMQ(array)
    block = BlockRMQ(array, block_size=block_size)
    left = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
    right = data.draw(st.integers(min_value=left, max_value=len(values) - 1))
    assert array[block.query(left, right)] == array[sparse.query(left, right)]


@settings(max_examples=60, deadline=None)
@given(value_lists, st.data())
def test_min_mode_returns_range_minimum(values, data):
    array = np.asarray(values)
    minimum = SparseTableRMQ(array, mode="min")
    left = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
    right = data.draw(st.integers(min_value=left, max_value=len(values) - 1))
    assert array[minimum.query(left, right)] == array[left : right + 1].min()


@settings(max_examples=60, deadline=None)
@given(value_lists)
def test_full_range_query_is_global_optimum(values):
    array = np.asarray(values)
    rmq = SparseTableRMQ(array)
    assert array[rmq.query(0, len(values) - 1)] == array.max()
