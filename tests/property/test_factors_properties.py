"""Property-based tests for the maximal-factor transformation (Lemma 2)."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.factors import enumerate_maximal_factors, transform_uncertain_string
from repro.strings import UncertainString


@st.composite
def uncertain_strings(draw):
    length = draw(st.integers(min_value=1, max_value=18))
    rows = []
    for _ in range(length):
        support = draw(st.sets(st.sampled_from("AB"), min_size=1, max_size=2))
        weights = {c: draw(st.floats(min_value=0.1, max_value=1.0)) for c in support}
        total = sum(weights.values())
        rows.append({c: w / total for c, w in weights.items()})
    return UncertainString.from_table(rows)


thresholds = st.sampled_from([0.1, 0.2, 0.35, 0.5])


@settings(max_examples=40, deadline=None)
@given(uncertain_strings(), thresholds)
def test_factors_meet_threshold_and_are_maximal(string, tau_min):
    for factor in enumerate_maximal_factors(string, tau_min):
        probability = string.occurrence_probability(factor.characters, factor.start)
        assert probability >= tau_min - 1e-9
        end = factor.start + factor.length
        if end < len(string):
            for character, _ in string[end]:
                assert probability * string[end].probability(character) < tau_min + 1e-9


@settings(max_examples=40, deadline=None)
@given(uncertain_strings(), thresholds)
def test_factor_probabilities_match_string(string, tau_min):
    for factor in enumerate_maximal_factors(string, tau_min):
        assert math.isclose(
            factor.probability,
            string.occurrence_probability(factor.characters, factor.start),
            rel_tol=1e-9,
        )


@settings(max_examples=30, deadline=None)
@given(uncertain_strings(), thresholds, st.data())
def test_conservation_property(string, tau_min, data):
    """Every substring with probability >= tau_min appears in the transformation."""
    try:
        transformed = transform_uncertain_string(string, tau_min)
    except Exception:
        # No position reaches tau_min: then no substring can either.
        backbone = string.most_likely_string()
        assert all(
            string.occurrence_probability(backbone[i : i + 1], i) < tau_min
            for i in range(len(string))
        )
        return
    backbone = string.most_likely_string()
    length = data.draw(st.integers(min_value=1, max_value=min(5, len(string))))
    start = data.draw(st.integers(min_value=0, max_value=len(string) - length))
    pattern = backbone[start : start + length]
    if string.occurrence_probability(pattern, start) >= tau_min + 1e-9:
        assert pattern in transformed.text
        # And the Pos array lets us recover the original start position.
        index = transformed.text.index(pattern)
        assert transformed.positions[index] >= 0


@settings(max_examples=30, deadline=None)
@given(uncertain_strings(), thresholds)
def test_transformed_windows_reproduce_original_probabilities(string, tau_min):
    try:
        transformed = transform_uncertain_string(string, tau_min)
    except Exception:
        return
    # For every factor, the stored per-character probabilities reproduce the
    # original occurrence probability of each of its prefixes.
    for factor in transformed.factors[:20]:
        running = 1.0
        for offset in range(factor.length):
            running *= factor.probabilities[offset]
            prefix = factor.characters[: offset + 1]
            assert math.isclose(
                running,
                string.occurrence_probability(prefix, factor.start),
                rel_tol=1e-9,
            )


@settings(max_examples=30, deadline=None)
@given(uncertain_strings())
def test_expansion_shrinks_as_tau_min_grows(string):
    sizes = []
    for tau_min in (0.1, 0.3, 0.6):
        try:
            sizes.append(transform_uncertain_string(string, tau_min).length)
        except Exception:
            sizes.append(0)
    non_zero = [size for size in sizes if size > 0]
    assert non_zero == sorted(non_zero, reverse=True)
