"""Property-based tests for the suffix-array / LCP / suffix-tree substrate."""

from hypothesis import given, settings, strategies as st

from repro.suffix.lcp import build_lcp_array, naive_lcp_array
from repro.suffix.pattern_search import suffix_range
from repro.suffix.suffix_array import SuffixArray, build_suffix_array, naive_suffix_array
from repro.suffix.suffix_tree import SuffixTree

#: Texts over a tiny alphabet maximize repeated substrings, which is where
#: suffix structures earn their keep (and where bugs hide).
texts = st.text(alphabet="ab$", min_size=1, max_size=120)
busy_texts = st.text(alphabet="ab", min_size=2, max_size=80)


@settings(max_examples=60, deadline=None)
@given(texts)
def test_suffix_array_matches_naive(text):
    assert build_suffix_array(text).tolist() == naive_suffix_array(text)


@settings(max_examples=60, deadline=None)
@given(texts)
def test_suffix_array_is_sorted_permutation(text):
    suffix_array = build_suffix_array(text).tolist()
    assert sorted(suffix_array) == list(range(len(text)))
    suffixes = [text[start:] for start in suffix_array]
    assert suffixes == sorted(suffixes)


@settings(max_examples=60, deadline=None)
@given(texts)
def test_lcp_matches_naive(text):
    suffix_array = build_suffix_array(text)
    assert build_lcp_array(text, suffix_array).tolist() == naive_lcp_array(
        text, suffix_array.tolist()
    )


@settings(max_examples=60, deadline=None)
@given(texts)
def test_lcp_values_are_actual_common_prefix_lengths(text):
    suffix_array = build_suffix_array(text)
    lcp = build_lcp_array(text, suffix_array)
    for rank in range(1, len(text)):
        a = text[int(suffix_array[rank - 1]) :]
        b = text[int(suffix_array[rank]) :]
        length = int(lcp[rank])
        assert a[:length] == b[:length]
        assert length == min(len(a), len(b)) or a[length] != b[length]


@settings(max_examples=50, deadline=None)
@given(busy_texts, st.data())
def test_suffix_range_reports_exactly_the_occurrences(text, data):
    length = data.draw(st.integers(min_value=1, max_value=min(4, len(text))))
    start = data.draw(st.integers(min_value=0, max_value=len(text) - length))
    pattern = text[start : start + length]
    suffix_array = build_suffix_array(text)
    interval = suffix_range(text, suffix_array, pattern)
    assert interval is not None
    sp, ep = interval
    positions = sorted(int(suffix_array[rank]) for rank in range(sp, ep + 1))
    assert positions == [
        index
        for index in range(len(text) - length + 1)
        if text[index : index + length] == pattern
    ]


@settings(max_examples=40, deadline=None)
@given(busy_texts)
def test_suffix_tree_structure_invariants(text):
    tree = SuffixTree(SuffixArray(text))
    for node in range(tree.node_count):
        left, right = tree.node_range(node)
        assert 0 <= left <= right < tree.leaf_count
        parent = tree.node_parent(node)
        if parent != -1:
            parent_left, parent_right = tree.node_range(parent)
            assert parent_left <= left and right <= parent_right
            assert tree.node_depth(parent) < tree.node_depth(node)


@settings(max_examples=40, deadline=None)
@given(busy_texts, st.integers(min_value=1, max_value=6))
def test_depth_partitions_tile_the_leaves(text, depth):
    tree = SuffixTree(SuffixArray(text))
    partitions = tree.depth_partitions(depth)
    covered = []
    for left, right in partitions:
        assert left <= right
        covered.extend(range(left, right + 1))
    assert covered == list(range(tree.leaf_count))
    # Members of one partition share their length-`depth` prefix.
    sa = tree.suffix_array.array
    for left, right in partitions:
        prefixes = {
            text[int(sa[rank]) : int(sa[rank]) + depth]
            for rank in range(left, right + 1)
            if int(sa[rank]) + depth <= len(text)
        }
        assert len(prefixes) <= 1


@settings(max_examples=40, deadline=None)
@given(busy_texts, st.data())
def test_locus_is_highest_node_spelling_pattern(text, data):
    length = data.draw(st.integers(min_value=1, max_value=min(5, len(text))))
    start = data.draw(st.integers(min_value=0, max_value=len(text) - length))
    pattern = text[start : start + length]
    tree = SuffixTree(SuffixArray(text))
    locus = tree.locus(pattern)
    assert locus is not None
    assert tree.node_range(locus) == tree.pattern_range(pattern)
    assert tree.node_depth(locus) >= length
    parent = tree.node_parent(locus)
    assert parent == -1 or tree.node_depth(parent) < length
