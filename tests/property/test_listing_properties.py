"""Property-based tests for the string-listing index (Section 6)."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.baseline import BruteForceOracle
from repro.core.listing import UncertainStringListingIndex, combine_relevance
from repro.strings import UncertainString, UncertainStringCollection


@st.composite
def collections(draw):
    document_count = draw(st.integers(min_value=1, max_value=5))
    documents = []
    for _ in range(document_count):
        length = draw(st.integers(min_value=2, max_value=12))
        rows = []
        for _ in range(length):
            support = draw(st.sets(st.sampled_from("AB"), min_size=1, max_size=2))
            weights = {c: draw(st.floats(min_value=0.1, max_value=1.0)) for c in support}
            total = sum(weights.values())
            rows.append({c: w / total for c, w in weights.items()})
        documents.append(UncertainString.from_table(rows))
    return UncertainStringCollection(documents)


@settings(max_examples=30, deadline=None)
@given(collections(), st.data())
def test_max_metric_matches_oracle(collection, data):
    tau_min = 0.1
    index = UncertainStringListingIndex(collection, tau_min=tau_min, metric="max")
    oracle = BruteForceOracle(collection=collection)
    document = collection[data.draw(st.integers(min_value=0, max_value=len(collection) - 1))]
    backbone = document.most_likely_string()
    length = data.draw(st.integers(min_value=1, max_value=min(4, len(backbone))))
    start = data.draw(st.integers(min_value=0, max_value=len(backbone) - length))
    pattern = backbone[start : start + length]
    tau = data.draw(st.floats(min_value=tau_min, max_value=0.9))
    expected = oracle.listing_matches(pattern, tau, metric="max")
    got = index.query(pattern, tau)
    expected_documents = {match.document: match.relevance for match in expected}
    got_documents = {match.document: match.relevance for match in got}
    # Document sets must agree except where the relevance sits exactly on τ
    # (the index compares exp(log-sums), the oracle multiplies directly).
    for document in set(expected_documents) ^ set(got_documents):
        relevance = collection.document_relevance(pattern, document, "max")
        assert abs(relevance - tau) <= 1e-9
    for document in set(expected_documents) & set(got_documents):
        assert math.isclose(
            got_documents[document], expected_documents[document], rel_tol=1e-9
        )


@settings(max_examples=25, deadline=None)
@given(collections(), st.data())
def test_listing_is_consistent_with_substring_semantics(collection, data):
    """A document is listed iff it has an occurrence above the threshold."""
    tau_min = 0.1
    index = UncertainStringListingIndex(collection, tau_min=tau_min, metric="max")
    document = collection[data.draw(st.integers(min_value=0, max_value=len(collection) - 1))]
    backbone = document.most_likely_string()
    pattern = backbone[: data.draw(st.integers(min_value=1, max_value=min(3, len(backbone))))]
    tau = data.draw(st.floats(min_value=tau_min, max_value=0.9))
    listed = set(index.documents(pattern, tau))
    for identifier, member in enumerate(collection):
        has_occurrence = bool(member.matching_positions(pattern, tau))
        if (identifier in listed) != has_occurrence:
            # Tolerate exact-boundary occurrences (relevance == tau up to
            # floating-point rounding between log-space and linear products).
            relevance = collection.document_relevance(pattern, identifier, "max")
            assert abs(relevance - tau) <= 1e-9


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8)
)
def test_relevance_metric_ordering(probabilities):
    """noisy_or <= 1, and both OR-style metrics dominate the max metric."""
    maximum = combine_relevance(probabilities, "max")
    or_value = combine_relevance(probabilities, "or")
    noisy = combine_relevance(probabilities, "noisy_or")
    assert noisy <= 1.0 + 1e-12
    assert or_value >= maximum - 1e-12
    assert noisy >= maximum / len(probabilities) - 1e-12
