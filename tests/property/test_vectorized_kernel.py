"""Property-based equivalence: vectorized query kernels vs the scalar path.

The vectorized pipeline (``query_batch``, array ``report_above_threshold``,
batched ``top_values_above_threshold``) must answer exactly like the scalar
reference implementations it replaced:

* ``query_batch`` equals ``query`` element-wise, including tie-breaks, for
  both RMQ implementations and both modes;
* the array reporter returns the same rank set as the scalar generator;
* the batched top-k extraction returns the scalar heap's exact list for
  leftmost-optimum RMQs (sparse table) and the same set under
  ``include_ties`` for block RMQs;
* every index kind answers queries byte-identically to a replay of its
  pre-vectorization scalar path over the same internal arrays.
"""

import math

import numpy as np
import pytest

from repro.core.base import (
    Occurrence,
    report_above_threshold,
    report_above_threshold_scalar,
    sort_occurrences,
    top_values_above_threshold,
    top_values_above_threshold_scalar,
)
from repro.suffix.rmq import BlockRMQ, SparseTableRMQ


def random_values(rng, n, *, with_ties=False, with_infinities=False):
    values = rng.random(n)
    if with_ties:
        values = np.round(values, 1)
    if with_infinities:
        values[rng.random(n) < 0.25] = -np.inf
    return values


def make_impls(rng, values, mode="max"):
    return [
        SparseTableRMQ(values, mode=mode),
        BlockRMQ(values, mode=mode, block_size=int(rng.integers(1, 9))),
    ]


class TestQueryBatchEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("mode", ["max", "min"])
    def test_matches_scalar_query_elementwise(self, seed, mode):
        rng = np.random.default_rng(seed)
        for trial in range(20):
            n = int(rng.integers(1, 120))
            values = random_values(
                rng, n, with_ties=trial % 3 == 0, with_infinities=trial % 4 == 0
            )
            lefts = rng.integers(0, n, 25)
            rights = rng.integers(0, n, 25)
            lefts, rights = np.minimum(lefts, rights), np.maximum(lefts, rights)
            for rmq in make_impls(rng, values, mode=mode):
                batch = rmq.query_batch(lefts, rights)
                scalar = [rmq.query(int(l), int(r)) for l, r in zip(lefts, rights)]
                assert batch.tolist() == scalar

    def test_empty_batch(self):
        rmq = SparseTableRMQ([1.0, 2.0])
        assert rmq.query_batch([], []).tolist() == []
        assert BlockRMQ([1.0, 2.0]).query_batch([], []).tolist() == []

    def test_invalid_ranges_rejected(self):
        from repro.exceptions import ValidationError

        for rmq in (SparseTableRMQ([1.0, 2.0]), BlockRMQ([1.0, 2.0])):
            with pytest.raises(ValidationError):
                rmq.query_batch([0], [2])
            with pytest.raises(ValidationError):
                rmq.query_batch([1], [0])
            with pytest.raises(ValidationError):
                rmq.query_batch([-1], [1])


class TestReportEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_same_rank_set_as_scalar_generator(self, seed):
        rng = np.random.default_rng(100 + seed)
        for trial in range(20):
            n = int(rng.integers(1, 160))
            values = random_values(
                rng, n, with_ties=trial % 3 == 0, with_infinities=trial % 4 == 0
            )
            left = int(rng.integers(0, n))
            right = int(rng.integers(left, n))
            threshold = float(rng.choice([0.0, 0.3, 0.5, 0.9, -np.inf]))
            for rmq in make_impls(rng, values):
                reported = report_above_threshold(rmq, values, left, right, threshold)
                reference = list(
                    report_above_threshold_scalar(rmq, values, left, right, threshold)
                )
                assert len(reported) == len(reference)
                assert set(reported.tolist()) == set(reference)

    def test_empty_range(self):
        values = np.asarray([1.0, 2.0])
        rmq = SparseTableRMQ(values)
        assert report_above_threshold(rmq, values, 1, 0, 0.0).tolist() == []


class TestTopValuesEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_exact_order_with_leftmost_rmq(self, seed):
        rng = np.random.default_rng(200 + seed)
        for trial in range(20):
            n = int(rng.integers(1, 160))
            values = random_values(rng, n, with_ties=trial % 2 == 0)
            rmq = SparseTableRMQ(values)
            left = int(rng.integers(0, n))
            right = int(rng.integers(left, n))
            threshold = float(rng.choice([0.0, 0.4, 0.8]))
            k = int(rng.integers(1, 14))
            for include_ties in (False, True):
                batched = top_values_above_threshold(
                    rmq, values, left, right, k, threshold, include_ties=include_ties
                )
                scalar = top_values_above_threshold_scalar(
                    rmq, values, left, right, k, threshold, include_ties=include_ties
                )
                # The sparse table returns the leftmost optimum, so the heap
                # pop order is exactly (-value, rank) — incl. tie order.
                assert batched.tolist() == scalar

    @pytest.mark.parametrize("seed", range(6))
    def test_same_set_with_block_rmq_under_include_ties(self, seed):
        rng = np.random.default_rng(300 + seed)
        for trial in range(15):
            n = int(rng.integers(1, 160))
            values = random_values(rng, n, with_ties=trial % 2 == 0)
            rmq = BlockRMQ(values, block_size=int(rng.integers(1, 9)))
            left = int(rng.integers(0, n))
            right = int(rng.integers(left, n))
            k = int(rng.integers(1, 14))
            batched = top_values_above_threshold(
                rmq, values, left, right, k, 0.0, include_ties=True
            )
            scalar = top_values_above_threshold_scalar(
                rmq, values, left, right, k, 0.0, include_ties=True
            )
            # include_ties extracts whole tie classes, so the selected set is
            # implementation-independent even though a block RMQ discovers
            # within-class members in a different order.
            assert set(batched.tolist()) == set(scalar)

    def test_giant_tie_class_stays_bounded(self):
        from repro.core.base import TIE_EXTRACTION_LIMIT

        values = np.ones(TIE_EXTRACTION_LIMIT * 4, dtype=np.float64)
        rmq = SparseTableRMQ(values)
        k = 5
        batched = top_values_above_threshold(
            rmq, values, 0, len(values) - 1, k, 0.0, include_ties=True
        )
        scalar = top_values_above_threshold_scalar(
            rmq, values, 0, len(values) - 1, k, 0.0, include_ties=True
        )
        assert batched.tolist() == scalar
        assert len(batched) == k + TIE_EXTRACTION_LIMIT


def replay_special_short(index, pattern, tau):
    """The pre-vectorization scalar short-pattern path of the special index."""
    from repro.suffix.pattern_search import suffix_range

    interval = suffix_range(index.string.text, index._suffix_array.array, pattern)
    if interval is None:
        return []
    sp, ep = interval
    values = index._short_values[len(pattern)]
    rmq = index._short_rmq[len(pattern)]
    occurrences = []
    for rank in report_above_threshold_scalar(rmq, values, sp, ep, math.log(tau)):
        position = int(index._suffix_array.array[rank])
        occurrences.append(Occurrence(position, math.exp(float(values[rank]))))
    return sort_occurrences(occurrences)


def replay_general_short(index, pattern, tau):
    """The pre-vectorization scalar short-pattern path of the general index."""
    from repro.suffix.pattern_search import suffix_range

    interval = suffix_range(
        index.transformed.text, index._suffix_array.array, pattern
    )
    if interval is None:
        return []
    sp, ep = interval
    values = index._short_values[len(pattern)]
    rmq = index._short_rmq[len(pattern)]
    occurrences = []
    for rank in report_above_threshold_scalar(rmq, values, sp, ep, math.log(tau)):
        occurrences.append(
            Occurrence(int(index._rank_positions[rank]), math.exp(float(values[rank])))
        )
    return sort_occurrences(occurrences)


def replay_listing_short(index, pattern, tau):
    """The pre-vectorization scalar short-pattern path of the listing index."""
    from repro.core.base import ListingMatch, sort_listing_matches
    from repro.suffix.pattern_search import suffix_range

    interval = suffix_range(
        index.transformed.text, index._suffix_array.array, pattern
    )
    if interval is None:
        return []
    sp, ep = interval
    values = index._relevance[len(pattern)]
    rmq = index._relevance_rmq[len(pattern)]
    matches = []
    for rank in report_above_threshold_scalar(rmq, values, sp, ep, tau):
        matches.append(
            ListingMatch(int(index._rank_documents[rank]), float(values[rank]))
        )
    return sort_listing_matches(matches)


class TestIndexesMatchScalarReplay:
    """Every index kind answers byte-identically to the scalar-kernel replay."""

    @pytest.mark.parametrize("seed", range(6))
    def test_special_index(self, seed):
        from repro.core.special_index import SpecialUncertainStringIndex
        from repro.strings.special import SpecialUncertainString

        rng = np.random.default_rng(400 + seed)
        n = 80
        text = "".join(rng.choice(list("abc"), n))
        probabilities = rng.uniform(0.3, 1.0, n)
        string = SpecialUncertainString.from_characters_and_probabilities(
            text, probabilities
        )
        index = SpecialUncertainStringIndex(string)
        for length in (1, 2, 3):
            pattern = text[int(rng.integers(0, n - length)) :][:length]
            for tau in (0.2, 0.5):
                assert index.query(pattern, tau) == replay_special_short(
                    index, pattern, tau
                )

    @pytest.mark.parametrize("seed", range(6))
    def test_general_index(self, seed):
        from repro.bench.workloads import cached_uncertain_string
        from repro.core.general_index import GeneralUncertainStringIndex

        string = cached_uncertain_string(60, 0.3, seed=500 + seed)
        index = GeneralUncertainStringIndex(string, tau_min=0.1)
        backbone = string.most_likely_string()
        for pattern in (backbone[:2], backbone[5:8], backbone[10:13]):
            for tau in (0.1, 0.3):
                assert index.query(pattern, tau) == replay_general_short(
                    index, pattern, tau
                )

    @pytest.mark.parametrize("seed", range(4))
    def test_listing_index(self, seed):
        from repro.bench.workloads import cached_collection
        from repro.core.listing import UncertainStringListingIndex

        collection = cached_collection(120, 0.3, seed=600 + seed)
        index = UncertainStringListingIndex(collection, tau_min=0.1)
        backbone = collection[0].most_likely_string()
        for pattern in (backbone[:2], backbone[1:4]):
            for tau in (0.1, 0.3):
                assert index.query(pattern, tau) == replay_listing_short(
                    index, pattern, tau
                )

    @pytest.mark.parametrize("seed", range(4))
    def test_simple_index_substitutable_for_special(self, seed):
        # The simple index shares no kernel code; it pins the planner's
        # substitution contract: identical answers to the special index.
        from repro.core.simple_index import SimpleSpecialIndex
        from repro.core.special_index import SpecialUncertainStringIndex
        from repro.strings.special import SpecialUncertainString

        rng = np.random.default_rng(700 + seed)
        n = 60
        text = "".join(rng.choice(list("ab"), n))
        string = SpecialUncertainString.from_characters_and_probabilities(
            text, rng.uniform(0.4, 1.0, n)
        )
        special = SpecialUncertainStringIndex(string)
        simple = SimpleSpecialIndex(string)
        for length in (1, 2, 4):
            pattern = text[:length]
            got = special.query(pattern, 0.3)
            reference = simple.query(pattern, 0.3)
            # The two variants accumulate window probabilities differently
            # (log-prefix sums vs direct products), so values agree to the
            # last couple of ulps, not bit-for-bit — same as before this
            # kernel existed.  Positions are exact.
            assert [occ.position for occ in got] == [
                occ.position for occ in reference
            ]
            assert [occ.probability for occ in got] == pytest.approx(
                [occ.probability for occ in reference], rel=1e-12
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_approximate_index(self, seed):
        # The approximate index consumes the reporting kernel's rank set and
        # deduplicates by max link probability — order-insensitive, so the
        # vectorized kernel must leave its answers untouched.  Replay its
        # link loop with the scalar generator and compare.
        from repro.bench.workloads import cached_uncertain_string
        from repro.core.approximate import ApproximateSubstringIndex
        from repro.core.base import sort_occurrences as sort_occs

        string = cached_uncertain_string(50, 0.3, seed=800 + seed)
        index = ApproximateSubstringIndex(string, tau_min=0.1, epsilon=0.05)
        backbone = string.most_likely_string()
        for pattern in (backbone[:2], backbone[3:6]):
            for tau in (0.1, 0.25):
                got = index.query(pattern, tau)
                interval = index._tree.pattern_range(pattern)
                if interval is None or index._link_rmq is None:
                    assert got == []
                    continue
                sp, ep = interval
                first = int(
                    np.searchsorted(index._link_origin_left, sp, side="left")
                )
                last = (
                    int(np.searchsorted(index._link_origin_left, ep, side="right"))
                    - 1
                )
                if first > last:
                    assert got == []
                    continue
                reported = {}
                for link_index in report_above_threshold_scalar(
                    index._link_rmq,
                    index._link_probabilities,
                    first,
                    last,
                    tau - index._epsilon,
                ):
                    link = index._links[link_index]
                    if link.origin_right > ep:
                        continue
                    if (
                        link.origin_depth < len(pattern)
                        or link.target_depth >= len(pattern)
                    ):
                        continue
                    previous = reported.get(link.position)
                    if previous is None or link.probability > previous:
                        reported[link.position] = link.probability
                expected = sort_occs(
                    [Occurrence(p, value) for p, value in reported.items()]
                )
                assert got == expected
