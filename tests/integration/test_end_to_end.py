"""End-to-end integration tests across datasets, indexes and serialization.

These mirror how a downstream user would combine the pieces: generate (or
load) an uncertain dataset, build the relevant index, query it, and verify
the answers against the definition — exercising every layer of the package
in one pass.
"""

import math

import pytest

from repro import (
    ApproximateSubstringIndex,
    BruteForceOracle,
    GeneralUncertainStringIndex,
    OnlineDynamicProgrammingMatcher,
    UncertainStringListingIndex,
)
from repro.datasets import (
    extract_collection_patterns,
    extract_patterns,
    generate_collection,
    generate_uncertain_string,
)
from repro.strings.io import dump_collection, load_collection


@pytest.fixture(scope="module")
def protein_string():
    return generate_uncertain_string(600, theta=0.3, seed=101)


@pytest.fixture(scope="module")
def protein_collection():
    return generate_collection(600, theta=0.3, seed=102)


class TestSubstringPipeline:
    def test_all_indexes_agree_on_synthetic_data(self, protein_string):
        tau_min = 0.1
        general = GeneralUncertainStringIndex(protein_string, tau_min=tau_min)
        approximate = ApproximateSubstringIndex(
            protein_string, tau_min=tau_min, epsilon=0.05
        )
        matcher = OnlineDynamicProgrammingMatcher(protein_string)
        oracle = BruteForceOracle(string=protein_string)

        patterns = extract_patterns(protein_string, [3, 6, 12], per_length=3, seed=7)
        for pattern in patterns:
            for tau in (0.15, 0.3, 0.6):
                expected = [
                    occ.position for occ in oracle.substring_occurrences(pattern, tau)
                ]
                assert [
                    occ.position for occ in general.query(pattern, tau)
                ] == expected
                assert [
                    occ.position for occ in matcher.query(pattern, tau)
                ] == expected
                # Approximate answers contain the exact ones and verify
                # exactly when asked to.
                approximate_positions = {
                    occ.position for occ in approximate.query(pattern, tau)
                }
                assert set(expected) <= approximate_positions
                assert {
                    occ.position
                    for occ in approximate.query(pattern, tau, verify=True)
                } == set(expected)

    def test_reported_probabilities_are_exact(self, protein_string):
        index = GeneralUncertainStringIndex(protein_string, tau_min=0.1)
        pattern = extract_patterns(protein_string, [8], per_length=1, seed=3)[0]
        for occurrence in index.query(pattern, 0.12):
            assert math.isclose(
                occurrence.probability,
                protein_string.occurrence_probability(pattern, occurrence.position),
                rel_tol=1e-9,
            )

    def test_index_statistics_are_coherent(self, protein_string):
        index = GeneralUncertainStringIndex(protein_string, tau_min=0.1)
        stats = index.stats
        assert stats["source_length"] == len(protein_string)
        assert stats["transformed_length"] >= stats["source_length"]
        assert index.nbytes() > 0


class TestListingPipeline:
    def test_listing_matches_per_document_scan(self, protein_collection):
        tau_min = 0.1
        index = UncertainStringListingIndex(protein_collection, tau_min=tau_min)
        patterns = extract_collection_patterns(
            protein_collection, [4, 8], per_length=3, seed=11
        )
        for pattern in patterns:
            for tau in (0.15, 0.4):
                assert index.documents(pattern, tau) == (
                    protein_collection.matching_documents(pattern, tau)
                )

    def test_round_trip_through_serialization(self, tmp_path, protein_collection):
        path = tmp_path / "collection.jsonl"
        dump_collection(protein_collection, path)
        reloaded = load_collection(path)
        index_original = UncertainStringListingIndex(protein_collection, tau_min=0.1)
        index_reloaded = UncertainStringListingIndex(reloaded, tau_min=0.1)
        pattern = extract_collection_patterns(
            protein_collection, [5], per_length=1, seed=13
        )[0]
        assert index_original.documents(pattern, 0.2) == index_reloaded.documents(
            pattern, 0.2
        )


class TestThresholdSemantics:
    def test_tau_min_boundary_enforced_end_to_end(self, protein_string):
        index = GeneralUncertainStringIndex(protein_string, tau_min=0.2)
        pattern = extract_patterns(protein_string, [5], per_length=1, seed=17)[0]
        with pytest.raises(Exception):
            index.query(pattern, 0.1)
        # Queries at or above tau_min work.
        index.query(pattern, 0.2)
        index.query(pattern, 0.9)

    def test_results_shrink_as_threshold_grows(self, protein_string):
        index = GeneralUncertainStringIndex(protein_string, tau_min=0.1)
        pattern = extract_patterns(protein_string, [4], per_length=1, seed=19)[0]
        sizes = [len(index.query(pattern, tau)) for tau in (0.1, 0.2, 0.4, 0.8)]
        assert sizes == sorted(sizes, reverse=True)
