"""Smoke tests that the shipped examples run end to end.

The heavyweight examples are exercised with reduced problem sizes (injected
through their module-level constants) so the whole module stays fast while
still running every code path a user would.
"""

import os
import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def test_examples_directory_contents():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "protein_snp_search.py",
        "ecg_event_monitoring.py",
        "virus_pattern_listing.py",
        "approximate_search.py",
        "async_serving.py",
    } <= names


def test_quickstart_runs_as_script():
    # The subprocess does not inherit pytest's `pythonpath` ini setting, so
    # put src/ on its path explicitly (works with or without an install).
    env = dict(os.environ)
    src = str(EXAMPLES_DIR.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr
    assert "substring searching" in completed.stdout
    assert "string listing" in completed.stdout
    assert "approximate" in completed.stdout


def _run_example_with_overrides(name, overrides):
    """Import an example module, shrink its constants, then call main()."""
    namespace = runpy.run_path(str(EXAMPLES_DIR / name), run_name="example")
    namespace.update(overrides)
    # Re-bind the shrunk constants inside the module's main() by executing it
    # through a fresh globals dict containing the overrides.
    main = namespace["main"]
    main.__globals__.update(overrides)
    main()


@pytest.mark.parametrize(
    "name, overrides",
    [
        ("protein_snp_search.py", {"SEQUENCE_LENGTH": 400}),
        ("ecg_event_monitoring.py", {"STREAM_LENGTH": 300}),
        ("virus_pattern_listing.py", {"FILE_COUNT": 12, "FILE_LENGTH": 40}),
        ("approximate_search.py", {"SEQUENCE_LENGTH": 300}),
        (
            "async_serving.py",
            {"N_DOCUMENTS": 8, "DOCUMENT_LENGTH": 15, "N_CLIENTS": 40, "SHARDS": 2},
        ),
    ],
)
def test_examples_run_with_reduced_sizes(name, overrides, capsys):
    _run_example_with_overrides(name, overrides)
    captured = capsys.readouterr()
    assert captured.out.strip()
