"""Tests for repro.bench.harness."""

import pytest

from repro.bench.harness import (
    ExperimentRecord,
    FigureTable,
    ResultStore,
    Series,
    SeriesPoint,
    time_callable,
    time_query_batch,
)


class TestSeries:
    def test_add_and_accessors(self):
        series = Series("theta=0.1")
        series.add(1000, 0.5)
        series.add(2000, 0.75)
        assert series.xs == [1000, 2000]
        assert series.values == [0.5, 0.75]
        assert series.points[0] == SeriesPoint(1000.0, 0.5)


class TestFigureTable:
    def test_series_lookup(self):
        table = FigureTable("fig7a", "title", "n", "ms")
        table.series.append(Series("a", [SeriesPoint(1, 2)]))
        assert table.series_by_label("a").points[0].value == 2
        with pytest.raises(KeyError):
            table.series_by_label("missing")

    def test_x_values_union(self):
        table = FigureTable("fig", "t", "x", "y")
        table.series.append(Series("a", [SeriesPoint(1, 1), SeriesPoint(3, 1)]))
        table.series.append(Series("b", [SeriesPoint(2, 1), SeriesPoint(3, 1)]))
        assert table.x_values() == [1, 2, 3]


class TestTiming:
    def test_time_callable_counts_calls(self):
        calls = []
        seconds = time_callable(lambda: calls.append(1), repeats=5, warmup=2)
        assert len(calls) == 7
        assert seconds >= 0.0

    def test_time_query_batch_average(self):
        invocations = []

        def query(pattern, tau):
            invocations.append((pattern, tau))

        milliseconds = time_query_batch(query, ["a", "b", "c"], 0.5, repeats=2)
        assert len(invocations) == 6
        assert milliseconds >= 0.0

    def test_time_query_batch_empty_rejected(self):
        with pytest.raises(ValueError):
            time_query_batch(lambda p, t: None, [], 0.5)


class TestResultStore:
    def test_add_and_filter(self):
        store = ResultStore()
        store.add("fig7a", {"n": 1000}, 1.5, "ms")
        store.add("fig7b", {"tau": 0.1}, 2.5, "ms")
        assert len(store.records) == 2
        assert store.filter("fig7a") == [
            ExperimentRecord("fig7a", {"n": 1000}, 1.5, "ms")
        ]
