"""Tests for repro.bench.reporting."""

import pytest

from repro.bench.harness import FigureTable, Series, SeriesPoint
from repro.bench.reporting import (
    format_csv,
    format_markdown,
    format_table,
    render_report,
)


@pytest.fixture
def sample_table() -> FigureTable:
    table = FigureTable(
        figure_id="fig7a",
        title="Query time vs string size",
        x_label="n",
        y_label="ms",
        notes="tau=0.2",
    )
    table.series.append(
        Series("theta=0.1", [SeriesPoint(1000, 0.5), SeriesPoint(2000, 0.8)])
    )
    table.series.append(Series("theta=0.3", [SeriesPoint(1000, 0.6)]))
    return table


class TestTextTable:
    def test_contains_headers_and_values(self, sample_table):
        rendered = format_table(sample_table)
        assert "fig7a" in rendered
        assert "theta=0.1" in rendered
        assert "theta=0.3" in rendered
        assert "1,000" in rendered
        assert "0.5000" in rendered

    def test_missing_cells_rendered_as_dash(self, sample_table):
        rendered = format_table(sample_table)
        assert "-" in rendered.splitlines()[-1]


class TestMarkdown:
    def test_markdown_structure(self, sample_table):
        rendered = format_markdown(sample_table)
        assert rendered.startswith("### fig7a")
        assert "| n | theta=0.1 | theta=0.3 |" in rendered
        assert "|---|---|---|" in rendered


class TestCsv:
    def test_csv_structure(self, sample_table):
        rendered = format_csv(sample_table)
        lines = rendered.strip().splitlines()
        assert lines[0] == "n,theta=0.1,theta=0.3"
        assert lines[1].startswith("1000")
        # Missing cell is empty.
        assert lines[2].endswith(",")


class TestRenderReport:
    def test_multiple_tables(self, sample_table):
        rendered = render_report([sample_table, sample_table], fmt="text")
        assert rendered.count("fig7a") == 2

    def test_unknown_format_rejected(self, sample_table):
        with pytest.raises(ValueError):
            render_report([sample_table], fmt="latex")
