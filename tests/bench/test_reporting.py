"""Tests for repro.bench.reporting."""

import pytest

from repro.bench.harness import FigureTable, Series, SeriesPoint
from repro.bench.reporting import (
    format_csv,
    format_markdown,
    format_table,
    render_report,
)


@pytest.fixture
def sample_table() -> FigureTable:
    table = FigureTable(
        figure_id="fig7a",
        title="Query time vs string size",
        x_label="n",
        y_label="ms",
        notes="tau=0.2",
    )
    table.series.append(
        Series("theta=0.1", [SeriesPoint(1000, 0.5), SeriesPoint(2000, 0.8)])
    )
    table.series.append(Series("theta=0.3", [SeriesPoint(1000, 0.6)]))
    return table


class TestTextTable:
    def test_contains_headers_and_values(self, sample_table):
        rendered = format_table(sample_table)
        assert "fig7a" in rendered
        assert "theta=0.1" in rendered
        assert "theta=0.3" in rendered
        assert "1,000" in rendered
        assert "0.5000" in rendered

    def test_missing_cells_rendered_as_dash(self, sample_table):
        rendered = format_table(sample_table)
        assert "-" in rendered.splitlines()[-1]


class TestMarkdown:
    def test_markdown_structure(self, sample_table):
        rendered = format_markdown(sample_table)
        assert rendered.startswith("### fig7a")
        assert "| n | theta=0.1 | theta=0.3 |" in rendered
        assert "|---|---|---|" in rendered


class TestCsv:
    def test_csv_structure(self, sample_table):
        rendered = format_csv(sample_table)
        lines = rendered.strip().splitlines()
        assert lines[0] == "n,theta=0.1,theta=0.3"
        assert lines[1].startswith("1000")
        # Missing cell is empty.
        assert lines[2].endswith(",")


class TestRenderReport:
    def test_multiple_tables(self, sample_table):
        rendered = render_report([sample_table, sample_table], fmt="text")
        assert rendered.count("fig7a") == 2

    def test_unknown_format_rejected(self, sample_table):
        with pytest.raises(ValueError):
            render_report([sample_table], fmt="latex")


class TestJsonArtifacts:
    def test_payload_structure(self, sample_table):
        from repro.bench.reporting import figure_table_to_dict

        payload = figure_table_to_dict(
            sample_table, scale="small", wall_clock_seconds=1.25
        )
        assert payload["experiment"] == "fig7a"
        assert payload["parameters"]["scale"] == "small"
        assert payload["wall_clock_seconds"] == 1.25
        labels = [series["label"] for series in payload["series"]]
        assert labels == ["theta=0.1", "theta=0.3"]
        assert payload["series"][0]["points"][0] == {"x": 1000.0, "value": 0.5}

    def test_artifact_name_sanitizes_dashes(self):
        from repro.bench.reporting import json_artifact_name

        assert json_artifact_name("query-kernel") == "BENCH_query_kernel.json"
        assert json_artifact_name("fig7a") == "BENCH_fig7a.json"

    def test_write_round_trips(self, sample_table, tmp_path):
        import json

        from repro.bench.reporting import write_json_artifact

        path = write_json_artifact(
            sample_table, tmp_path, scale="small", wall_clock_seconds=0.5
        )
        assert path == tmp_path / "BENCH_fig7a.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["experiment"] == "fig7a"
        assert payload["series"][1]["points"] == [{"x": 1000.0, "value": 0.6}]
