"""Tests for the repro-bench command line interface."""

import pytest

from repro.bench import workloads
from repro.bench.__main__ import build_parser, main


@pytest.fixture(autouse=True)
def fresh_caches():
    workloads.clear_caches()
    yield
    workloads.clear_caches()


class TestParser:
    def test_defaults(self):
        arguments = build_parser().parse_args([])
        assert arguments.figures is None
        assert arguments.scale == "default"
        assert arguments.format == "text"

    def test_parses_figures_and_scale(self):
        arguments = build_parser().parse_args(
            ["--figure", "fig7a", "--scale", "small", "--format", "csv"]
        )
        assert arguments.figures == ["fig7a"]
        assert arguments.scale == "small"
        assert arguments.format == "csv"


class TestMain:
    def test_no_selection_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_single_figure_to_stdout(self, capsys):
        exit_code = main(["--figure", "ablation-rmq", "--scale", "small"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "ablation-rmq" in captured.out

    def test_output_file(self, tmp_path, capsys):
        destination = tmp_path / "report.md"
        exit_code = main(
            [
                "--figure",
                "ablation-rmq",
                "--scale",
                "small",
                "--format",
                "markdown",
                "-o",
                str(destination),
            ]
        )
        assert exit_code == 0
        assert destination.exists()
        assert "ablation-rmq" in destination.read_text(encoding="utf-8")


class TestJsonFlag:
    def test_json_artifacts_written(self, tmp_path, capsys):
        import json

        exit_code = main(
            [
                "--figure",
                "ablation-rmq",
                "--scale",
                "small",
                "--json",
                "--json-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        artifact = tmp_path / "BENCH_ablation_rmq.json"
        assert artifact.exists()
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["experiment"] == "ablation-rmq"
        assert payload["parameters"]["scale"] == "small"
        assert payload["wall_clock_seconds"] > 0.0
        assert payload["series"]

    def test_json_dir_implies_json(self, tmp_path, capsys):
        exit_code = main(
            [
                "--figure",
                "ablation-rmq",
                "--scale",
                "small",
                "--json-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "BENCH_ablation_rmq.json").exists()
