"""Fast perf smoke: the vectorized reporting kernel must not regress.

Runs the ``query-kernel`` experiment at the small scale and asserts that on
the largest reported-occurrence workload the vectorized kernel is at worst
1.5x slower than the scalar baseline (a generous margin — on real
workloads it is several times *faster*; the margin only guards against a
vectorization regression without flaking on noisy CI runners).  The full
occ=10^6 sweep stays in the default-scale benchmark run
(``python -m repro.bench --figure query-kernel --json``).
"""

from repro.bench.experiments import SMALL_SCALE, query_kernel, shard_build


class TestQueryKernelSmoke:
    def test_vectorized_not_slower_than_margin(self):
        table = query_kernel(SMALL_SCALE)
        scalar = table.series_by_label("scalar (occ/s)")
        vectorized = table.series_by_label("vectorized (occ/s)")
        assert scalar.xs == vectorized.xs == list(SMALL_SCALE.kernel_occ_targets)
        # Assert on the largest workload of the small grid: tiny batches pay
        # fixed numpy overhead per frontier round, so the vectorized win
        # only shows from a few hundred occurrences up — which is also the
        # only regime where reporting throughput matters.
        assert vectorized.values[-1] >= scalar.values[-1] / 1.5, (
            f"vectorized kernel {vectorized.values[-1]:.0f} occ/s is more than "
            f"1.5x slower than scalar {scalar.values[-1]:.0f} occ/s"
        )

    def test_speedup_series_is_consistent(self):
        table = query_kernel(SMALL_SCALE)
        scalar = table.series_by_label("scalar (occ/s)")
        vectorized = table.series_by_label("vectorized (occ/s)")
        speedup = table.series_by_label("speedup (x)")
        for fast, slow, ratio in zip(
            vectorized.values, scalar.values, speedup.values
        ):
            assert ratio > 0.0
            assert abs(ratio - fast / slow) / ratio < 1e-6


class TestShardBuildSmoke:
    def test_reports_all_worker_counts(self):
        table = shard_build(SMALL_SCALE)
        build_time = table.series_by_label("build time (s)")
        speedup = table.series_by_label("speedup vs workers=1 (x)")
        assert build_time.xs == list(SMALL_SCALE.shard_build_workers)
        assert all(value > 0.0 for value in build_time.values)
        # workers=1 is its own baseline by construction.
        assert speedup.values[0] == 1.0
